//! Conjunctive-query containment and minimization (Section 2 of the
//! paper): the Chandra–Merlin correspondence at work.
//!
//! Containment `Q1 ⊆ Q2` reduces to a homomorphism between canonical
//! databases (Proposition 2.2) — the same computation as constraint
//! satisfaction. Query minimization (computing the *core*) is the
//! classical optimizer application.
//!
//! Run with: `cargo run --example query_containment`

use constraint_db::core::graphs::digraph;
use constraint_db::cq::{
    are_equivalent, canonical_database, evaluate_by_join, is_contained_in, minimize,
    ConjunctiveQuery,
};

fn main() {
    // The paper's running example query.
    let q = ConjunctiveQuery::parse("Q(X1,X2) :- P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2)").unwrap();
    println!("== The paper's example query ==");
    println!("{q}");
    let db = canonical_database(&q, true);
    println!(
        "canonical database D^Q: {} elements, {} facts (incl. distinguished markers)",
        db.structure.domain_size(),
        db.structure.fact_count()
    );
    println!();

    // Containment chains.
    println!("== Containment (Proposition 2.2) ==");
    let pairs = [
        (
            "Q(X) :- E(X,Y), E(Y,Z), E(Z,W)",
            "Q(X) :- E(X,Y)",
            "a 3-step walker also takes 1 step",
        ),
        (
            "Q :- E(X,Y), E(Y,Z), E(Z,X)",
            "Q :- E(A,B), E(B,C), E(C,D), E(D,F), E(F,G), E(G,A)",
            "a triangle wraps around a 6-cycle pattern",
        ),
        (
            "Q(X,Y) :- E(X,Y)",
            "Q(X,Y) :- E(X,Z), E(Z,Y)",
            "an edge does NOT imply a 2-path",
        ),
    ];
    for (s1, s2, why) in pairs {
        let q1 = ConjunctiveQuery::parse(s1).unwrap();
        let q2 = ConjunctiveQuery::parse(s2).unwrap();
        let fwd = is_contained_in(&q1, &q2).unwrap();
        println!("  {s1}\n    ⊆ {s2} ?  {fwd}   ({why})");
    }
    println!();

    // Minimization.
    println!("== Minimization to the core ==");
    for src in [
        "Q(X) :- E(X,Y), E(X,Z), E(Z,W)",
        "Q :- E(A,B), E(B,A), E(B,C), E(C,B)",
        "Q(X) :- E(X,Y), E(Y,Z), E(Y,W)",
    ] {
        let original = ConjunctiveQuery::parse(src).unwrap();
        let minimized = minimize(&original);
        assert!(are_equivalent(&original, &minimized).unwrap());
        println!(
            "  {src}\n    -> {minimized}   ({} atoms -> {})",
            original.atoms.len(),
            minimized.atoms.len()
        );
    }
    println!();

    // Evaluation sanity: containment is semantic.
    println!("== Semantic check on a sample database ==");
    let sample = digraph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
    let q1 = ConjunctiveQuery::parse("Q(X) :- E(X,Y), E(Y,Z)").unwrap();
    let q2 = ConjunctiveQuery::parse("Q(X) :- E(X,Y)").unwrap();
    let a1 = evaluate_by_join(&q1, &sample).unwrap();
    let a2 = evaluate_by_join(&q2, &sample).unwrap();
    println!("  Q1 (starts a 2-path): {a1}");
    println!("  Q2 (starts an edge):  {a2}");
    assert!(a1.is_subset_of(&a2));
    println!("  Q1(D) ⊆ Q2(D) as containment promised. ∎");
}
