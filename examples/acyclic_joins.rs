//! Acyclic joins, treewidth, and hypertree width — the "topology of
//! queries" story of Section 6.
//!
//! The same join query is solved by (a) the unrestricted natural join of
//! Proposition 2.1, (b) Yannakakis' semijoin algorithm when the
//! hypergraph is α-acyclic, and (c) the hypertree-guided route when it
//! is not. GYO reduction, treewidth, and hypertree width of the
//! instances are reported along the way.
//!
//! Run with: `cargo run --example acyclic_joins`

use constraint_db::core::{CspInstance, Relation};
use constraint_db::decomp::{exact_treewidth, hypertree_heuristic, Graph, Hypergraph};
use constraint_db::relalg::{is_acyclic_instance, solve_acyclic, solve_by_join};
use std::sync::Arc;

fn neq(d: usize) -> Arc<Relation> {
    Arc::new(
        Relation::from_tuples(
            2,
            (0..d as u32)
                .flat_map(|i| (0..d as u32).filter_map(move |j| (i != j).then_some([i, j]))),
        )
        .unwrap(),
    )
}

fn main() {
    // (a) A chain query: R(x0,x1) ⋈ R(x1,x2) ⋈ ... — α-acyclic.
    let mut chain = CspInstance::new(6, 3);
    for i in 0..5u32 {
        chain.add_constraint([i, i + 1], neq(3)).unwrap();
    }
    println!("== Chain instance (5 binary constraints) ==");
    println!("GYO: acyclic? {}", is_acyclic_instance(&chain));
    let via_join = solve_by_join(&chain);
    let via_yannakakis = solve_acyclic(&chain).expect("acyclic");
    println!("full join solvable:   {}", via_join.is_some());
    println!("Yannakakis solvable:  {}", via_yannakakis.is_some());
    assert_eq!(via_join.is_some(), via_yannakakis.is_some());
    println!();

    // (b) A cyclic instance: triangle.
    let mut triangle = CspInstance::new(3, 2);
    for (x, y) in [(0u32, 1u32), (1, 2), (0, 2)] {
        triangle.add_constraint([x, y], neq(2)).unwrap();
    }
    println!("== Triangle instance (cyclic) ==");
    println!("GYO: acyclic? {}", is_acyclic_instance(&triangle));
    assert!(solve_acyclic(&triangle).is_err(), "Yannakakis must refuse");
    println!("Yannakakis refuses (NotAcyclic); falling back to the join:");
    println!(
        "full join solvable:   {}",
        solve_by_join(&triangle).is_some()
    );
    println!();

    // (c) Width measures on the instances' structures.
    println!("== Width measures (Section 6) ==");
    let (a_chain, _) = chain.to_homomorphism();
    let (a_tri, _) = triangle.to_homomorphism();
    for (name, a) in [("chain", &a_chain), ("triangle", &a_tri)] {
        let g = Graph::gaifman(a);
        let (tw, _) = exact_treewidth(&g);
        let hg = Hypergraph::of_structure(a);
        let hd = hypertree_heuristic(&hg);
        println!(
            "  {name:<9} treewidth = {tw}, acyclic = {:<5}, hypertree width ≤ {}",
            hg.is_acyclic(),
            hd.width()
        );
    }
    println!();

    // (d) Hypertree-guided solving of the cyclic instance.
    println!("== Hypertree-guided solve of a cyclic structure ==");
    let a = constraint_db::core::graphs::cycle(5);
    let b = constraint_db::core::graphs::clique(3);
    let hg = Hypergraph::of_structure(&a);
    let hd = hypertree_heuristic(&hg);
    let sol = constraint_db::relalg::solve_with_hypertree(&a, &b, &hd).unwrap();
    println!(
        "C5 -> K3 via hypertree decomposition of width {}: {}",
        hd.width(),
        if sol.is_some() {
            "solvable"
        } else {
            "unsolvable"
        }
    );
    assert!(sol.is_some());
    println!();
    println!("Acyclic fast path, cyclic fallbacks, and width measures agree. ∎");
}
