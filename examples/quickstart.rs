//! Quickstart: one constraint-satisfaction problem, four database-theory
//! views of it.
//!
//! The paper's Section 2 shows that a CSP instance is simultaneously
//! (1) a homomorphism problem, (2) a join-evaluation problem, and
//! (3) a conjunctive-query evaluation problem. This example builds a
//! single instance — 3-coloring a wheel graph — and solves it all four
//! ways, checking that every route agrees.
//!
//! Run with: `cargo run --example quickstart`

use constraint_db::core::graphs::{clique, undirected};
use constraint_db::core::CspInstance;
use constraint_db::{cq, relalg, solver, Solver};

fn main() {
    // A wheel: a 5-cycle plus a hub adjacent to every rim vertex.
    let wheel = undirected(
        6,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (5, 0),
            (5, 1),
            (5, 2),
            (5, 3),
            (5, 4),
        ],
    );
    let k3 = clique(3);
    let k4 = clique(4);

    println!("== The instance ==");
    println!("A = wheel W5 (6 vertices, 10 edges); is it 3-colorable? 4-colorable?");
    println!();

    // View 1: homomorphism search (the AI view, Section 2).
    let three = solver::find_homomorphism(&wheel, &k3);
    let four = solver::find_homomorphism(&wheel, &k4);
    println!("== View 1: homomorphism search ==");
    println!("hom(W5, K3) = {three:?}");
    println!("hom(W5, K4) = {four:?}");
    assert!(three.is_none(), "odd wheel needs 4 colors");
    let four = four.expect("4 colors suffice");
    println!();

    // View 2: join evaluation (Proposition 2.1).
    let csp3 = CspInstance::from_homomorphism(&wheel, &k3).unwrap();
    let csp4 = CspInstance::from_homomorphism(&wheel, &k4).unwrap();
    println!("== View 2: join evaluation (Proposition 2.1) ==");
    println!(
        "3 colors: join of 20 constraint relations is {}",
        if relalg::solve_by_join(&csp3).is_some() {
            "nonempty"
        } else {
            "EMPTY -> unsatisfiable"
        }
    );
    let by_join = relalg::solve_by_join(&csp4).expect("nonempty join");
    println!("4 colors: join nonempty; first row gives coloring {by_join:?}");
    assert!(relalg::solve_by_join(&csp3).is_none());
    println!();

    // View 3: canonical conjunctive query (Proposition 2.3).
    let phi = cq::canonical_query(&wheel);
    println!("== View 3: canonical query φ_A (Proposition 2.3) ==");
    println!(
        "φ_A has {} atoms; evaluating on K3 and K4:",
        phi.atoms.len()
    );
    let on_k3 = cq::boolean_holds(&phi, &k3).unwrap();
    let on_k4 = cq::boolean_holds(&phi, &k4).unwrap();
    println!("φ_A true in K3: {on_k3};  φ_A true in K4: {on_k4}");
    assert!(!on_k3 && on_k4);
    println!();

    // View 4: the automatic dispatcher.
    let report = Solver::new().solve(&wheel, &k4).expect_decided();
    println!("== View 4: the Solver facade ==");
    println!("strategy = {:?}", report.strategy);
    let witness = report.witness.expect("solvable");
    println!("witness  = {witness:?}");
    assert!(constraint_db::core::is_homomorphism(&witness, &wheel, &k4));
    assert!(constraint_db::core::is_homomorphism(&four, &wheel, &k4));
    println!();
    println!("All four database-theory views agree. ∎");
}
