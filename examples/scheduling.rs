//! Scheduling as constraint satisfaction — one of the AI motivations the
//! paper's introduction lists (alongside vision, temporal reasoning, and
//! satisfiability).
//!
//! We schedule exams into time slots: conflicting exams (shared
//! students) must differ; some exams must precede others; some are
//! pinned. The example shows (a) modeling with `CspInstance`, (b) cheap
//! consistency preprocessing (AC-3, Section 5), and (c) structure-aware
//! solving via the `Solver` facade — the constraint graph is sparse,
//! so the Theorem 6.2 treewidth route applies.
//!
//! Run with: `cargo run --example scheduling`

use constraint_db::consistency::ac3;
use constraint_db::core::{CspInstance, Relation};
use constraint_db::{Solver, Strategy};
use std::sync::Arc;

const EXAMS: [&str; 8] = [
    "algebra",
    "biology",
    "chemistry",
    "databases",
    "ethics",
    "french",
    "geometry",
    "history",
];
const SLOTS: usize = 4;

fn main() {
    let n = EXAMS.len();
    let mut csp = CspInstance::new(n, SLOTS);

    // Relations over slots.
    let neq = Arc::new(
        Relation::from_tuples(
            2,
            (0..SLOTS as u32)
                .flat_map(|i| (0..SLOTS as u32).filter_map(move |j| (i != j).then_some([i, j]))),
        )
        .unwrap(),
    );
    let before = Arc::new(
        Relation::from_tuples(
            2,
            (0..SLOTS as u32)
                .flat_map(|i| (0..SLOTS as u32).filter_map(move |j| (i < j).then_some([i, j]))),
        )
        .unwrap(),
    );

    // Conflicts: shared students -> different slots.
    let conflicts = [
        (0, 2), // algebra & chemistry
        (0, 6), // algebra & geometry
        (1, 2), // biology & chemistry
        (3, 5), // databases & french
        (3, 4), // databases & ethics
        (4, 7), // ethics & history
        (5, 7), // french & history
    ];
    for &(x, y) in &conflicts {
        csp.add_constraint([x, y], neq.clone()).unwrap();
    }
    // Precedence: algebra before geometry; databases before ethics.
    csp.add_constraint([0, 6], before.clone()).unwrap();
    csp.add_constraint([3, 4], before.clone()).unwrap();
    // Pin history to the last slot.
    let last = Arc::new(Relation::from_tuples(1, [[SLOTS as u32 - 1]]).unwrap());
    csp.add_constraint([7], last).unwrap();

    println!("== Exam scheduling: {n} exams, {SLOTS} slots ==");
    println!(
        "{} conflict constraints, 2 precedences, 1 pinned exam",
        conflicts.len()
    );
    println!();

    // Consistency preprocessing (Section 5's local-consistency story).
    println!("== AC-3 arc consistency (2-consistency) ==");
    match ac3(&csp) {
        None => println!("  wipeout: provably unschedulable"),
        Some(domains) => {
            for (exam, domain) in EXAMS.iter().zip(domains.iter()) {
                println!("  {exam:<10} can go in slots {domain:?}");
            }
        }
    }
    println!();

    // Solve.
    let report = Solver::new().solve_csp(&csp).expect_decided();
    let strategy = match report.strategy {
        Strategy::Treewidth(w) => format!("treewidth DP (width {w})"),
        s => format!("{s:?}"),
    };
    println!("== Schedule (via {strategy}) ==");
    let schedule = report.witness.expect("schedulable");
    assert!(csp.is_solution(&schedule));
    for slot in 0..SLOTS as u32 {
        let in_slot: Vec<&str> = EXAMS
            .iter()
            .zip(schedule.iter())
            .filter_map(|(e, &s)| (s == slot).then_some(*e))
            .collect();
        println!("  slot {slot}: {}", in_slot.join(", "));
    }
    // Sanity: all constraints hold.
    for &(x, y) in &conflicts {
        assert_ne!(schedule[x as usize], schedule[y as usize]);
    }
    assert!(schedule[0] < schedule[6]);
    assert!(schedule[3] < schedule[4]);
    assert_eq!(schedule[7], SLOTS as u32 - 1);
    println!();
    println!("Schedule verified against every constraint. ∎");
}
