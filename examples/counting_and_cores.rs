//! Extensions tour: homomorphism counting, structure cores, and
//! backtrack-free search — the strengthenings the paper's framework
//! licenses beyond plain decision problems.
//!
//! * Counting: for bounded treewidth, `|hom(A, B)|` is polynomial
//!   (counting version of Theorem 6.2), here via DP over a *nice* tree
//!   decomposition.
//! * Cores: every structure retracts onto a unique minimal core;
//!   `CSP(B)` depends only on the core (homomorphic equivalence).
//! * Backtrack-free search: Section 5's promise — with enough local
//!   consistency, solutions are assembled greedily with zero dead ends
//!   (Freuder's theorem on tree-structured instances).
//!
//! Run with: `cargo run --example counting_and_cores`

use constraint_db::consistency::{is_tree_instance, solve_tree_csp};
use constraint_db::core::graphs::{clique, complete_bipartite, cycle};
use constraint_db::core::{CspInstance, Relation};
use constraint_db::cq::{are_hom_equivalent, structure_core};
use constraint_db::decomp::count_by_treewidth;
use std::sync::Arc;

fn main() {
    println!("== Counting homomorphisms (counting Theorem 6.2) ==");
    println!("hom(C_n, K_q) = (q-1)^n + (-1)^n (q-1):");
    for n in [5usize, 6, 10, 20] {
        let counted = count_by_treewidth(&cycle(n), &clique(3));
        let closed_form = if n % 2 == 0 {
            2u64.pow(n as u32) + 2
        } else {
            2u64.pow(n as u32) - 2
        };
        println!("  hom(C{n}, K3) = {counted}  (closed form {closed_form})");
        assert_eq!(counted, closed_form);
    }
    // Far beyond enumeration reach:
    let big = count_by_treewidth(&cycle(50), &clique(3));
    println!("  hom(C50, K3) = {big}  (≈ 2^50; enumeration is hopeless)");
    println!();

    println!("== Structure cores and homomorphic equivalence ==");
    for (name, g) in [
        ("C6", cycle(6)),
        ("K(3,4)", complete_bipartite(3, 4)),
        ("C5", cycle(5)),
        ("K4", clique(4)),
    ] {
        let core = structure_core(&g);
        println!(
            "  core({name}): {} vertices -> {} vertices{}",
            g.domain_size(),
            core.domain_size(),
            if core.domain_size() == 2 {
                "  (≈ K2: the graph is bipartite)"
            } else {
                ""
            }
        );
        assert!(are_hom_equivalent(&g, &core));
    }
    println!("  => CSP(C6), CSP(K(3,4)), and CSP(K2) are literally the same problem.");
    println!();

    println!("== Backtrack-free search on tree instances (Freuder / Section 5) ==");
    // A star-shaped assignment problem: center must differ from every
    // leaf, leaves pairwise unconstrained.
    let d = 3usize;
    let neq = Arc::new(
        Relation::from_tuples(
            2,
            (0..d as u32)
                .flat_map(|i| (0..d as u32).filter_map(move |j| (i != j).then_some([i, j]))),
        )
        .unwrap(),
    );
    let mut star = CspInstance::new(7, d);
    for leaf in 1..7u32 {
        star.add_constraint([0, leaf], neq.clone()).unwrap();
    }
    assert!(is_tree_instance(&star));
    let solution = solve_tree_csp(&star).expect("satisfiable");
    println!("  star instance solved backtrack-free: {solution:?}");
    assert!(star.is_solution(&solution));
    println!();
    println!("Counting, cores, and backtrack-free search all verified. ∎");
}
