//! View-based query processing over semistructured data (Section 7 of
//! the paper): RPQs, certain answers, and the CSP connection.
//!
//! A small "web site" graph database is queried through regular path
//! queries; then the database disappears behind views, and we answer
//! queries from view extensions alone — exactly, via the Theorem 7.5
//! constraint-template reduction, and approximately, via the maximal
//! RPQ rewriting of [8].
//!
//! Run with: `cargo run --example semistructured_views`

use constraint_db::rpq::{certain_answer, maximal_rewriting, Extensions, GraphDb, Regex, View};

fn main() {
    // An edge-labeled graph: pages linked by `a` (article link) and
    // `b` (bibliography link).
    let alphabet = ['a', 'b'];
    let mut db = GraphDb::new(6, &alphabet);
    for (x, l, y) in [
        (0, 'a', 1),
        (1, 'b', 2),
        (2, 'a', 3),
        (3, 'b', 4),
        (1, 'a', 5),
        (5, 'b', 3),
    ] {
        db.add_edge(x, l, y);
    }
    println!("== Direct RPQ evaluation ==");
    for pattern in ["ab", "(ab)*", "a(a|b)*b"] {
        let q = Regex::parse(pattern).unwrap();
        let ans = db.answer(&q);
        println!("  ans({pattern:<9}) = {ans:?}");
    }
    println!();

    // Now hide the database behind views.
    let q = Regex::parse("(ab)*").unwrap();
    let views = vec![
        View {
            name: "Vab".into(),
            definition: Regex::parse("ab").unwrap(),
        },
        View {
            name: "Va".into(),
            definition: Regex::parse("a").unwrap(),
        },
    ];
    // View extensions: what we know — some ab-hops and one a-hop.
    let exts = Extensions {
        num_objects: 5,
        pairs: vec![
            vec![(0, 2), (2, 4)], // Vab
            vec![(0, 1)],         // Va
        ],
    };
    println!("== View-based certain answers for Q = (ab)* (Theorem 7.5) ==");
    println!("views: Vab = ab with ext {{(0,2),(2,4)}}; Va = a with ext {{(0,1)}}");
    for (c, d) in [(0u32, 2u32), (0, 4), (2, 4), (0, 0), (0, 1), (1, 4)] {
        let certain = certain_answer(&q, &views, &alphabet, &exts, c, d);
        println!(
            "  ({c},{d}) is {}",
            if certain { "CERTAIN" } else { "not certain" }
        );
    }
    println!();

    // The maximal RPQ rewriting: (ab)* rewrites as Vab*.
    println!("== Maximal RPQ rewriting ([8]) ==");
    let rw = maximal_rewriting(&q, &views, &alphabet);
    println!(
        "rewriting of (ab)* over {{Vab=ab, Va=a}}: {}",
        rw.to_regex()
    );
    let rewritten_answers = rw.answer(&exts);
    println!("evaluating the rewriting on ext(V): {rewritten_answers:?}");
    // Soundness: every rewriting answer is certain.
    for &(x, y) in &rewritten_answers {
        assert!(
            certain_answer(&q, &views, &alphabet, &exts, x, y),
            "rewriting must be contained in certain answers"
        );
    }
    println!("every rewriting answer verified certain (soundness).");
    println!();
    println!(
        "Note: the perfect rewriting is co-NP-hard in general (Theorem 7.2);\n\
         the RPQ rewriting is the best *polynomial-shape* approximation. ∎"
    );
}
