//! H-coloring and the two dichotomies (Section 3 of the paper).
//!
//! Hell–Nešetřil: `CSP(H)` for an undirected graph `H` is polynomial iff
//! `H` is bipartite (2-colorable), NP-complete otherwise. Schaefer: for
//! Boolean templates, six classes are polynomial. This example walks
//! through both on concrete graphs — including the Petersen graph — and
//! shows how the workspace's machinery (consistency, Datalog, search)
//! lines up with the theory.
//!
//! Run with: `cargo run --example graph_coloring`

use constraint_db::consistency::k_consistency_refutes;
use constraint_db::core::graphs::{clique, cycle, two_coloring, undirected};
use constraint_db::datalog::{goal_holds, programs};
use constraint_db::{Solver, Strategy};

fn petersen() -> constraint_db::core::Structure {
    undirected(
        10,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (5, 7),
            (7, 9),
            (9, 6),
            (6, 8),
            (8, 5),
            (0, 5),
            (1, 6),
            (2, 7),
            (3, 8),
            (4, 9),
        ],
    )
}

fn main() {
    println!("== Hell–Nešetřil dichotomy: CSP(H) for undirected H ==");
    println!();

    // Polynomial side: H = K2 (bipartiteness). Three deciders must agree:
    // BFS 2-coloring, the paper's Section 4 Datalog program, and the
    // 3-pebble game refutation.
    let program = programs::non_2_colorability();
    println!("H = K2 (2-colorability): polynomial. Three independent deciders:");
    println!(
        "{:<14} {:>8} {:>16} {:>18}",
        "graph", "BFS", "4-Datalog(odd-cycle)", "3-pebble game"
    );
    for (name, g) in [
        ("C6", cycle(6)),
        ("C7", cycle(7)),
        ("Petersen", petersen()),
        ("K4", clique(4)),
    ] {
        let bfs = two_coloring(&g).is_some();
        let datalog_no = goal_holds(&program, &g).unwrap();
        let game_no = k_consistency_refutes(&g, &clique(2), 3) == Some(false);
        println!(
            "{name:<14} {:>8} {:>20} {:>18}",
            if bfs { "2-COL" } else { "not" },
            if datalog_no { "refutes" } else { "silent" },
            if game_no { "refutes" } else { "silent" }
        );
        assert_eq!(bfs, !datalog_no);
        assert_eq!(bfs, !game_no);
    }
    println!();

    // NP side: H = K3 (3-colorability). The Solver facade picks structural
    // strategies where it can.
    println!("H = K3 (3-colorability): NP-complete in general.");
    for (name, g) in [
        ("C5", cycle(5)),
        ("Petersen", petersen()),
        ("K4", clique(4)),
    ] {
        let report = Solver::new().solve(&g, &clique(3)).expect_decided();
        let verdict = match &report.witness {
            Some(h) => {
                assert!(constraint_db::core::is_homomorphism(
                    &h.clone(),
                    &g,
                    &clique(3)
                ));
                "3-colorable"
            }
            None => "NOT 3-colorable",
        };
        let strategy = match report.strategy {
            Strategy::Treewidth(w) => format!("treewidth DP (width {w})"),
            s => format!("{s:?}"),
        };
        println!("  {name:<10} -> {verdict:<16} via {strategy}");
    }
    println!();

    // The pebble-game hierarchy: how many pebbles refute K_{k+1} -> K_k?
    println!("== Pebble hierarchy: refuting K(k+1) -> K(k) needs k+1 pebbles ==");
    for k in 2..=3usize {
        let a = clique(k + 1);
        let b = clique(k);
        for pebbles in 2..=(k + 1) {
            let refuted = k_consistency_refutes(&a, &b, pebbles) == Some(false);
            println!(
                "  K{} -> K{} with {pebbles} pebbles: {}",
                k + 1,
                k,
                if refuted {
                    "Spoiler wins (refuted)"
                } else {
                    "Duplicator survives"
                }
            );
        }
    }
    println!();
    println!("Dichotomies confirmed on all sampled graphs. ∎");
}
