//! Datalog, pebble games, and establishing strong k-consistency —
//! Sections 4 and 5 of the paper, live.
//!
//! The paper's unifying tractability story: `¬CSP(B)` expressible in
//! k-Datalog ⟺ the existential k-pebble game decides `CSP(B)` ⟺
//! establishing strong k-consistency decides it. This example runs all
//! three faces on the same inputs and then shows Theorem 5.6's
//! construction: re-formatting the largest Duplicator winning strategy
//! into the least constrained strongly k-consistent instance.
//!
//! Run with: `cargo run --example datalog_consistency`

use constraint_db::consistency::{
    establish_strong_k_consistency, is_strongly_k_consistent, largest_winning_strategy,
    verify_definition_5_4,
};
use constraint_db::core::graphs::{clique, cycle};
use constraint_db::datalog::{evaluate, programs};

fn main() {
    println!("== Three faces of one algorithm (Theorem 4.6) ==");
    println!("template B = K2 (2-colorability), inputs = cycles");
    println!(
        "{:<6} {:>14} {:>18} {:>22}",
        "input", "4-Datalog", "3-pebble game", "semantics"
    );
    let program = programs::non_2_colorability();
    let k2 = clique(2);
    for n in [4, 5, 6, 7, 9] {
        let g = cycle(n);
        let eval = evaluate(&program, &g).unwrap();
        let datalog_refutes = !eval.relations[&program.goal].is_empty();
        let spoiler = constraint_db::consistency::spoiler_wins(&g, &k2, 3);
        let truth = constraint_db::core::graphs::two_coloring(&g).is_none();
        println!(
            "C{n:<5} {:>14} {:>18} {:>22}",
            if datalog_refutes {
                "derives Q"
            } else {
                "silent"
            },
            if spoiler {
                "Spoiler wins"
            } else {
                "Duplicator wins"
            },
            if truth {
                "not 2-colorable"
            } else {
                "2-colorable"
            }
        );
        assert_eq!(datalog_refutes, truth);
        assert_eq!(spoiler, truth);
    }
    println!();

    println!("== Semi-naive evaluation statistics ==");
    let g = cycle(9);
    let eval = evaluate(&program, &g).unwrap();
    println!(
        "C9: {} iterations to fixpoint, {} facts derived, P has {} tuples",
        eval.iterations,
        eval.derived_facts,
        eval.relations["P"].len()
    );
    println!();

    println!("== Establishing strong k-consistency (Theorem 5.6) ==");
    let a = cycle(5);
    let b = clique(3);
    let w = largest_winning_strategy(&a, &b, 2);
    println!(
        "C5 -> K3, k = 2: largest winning strategy has {} partial homomorphisms",
        w.len()
    );
    let est = establish_strong_k_consistency(&a, &b, 2).expect("Duplicator wins");
    println!(
        "established instance: |A'| = {} facts over {} symbols",
        est.a_prime.fact_count(),
        est.a_prime.vocabulary().len()
    );
    println!(
        "strongly 2-consistent? {}",
        is_strongly_k_consistent(&est.a_prime, &est.b_prime, 2)
    );
    verify_definition_5_4(&a, &b, &est, 2).expect("all four conditions of Definition 5.4");
    println!("Definition 5.4 conditions 1-4 verified.");
    println!();

    println!("== Where k-consistency is NOT complete ==");
    // K4 -> K3: no homomorphism, but the Duplicator survives 3 pebbles.
    let a = clique(4);
    let b = clique(3);
    let d3 = constraint_db::consistency::duplicator_wins(&a, &b, 3);
    let d4 = constraint_db::consistency::duplicator_wins(&a, &b, 4);
    println!("K4 -> K3: Duplicator wins 3-pebble game: {d3}; 4-pebble game: {d4}");
    assert!(d3 && !d4);
    println!(
        "=> ¬CSP(K3) (3-colorability) is not expressible in 3-Datalog;\n\
        consistent with 3-COL being NP-complete. ∎"
    );
}
