//! Bottom-up semi-naive Datalog evaluation.
//!
//! Datalog queries are computable in polynomial time because the
//! bottom-up evaluation of the least fixpoint terminates within a
//! polynomial number of steps in the size of the EDBs (Section 4 of the
//! paper) — expressibility in Datalog is the paper's unifying
//! *sufficient condition for tractability*. This module implements the
//! standard semi-naive refinement: each iteration joins every rule with
//! at least one "delta" (newly derived) atom, so no derivation is
//! recomputed.

use crate::ast::{Program, Rule, Term};
use cspdb_core::budget::{Budget, ExhaustionReason, Metering};
use cspdb_core::trace::TraceEvent;
use cspdb_core::{Relation, Structure};
use std::collections::HashMap;

/// Error from budgeted evaluation: either the program/EDB pair is
/// malformed, or the budget ran out before the fixpoint (inconclusive —
/// the partial IDBs are sound but possibly incomplete).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The program is inconsistent with the EDB structure.
    Invalid(String),
    /// The budget was exhausted before reaching the least fixpoint.
    Exhausted(ExhaustionReason),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Invalid(msg) => write!(f, "{msg}"),
            EvalError::Exhausted(r) => write!(f, "budget exhausted: {r}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ExhaustionReason> for EvalError {
    fn from(r: ExhaustionReason) -> Self {
        EvalError::Exhausted(r)
    }
}

/// The result of evaluating a program on an EDB structure.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Final IDB relations by predicate name.
    pub relations: HashMap<String, Relation>,
    /// Number of semi-naive iterations until fixpoint.
    pub iterations: usize,
    /// Total facts derived.
    pub derived_facts: usize,
}

impl Evaluation {
    /// The relation computed for a predicate (empty if never derived).
    pub fn relation(&self, predicate: &str) -> Option<&Relation> {
        self.relations.get(predicate)
    }
}

/// Evaluates `program` on the given EDB structure to the least fixpoint.
///
/// EDB predicates are looked up by name in the structure's vocabulary;
/// IDB arities are inferred from the rules.
///
/// # Errors
///
/// Returns a message when an EDB predicate is missing from the structure,
/// arities are inconsistent, or a constant exceeds the domain.
pub fn evaluate(program: &Program, edb: &Structure) -> Result<Evaluation, String> {
    evaluate_budgeted(program, edb, &Budget::unlimited()).map_err(|e| match e {
        EvalError::Invalid(msg) => msg,
        EvalError::Exhausted(_) => unreachable!("unlimited budget cannot exhaust"),
    })
}

/// [`evaluate`] under a [`Budget`]: one step is ticked per EDB/IDB tuple
/// scanned while matching rule bodies, and every newly derived fact is
/// charged against the tuple cap, so both runaway recursion and runaway
/// materialization abort instead of hanging.
///
/// # Errors
///
/// [`EvalError::Invalid`] mirrors [`evaluate`]'s error cases;
/// [`EvalError::Exhausted`] means the fixpoint was not reached.
pub fn evaluate_budgeted(
    program: &Program,
    edb: &Structure,
    budget: &Budget,
) -> Result<Evaluation, EvalError> {
    evaluate_metered(program, edb, &mut budget.meter())
}

/// [`evaluate`] under any [`Metering`] enforcer: same contract as
/// [`evaluate_budgeted`], but the caller keeps the meter, so resource
/// usage (and the tracer it carries) stays readable afterwards. Emits
/// one [`TraceEvent::DatalogIteration`] per semi-naive round with the
/// delta and cumulative fact counts.
pub fn evaluate_metered<M: Metering>(
    program: &Program,
    edb: &Structure,
    meter: &mut M,
) -> Result<Evaluation, EvalError> {
    let domain = edb.domain_size() as u32;
    // Infer predicate arities.
    let mut arity: HashMap<&str, usize> = HashMap::new();
    let idb: std::collections::BTreeSet<&str> = program.idb_predicates();
    for rule in &program.rules {
        for atom in std::iter::once(&rule.head).chain(rule.body.iter()) {
            match arity.entry(atom.predicate.as_str()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != atom.terms.len() {
                        return Err(EvalError::Invalid(format!(
                            "predicate {} used with arities {} and {}",
                            atom.predicate,
                            e.get(),
                            atom.terms.len()
                        )));
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(atom.terms.len());
                }
            }
            for t in &atom.terms {
                if let Term::Const(c) = t {
                    if *c >= domain {
                        return Err(EvalError::Invalid(format!(
                            "constant {c} exceeds EDB domain of size {domain}"
                        )));
                    }
                }
            }
        }
    }
    // Resolve EDB relations.
    let mut edb_rels: HashMap<&str, &Relation> = HashMap::new();
    for pred in program.edb_predicates() {
        let rel = edb.relation_by_name(pred).map_err(|_| {
            EvalError::Invalid(format!("EDB predicate {pred} missing from structure"))
        })?;
        if rel.arity() != arity[pred] {
            return Err(EvalError::Invalid(format!(
                "EDB predicate {pred}: structure arity {} vs program arity {}",
                rel.arity(),
                arity[pred]
            )));
        }
        edb_rels.insert(pred, rel);
    }
    // IDB state.
    let mut full: HashMap<String, Relation> = idb
        .iter()
        .map(|&p| (p.to_owned(), Relation::empty(arity[p])))
        .collect();
    let mut delta: HashMap<String, Relation> = full.clone();

    // Iteration 0: all rules against (empty) IDBs — fires EDB-only rules.
    let mut derived_facts = 0usize;
    for rule in &program.rules {
        let before = derived_facts;
        fire_rule(rule, &edb_rels, &full, None, meter, &mut |pred, tuple| {
            let rel = delta.get_mut(pred).expect("head is IDB");
            if rel.insert(tuple).expect("arity checked") {
                derived_facts += 1;
            }
        })?;
        meter.charge_tuples((derived_facts - before) as u64)?;
    }
    for (p, d) in &delta {
        let merged = full[p].union(d).expect("same arity");
        full.insert(p.clone(), merged);
    }
    meter.tracer().emit_with(|| TraceEvent::DatalogIteration {
        iteration: 0,
        delta_facts: derived_facts as u64,
        total_facts: derived_facts as u64,
    });

    let mut iterations = 1usize;
    loop {
        let before_iter = derived_facts;
        let mut new_delta: HashMap<String, Relation> = idb
            .iter()
            .map(|&p| (p.to_owned(), Relation::empty(arity[p])))
            .collect();
        let mut any = false;
        for rule in &program.rules {
            // Positions of IDB atoms in the body.
            let idb_positions: Vec<usize> = rule
                .body
                .iter()
                .enumerate()
                .filter(|(_, a)| idb.contains(a.predicate.as_str()))
                .map(|(i, _)| i)
                .collect();
            for &pos in &idb_positions {
                let delta_rel = &delta[rule.body[pos].predicate.as_str()];
                if delta_rel.is_empty() {
                    continue;
                }
                let before = derived_facts;
                fire_rule(
                    rule,
                    &edb_rels,
                    &full,
                    Some((pos, delta_rel)),
                    meter,
                    &mut |pred, tuple| {
                        if !full[pred].contains(tuple) {
                            let rel = new_delta.get_mut(pred).expect("head is IDB");
                            if rel.insert(tuple).expect("arity checked") {
                                derived_facts += 1;
                                any = true;
                            }
                        }
                    },
                )?;
                meter.charge_tuples((derived_facts - before) as u64)?;
            }
        }
        if !any {
            break;
        }
        for (p, d) in &new_delta {
            let merged = full[p].union(d).expect("same arity");
            full.insert(p.clone(), merged);
        }
        delta = new_delta;
        meter.tracer().emit_with(|| TraceEvent::DatalogIteration {
            iteration: iterations as u64,
            delta_facts: (derived_facts - before_iter) as u64,
            total_facts: derived_facts as u64,
        });
        iterations += 1;
    }
    Ok(Evaluation {
        relations: full,
        iterations,
        derived_facts,
    })
}

/// True iff the goal predicate derives at least one fact.
///
/// # Errors
///
/// Propagates [`evaluate`] errors; also errors if the goal predicate is
/// not an IDB of the program.
pub fn goal_holds(program: &Program, edb: &Structure) -> Result<bool, String> {
    let eval = evaluate(program, edb)?;
    eval.relations
        .get(&program.goal)
        .map(|r| !r.is_empty())
        .ok_or_else(|| format!("goal predicate {} is not an IDB", program.goal))
}

/// [`goal_holds`] under a [`Budget`]. Note the one-sidedness: because
/// bottom-up evaluation only ever derives facts that *do* hold, a `true`
/// answer needs no completed fixpoint, but `false` does — so exhaustion
/// is reported as [`EvalError::Exhausted`] rather than a (possibly
/// unsound) `false`.
pub fn goal_holds_budgeted(
    program: &Program,
    edb: &Structure,
    budget: &Budget,
) -> Result<bool, EvalError> {
    let eval = evaluate_budgeted(program, edb, budget)?;
    eval.relations
        .get(&program.goal)
        .map(|r| !r.is_empty())
        .ok_or_else(|| EvalError::Invalid(format!("goal predicate {} is not an IDB", program.goal)))
}

/// Enumerates all satisfying bindings of a single rule, invoking `emit`
/// with the head predicate and the instantiated head tuple.
fn fire_rule<M: Metering>(
    rule: &Rule,
    edb: &HashMap<&str, &Relation>,
    full: &HashMap<String, Relation>,
    delta_at: Option<(usize, &Relation)>,
    meter: &mut M,
    emit: &mut impl FnMut(&str, &[u32]),
) -> Result<(), ExhaustionReason> {
    let mut bindings: HashMap<&str, u32> = HashMap::new();
    let mut head_tuple = vec![0u32; rule.head.terms.len()];
    search(
        rule,
        0,
        edb,
        full,
        delta_at,
        &mut bindings,
        meter,
        &mut |b| {
            for (i, t) in rule.head.terms.iter().enumerate() {
                head_tuple[i] = match t {
                    Term::Var(v) => b[v.as_str()],
                    Term::Const(c) => *c,
                };
            }
            emit(&rule.head.predicate, &head_tuple);
        },
    )
}

#[allow(clippy::too_many_arguments)]
fn search<'r, M: Metering>(
    rule: &'r Rule,
    idx: usize,
    edb: &HashMap<&str, &Relation>,
    full: &HashMap<String, Relation>,
    delta_at: Option<(usize, &Relation)>,
    bindings: &mut HashMap<&'r str, u32>,
    meter: &mut M,
    found: &mut impl FnMut(&HashMap<&'r str, u32>),
) -> Result<(), ExhaustionReason> {
    if idx == rule.body.len() {
        found(bindings);
        return Ok(());
    }
    let atom = &rule.body[idx];
    let relation: &Relation = match delta_at {
        Some((pos, d)) if pos == idx => d,
        _ => match full.get(atom.predicate.as_str()) {
            Some(r) => r,
            None => edb[atom.predicate.as_str()],
        },
    };
    'tuples: for tuple in relation.iter() {
        meter.tick()?;
        let mut newly_bound: Vec<&str> = Vec::new();
        for (t, &value) in atom.terms.iter().zip(tuple.iter()) {
            match t {
                Term::Const(c) => {
                    if *c != value {
                        for v in newly_bound.drain(..) {
                            bindings.remove(v);
                        }
                        continue 'tuples;
                    }
                }
                Term::Var(v) => match bindings.get(v.as_str()) {
                    Some(&bound) => {
                        if bound != value {
                            for v in newly_bound.drain(..) {
                                bindings.remove(v);
                            }
                            continue 'tuples;
                        }
                    }
                    None => {
                        bindings.insert(v.as_str(), value);
                        newly_bound.push(v.as_str());
                    }
                },
            }
        }
        let deep = search(rule, idx + 1, edb, full, delta_at, bindings, meter, found);
        for v in newly_bound {
            bindings.remove(v);
        }
        deep?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use cspdb_core::graphs::{digraph, directed_path};

    #[test]
    fn transitive_closure() {
        let p = parse_program(
            "T(X,Y) :- E(X,Y).\n\
             T(X,Y) :- T(X,Z), E(Z,Y).",
        )
        .unwrap();
        let g = directed_path(4);
        let eval = evaluate(&p, &g).unwrap();
        let t = eval.relation("T").unwrap();
        assert_eq!(t.len(), 6); // all i<j pairs
        assert!(t.contains(&[0, 3]));
        assert!(!t.contains(&[3, 0]));
    }

    #[test]
    fn semi_naive_iterates_logarithmically_or_linearly() {
        // Linear rule: ~n iterations on a path.
        let p = parse_program(
            "T(X,Y) :- E(X,Y).\n\
             T(X,Y) :- T(X,Z), E(Z,Y).",
        )
        .unwrap();
        let g = directed_path(9);
        let eval = evaluate(&p, &g).unwrap();
        assert!(eval.iterations <= 10);
        assert_eq!(eval.relation("T").unwrap().len(), 36);
    }

    #[test]
    fn goal_with_constants() {
        let p =
            parse_program("Q :- T(0, 3).\nT(X,Y) :- E(X,Y).\nT(X,Y) :- T(X,Z), E(Z,Y).\n% goal: Q")
                .unwrap();
        assert!(goal_holds(&p, &directed_path(4)).unwrap());
        // Same domain size, but no path from 0 to 3.
        assert!(!goal_holds(&p, &digraph(4, &[(0, 1), (2, 3)])).unwrap());
        // A domain too small for the constant is an error, not `false`.
        assert!(goal_holds(&p, &directed_path(3)).is_err());
    }

    #[test]
    fn facts_and_nullary_goals() {
        let p = parse_program("Q :- E(X,X).").unwrap();
        assert!(!goal_holds(&p, &digraph(2, &[(0, 1)])).unwrap());
        assert!(goal_holds(&p, &digraph(2, &[(0, 1), (1, 1)])).unwrap());
    }

    #[test]
    fn missing_edb_is_an_error() {
        let p = parse_program("Q :- F(X,X).").unwrap();
        assert!(evaluate(&p, &digraph(1, &[])).is_err());
    }

    #[test]
    fn arity_conflicts_detected() {
        let p = parse_program("P(X) :- E(X,Y).\nQ :- P(X,X).").unwrap();
        assert!(evaluate(&p, &digraph(2, &[(0, 1)])).is_err());
    }

    #[test]
    fn constant_out_of_domain_detected() {
        let p = parse_program("Q :- E(X, 9).").unwrap();
        assert!(evaluate(&p, &digraph(2, &[(0, 1)])).is_err());
    }

    #[test]
    fn same_generation_style_recursion() {
        // Mutual recursion through two IDBs.
        let p = parse_program(
            "Odd(X,Y) :- E(X,Y).\n\
             Odd(X,Y) :- Even(X,Z), E(Z,Y).\n\
             Even(X,Y) :- Odd(X,Z), E(Z,Y).\n\
             % goal: Even",
        )
        .unwrap();
        let g = directed_path(5);
        let eval = evaluate(&p, &g).unwrap();
        let even = eval.relation("Even").unwrap();
        assert!(even.contains(&[0, 2]));
        assert!(even.contains(&[0, 4]));
        assert!(!even.contains(&[0, 1]));
        let odd = eval.relation("Odd").unwrap();
        assert!(odd.contains(&[0, 1]));
        assert!(odd.contains(&[0, 3]));
    }
}
