//! Canonical Datalog programs from the paper and classic tractable
//! templates whose complements are Datalog-expressible (Sections 3–5).
//!
//! Feder–Vardi's unifying explanation of tractability: for many templates
//! **B**, the *complement* of `CSP(B)` is expressible in k-Datalog. Three
//! canonical witnesses implemented here:
//!
//! * **Non-2-Colorability** — the paper's own Section 4 example (odd-cycle
//!   detection, a 4-Datalog program);
//! * **2-SAT unsatisfiability** — reachability in the implication graph
//!   (a 3-Datalog program over a literal-graph EDB);
//! * **Horn unsatisfiability** — unit propagation as Datalog (bounded
//!   clause width; Horn rules *are* Datalog rules).
//!
//! Theorem 4.6 makes these programs equivalent to existential pebble
//! games; the cross-crate tests in the workspace verify that equivalence
//! computationally (Experiment E6). The fully general canonical program
//! `ρ_B` of Theorem 4.5(3) uses a powerset construction that is doubly
//! exponential in `|B|^k`; per DESIGN.md we demonstrate the theorem on
//! these concrete templates instead of materializing that generator.

use crate::ast::Program;
use crate::parser::parse_program;
use cspdb_core::{Structure, Vocabulary};

/// The paper's Non-2-Colorability program (Section 4): the goal holds
/// iff the graph in EDB `E/2` contains an odd cycle (equivalently, is
/// not 2-colorable). A 4-Datalog program.
pub fn non_2_colorability() -> Program {
    parse_program(
        "P(X,Y) :- E(X,Y).\n\
         P(X,Y) :- P(X,Z), E(Z,W), E(W,Y).\n\
         Q :- P(X,X).\n\
         % goal: Q",
    )
    .expect("static program parses")
}

/// 2-SAT refutation program over an implication-graph EDB with
/// predicates `Imp/2` (edges) and `Comp/2` (literal–complement pairs):
/// the goal holds iff some literal reaches its complement and back.
pub fn two_sat_unsat() -> Program {
    parse_program(
        "R(X,Y) :- Imp(X,Y).\n\
         R(X,Y) :- R(X,Z), Imp(Z,Y).\n\
         Q :- R(X,Y), Comp(X,Y), R(Y,X).\n\
         % goal: Q",
    )
    .expect("static program parses")
}

/// Horn refutation program (clause width ≤ 3) over an EDB with
/// predicates `Fact/1` (unit positive clauses), `Rule1/2` and `Rule2/3`
/// (implications with 1- and 2-atom bodies), and `Goal1/1`, `Goal2/2`
/// (fully negative clauses): the goal holds iff the Horn formula is
/// unsatisfiable.
pub fn horn_unsat() -> Program {
    parse_program(
        "T(X) :- Fact(X).\n\
         T(H) :- Rule1(H,B), T(B).\n\
         T(H) :- Rule2(H,B1,B2), T(B1), T(B2).\n\
         Q :- Goal1(B), T(B).\n\
         Q :- Goal2(B1,B2), T(B1), T(B2).\n\
         % goal: Q",
    )
    .expect("static program parses")
}

/// Encodes a 2-CNF formula over `num_vars` variables as the implication
/// graph EDB expected by [`two_sat_unsat`].
///
/// Clauses are pairs of DIMACS-style literals: `+ (v+1)` for variable
/// `v`, negative for its negation. Literal vertex encoding: `2v` for
/// `x_v`, `2v + 1` for `¬x_v`.
///
/// # Panics
///
/// Panics on zero or out-of-range literals.
pub fn two_sat_edb(num_vars: usize, clauses: &[(i32, i32)]) -> Structure {
    let voc = Vocabulary::new([("Imp", 2), ("Comp", 2)]).expect("static");
    let mut s = Structure::new(voc, 2 * num_vars);
    let vertex = |lit: i32| -> u32 {
        assert!(lit != 0, "literal 0 is invalid");
        let v = (lit.unsigned_abs() - 1) as usize;
        assert!(v < num_vars, "literal variable out of range");
        if lit > 0 {
            2 * v as u32
        } else {
            2 * v as u32 + 1
        }
    };
    let negate = |vertex: u32| -> u32 { vertex ^ 1 };
    for &(a, b) in clauses {
        let (va, vb) = (vertex(a), vertex(b));
        // (a ∨ b) ≡ (¬a → b) ∧ (¬b → a).
        s.insert_by_name("Imp", &[negate(va), vb])
            .expect("in range");
        s.insert_by_name("Imp", &[negate(vb), va])
            .expect("in range");
    }
    for v in 0..num_vars as u32 {
        s.insert_by_name("Comp", &[2 * v, 2 * v + 1])
            .expect("in range");
        s.insert_by_name("Comp", &[2 * v + 1, 2 * v])
            .expect("in range");
    }
    s
}

/// A Horn clause of width ≤ 3 for [`horn_edb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HornClause {
    /// A positive unit clause `x`.
    Fact(u32),
    /// `b → h`.
    Rule1 {
        /// Head variable.
        head: u32,
        /// Body variable.
        body: u32,
    },
    /// `b1 ∧ b2 → h`.
    Rule2 {
        /// Head variable.
        head: u32,
        /// First body variable.
        body1: u32,
        /// Second body variable.
        body2: u32,
    },
    /// `¬b` (a negative unit clause).
    Goal1(u32),
    /// `¬b1 ∨ ¬b2`.
    Goal2(u32, u32),
}

/// Encodes a width-≤3 Horn formula as the EDB expected by
/// [`horn_unsat`].
///
/// # Panics
///
/// Panics if a variable is `>= num_vars`.
pub fn horn_edb(num_vars: usize, clauses: &[HornClause]) -> Structure {
    let voc = Vocabulary::new([
        ("Fact", 1),
        ("Rule1", 2),
        ("Rule2", 3),
        ("Goal1", 1),
        ("Goal2", 2),
    ])
    .expect("static");
    let mut s = Structure::new(voc, num_vars);
    for &c in clauses {
        match c {
            HornClause::Fact(x) => s.insert_by_name("Fact", &[x]),
            HornClause::Rule1 { head, body } => s.insert_by_name("Rule1", &[head, body]),
            HornClause::Rule2 { head, body1, body2 } => {
                s.insert_by_name("Rule2", &[head, body1, body2])
            }
            HornClause::Goal1(x) => s.insert_by_name("Goal1", &[x]),
            HornClause::Goal2(x, y) => s.insert_by_name("Goal2", &[x, y]),
        }
        .expect("variables in range");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::goal_holds;
    use cspdb_core::graphs::{clique, complete_bipartite, cycle, path, two_coloring};

    #[test]
    fn non_2_colorability_is_4_datalog() {
        let p = non_2_colorability();
        assert!(p.is_k_datalog(4));
        assert!(!p.is_k_datalog(3));
    }

    #[test]
    fn non_2_colorability_matches_bipartiteness() {
        let graphs = [
            cycle(3),
            cycle(4),
            cycle(5),
            cycle(6),
            cycle(7),
            path(6),
            clique(3),
            clique(4),
            complete_bipartite(2, 3),
        ];
        let p = non_2_colorability();
        for g in graphs {
            let not_colorable = goal_holds(&p, &g).unwrap();
            assert_eq!(
                not_colorable,
                two_coloring(&g).is_none(),
                "disagreement on {g}"
            );
        }
    }

    #[test]
    fn two_sat_program_on_simple_formulas() {
        let p = two_sat_unsat();
        assert!(p.is_k_datalog(3));
        // (x ∨ y) — satisfiable.
        let edb = two_sat_edb(2, &[(1, 2)]);
        assert!(!goal_holds(&p, &edb).unwrap());
        // (x) ∧ (¬x): encoded as (x ∨ x) ∧ (¬x ∨ ¬x) — unsatisfiable.
        let edb = two_sat_edb(1, &[(1, 1), (-1, -1)]);
        assert!(goal_holds(&p, &edb).unwrap());
        // Implication chain forcing a contradiction:
        // (¬x ∨ y)(¬y ∨ z)(¬z ∨ ¬x)(x ∨ x) is satisfiable with x=0? No:
        // clause (x ∨ x) forces x=1, then y=1, z=1, then ¬z∨¬x fails.
        let edb = two_sat_edb(3, &[(-1, 2), (-2, 3), (-3, -1), (1, 1)]);
        assert!(goal_holds(&p, &edb).unwrap());
        // Drop the forcing clause: satisfiable (x = 0).
        let edb = two_sat_edb(3, &[(-1, 2), (-2, 3), (-3, -1)]);
        assert!(!goal_holds(&p, &edb).unwrap());
    }

    #[test]
    fn horn_program_matches_unit_propagation() {
        let p = horn_unsat();
        // x, x→y, ¬y : unsat.
        let edb = horn_edb(
            2,
            &[
                HornClause::Fact(0),
                HornClause::Rule1 { head: 1, body: 0 },
                HornClause::Goal1(1),
            ],
        );
        assert!(goal_holds(&p, &edb).unwrap());
        // x, x∧y→z, ¬z : satisfiable (y can be false).
        let edb = horn_edb(
            3,
            &[
                HornClause::Fact(0),
                HornClause::Rule2 {
                    head: 2,
                    body1: 0,
                    body2: 1,
                },
                HornClause::Goal1(2),
            ],
        );
        assert!(!goal_holds(&p, &edb).unwrap());
        // x, y, x∧y→z, ¬z : unsat.
        let edb = horn_edb(
            3,
            &[
                HornClause::Fact(0),
                HornClause::Fact(1),
                HornClause::Rule2 {
                    head: 2,
                    body1: 0,
                    body2: 1,
                },
                HornClause::Goal1(2),
            ],
        );
        assert!(goal_holds(&p, &edb).unwrap());
        // Goal2: x, y, ¬x∨¬y : unsat.
        let edb = horn_edb(
            2,
            &[
                HornClause::Fact(0),
                HornClause::Fact(1),
                HornClause::Goal2(0, 1),
            ],
        );
        assert!(goal_holds(&p, &edb).unwrap());
    }

    #[test]
    fn empty_formulas_are_satisfiable() {
        assert!(!goal_holds(&two_sat_unsat(), &two_sat_edb(2, &[])).unwrap());
        assert!(!goal_holds(&horn_unsat(), &horn_edb(2, &[])).unwrap());
    }
}
