//! Datalog abstract syntax: terms, atoms, rules, programs.
//!
//! A Datalog program (Section 4 of the paper) is a finite set of rules
//! `t0 :- t1, ..., tm` over atomic formulas. Predicates occurring in rule
//! heads are the *intensional* (IDB) predicates; all others are
//! *extensional* (EDB) and are supplied by a [`cspdb_core::Structure`]
//! at evaluation time. One IDB is designated the *goal*.

use std::collections::BTreeSet;
use std::fmt;

/// A term: a variable (named) or a constant (domain element).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A Datalog variable.
    Var(String),
    /// A constant domain element.
    Const(u32),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An atom `P(t1, ..., tn)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Predicate name.
    pub predicate: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(predicate: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            predicate: predicate.into(),
            terms,
        }
    }

    /// The set of variable names occurring in the atom.
    pub fn variables(&self) -> BTreeSet<&str> {
        self.terms
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(v.as_str()),
                Term::Const(_) => None,
            })
            .collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.predicate)?;
        if !self.terms.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A rule `head :- body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The head atom (an IDB predicate).
    pub head: Atom,
    /// The body atoms (EDB or IDB predicates). Empty bodies make facts.
    pub body: Vec<Atom>,
}

impl Rule {
    /// Safety: every head variable occurs in the body.
    pub fn is_safe(&self) -> bool {
        let body_vars: BTreeSet<&str> = self.body.iter().flat_map(|a| a.variables()).collect();
        self.head.variables().is_subset(&body_vars)
    }

    /// Number of distinct variables in the body.
    pub fn body_variable_count(&self) -> usize {
        self.body
            .iter()
            .flat_map(|a| a.variables())
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Number of distinct variables in the head.
    pub fn head_variable_count(&self) -> usize {
        self.head.variables().len()
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        write!(f, ".")
    }
}

/// A Datalog program: rules plus a designated goal predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
    /// The goal IDB predicate.
    pub goal: String,
}

impl Program {
    /// Creates a program, checking rule safety.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unsafe rule.
    pub fn new(rules: Vec<Rule>, goal: impl Into<String>) -> Result<Self, String> {
        for r in &rules {
            if !r.is_safe() {
                return Err(format!("unsafe rule (head variable not in body): {r}"));
            }
        }
        Ok(Program {
            rules,
            goal: goal.into(),
        })
    }

    /// The IDB predicate names (those occurring in heads).
    pub fn idb_predicates(&self) -> BTreeSet<&str> {
        self.rules
            .iter()
            .map(|r| r.head.predicate.as_str())
            .collect()
    }

    /// The EDB predicate names (body predicates that are not IDBs).
    pub fn edb_predicates(&self) -> BTreeSet<&str> {
        let idb = self.idb_predicates();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter())
            .map(|a| a.predicate.as_str())
            .filter(|p| !idb.contains(p))
            .collect()
    }

    /// True if this is a k-Datalog program: every rule body has at most
    /// `k` distinct variables and every head at most `k` (Section 4).
    pub fn is_k_datalog(&self, k: usize) -> bool {
        self.rules
            .iter()
            .all(|r| r.body_variable_count() <= k && r.head_variable_count() <= k)
    }

    /// The least `k` such that the program is k-Datalog.
    pub fn datalog_width(&self) -> usize {
        self.rules
            .iter()
            .map(|r| r.body_variable_count().max(r.head_variable_count()))
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        write!(f, "% goal: {}", self.goal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Term {
        Term::Var(name.into())
    }

    #[test]
    fn safety_check() {
        let safe = Rule {
            head: Atom::new("P", vec![v("X")]),
            body: vec![Atom::new("E", vec![v("X"), v("Y")])],
        };
        assert!(safe.is_safe());
        let unsafe_rule = Rule {
            head: Atom::new("P", vec![v("Z")]),
            body: vec![Atom::new("E", vec![v("X"), v("Y")])],
        };
        assert!(!unsafe_rule.is_safe());
        assert!(Program::new(vec![unsafe_rule], "P").is_err());
    }

    #[test]
    fn edb_idb_split_and_width() {
        let p = Program::new(
            vec![
                Rule {
                    head: Atom::new("P", vec![v("X"), v("Y")]),
                    body: vec![Atom::new("E", vec![v("X"), v("Y")])],
                },
                Rule {
                    head: Atom::new("P", vec![v("X"), v("Y")]),
                    body: vec![
                        Atom::new("P", vec![v("X"), v("Z")]),
                        Atom::new("E", vec![v("Z"), v("W")]),
                        Atom::new("E", vec![v("W"), v("Y")]),
                    ],
                },
                Rule {
                    head: Atom::new("Q", vec![]),
                    body: vec![Atom::new("P", vec![v("X"), v("X")])],
                },
            ],
            "Q",
        )
        .unwrap();
        assert_eq!(
            p.idb_predicates().into_iter().collect::<Vec<_>>(),
            ["P", "Q"]
        );
        assert_eq!(p.edb_predicates().into_iter().collect::<Vec<_>>(), ["E"]);
        // The paper's example program: 4 distinct body variables.
        assert_eq!(p.datalog_width(), 4);
        assert!(p.is_k_datalog(4));
        assert!(!p.is_k_datalog(3));
    }

    #[test]
    fn display_roundtrips_visually() {
        let r = Rule {
            head: Atom::new("Q", vec![]),
            body: vec![Atom::new("P", vec![v("X"), Term::Const(3)])],
        };
        assert_eq!(r.to_string(), "Q :- P(X,3).");
    }

    #[test]
    fn constants_do_not_count_as_variables() {
        let r = Rule {
            head: Atom::new("P", vec![v("X")]),
            body: vec![Atom::new("E", vec![v("X"), Term::Const(0)])],
        };
        assert_eq!(r.body_variable_count(), 1);
        assert!(r.is_safe());
    }
}
