//! A small text parser for Datalog programs.
//!
//! Grammar (whitespace-insensitive, `%` line comments):
//!
//! ```text
//! program := rule* goal?
//! rule    := atom ( ":-" atom ("," atom)* )? "."
//! atom    := IDENT ( "(" term ("," term)* ")" )?
//! term    := IDENT | NUMBER          % identifiers are variables
//! goal    := "% goal:" IDENT         % otherwise: last rule's head
//! ```
//!
//! Identifiers in argument position are variables; numbers are constants;
//! identifiers in predicate position are predicate names. The paper's
//! Non-2-Colorability program parses verbatim:
//!
//! ```text
//! P(X,Y) :- E(X,Y).
//! P(X,Y) :- P(X,Z), E(Z,W), E(W,Y).
//! Q :- P(X,X).
//! ```

use crate::ast::{Atom, Program, Rule, Term};

/// Parses a Datalog program. The goal defaults to the head predicate of
/// the *last* rule unless a `% goal: Name` comment appears.
///
/// # Errors
///
/// Returns a descriptive message on syntax errors or unsafe rules.
pub fn parse_program(input: &str) -> Result<Program, String> {
    let mut goal: Option<String> = None;
    let mut cleaned = String::with_capacity(input.len());
    for line in input.lines() {
        if let Some(rest) = line.trim_start().strip_prefix("% goal:") {
            goal = Some(rest.trim().to_owned());
        }
        let without_comment = match line.find('%') {
            Some(i) => &line[..i],
            None => line,
        };
        cleaned.push_str(without_comment);
        cleaned.push('\n');
    }
    let mut rules = Vec::new();
    for (i, rule_src) in cleaned.split('.').enumerate() {
        let rule_src = rule_src.trim();
        if rule_src.is_empty() {
            continue;
        }
        rules.push(parse_rule(rule_src).map_err(|e| format!("rule {}: {e}", i + 1))?);
    }
    if rules.is_empty() {
        return Err("program has no rules".into());
    }
    let goal = goal.unwrap_or_else(|| rules.last().unwrap().head.predicate.clone());
    Program::new(rules, goal)
}

fn parse_rule(src: &str) -> Result<Rule, String> {
    let (head_src, body_src) = match src.split_once(":-") {
        Some((h, b)) => (h.trim(), Some(b.trim())),
        None => (src.trim(), None),
    };
    let head = parse_atom(&mut Tokenizer::new(head_src))?;
    let mut body = Vec::new();
    if let Some(bs) = body_src {
        let mut tz = Tokenizer::new(bs);
        loop {
            body.push(parse_atom(&mut tz)?);
            match tz.peek() {
                Some(Token::Comma) => {
                    tz.next_token();
                }
                None => break,
                Some(t) => return Err(format!("expected ',' between atoms, found {t:?}")),
            }
        }
    }
    Ok(Rule { head, body })
}

fn parse_atom(tz: &mut Tokenizer) -> Result<Atom, String> {
    let name = match tz.next_token() {
        Some(Token::Ident(s)) => s,
        other => return Err(format!("expected predicate name, found {other:?}")),
    };
    let mut terms = Vec::new();
    if matches!(tz.peek(), Some(Token::LParen)) {
        tz.next_token();
        loop {
            match tz.next_token() {
                Some(Token::Ident(s)) => terms.push(Term::Var(s)),
                Some(Token::Number(n)) => terms.push(Term::Const(n)),
                other => return Err(format!("expected term, found {other:?}")),
            }
            match tz.next_token() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(format!("expected ',' or ')', found {other:?}")),
            }
        }
    }
    Ok(Atom::new(name, terms))
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(u32),
    LParen,
    RParen,
    Comma,
}

struct Tokenizer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    lookahead: Option<Token>,
}

impl<'a> Tokenizer<'a> {
    fn new(src: &'a str) -> Self {
        Tokenizer {
            chars: src.chars().peekable(),
            lookahead: None,
        }
    }

    fn peek(&mut self) -> Option<&Token> {
        if self.lookahead.is_none() {
            self.lookahead = self.lex();
        }
        self.lookahead.as_ref()
    }

    fn next_token(&mut self) -> Option<Token> {
        if let Some(t) = self.lookahead.take() {
            return Some(t);
        }
        self.lex()
    }

    fn lex(&mut self) -> Option<Token> {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
        let c = *self.chars.peek()?;
        match c {
            '(' => {
                self.chars.next();
                Some(Token::LParen)
            }
            ')' => {
                self.chars.next();
                Some(Token::RParen)
            }
            ',' => {
                self.chars.next();
                Some(Token::Comma)
            }
            c if c.is_ascii_digit() => {
                let mut n: u32 = 0;
                while matches!(self.chars.peek(), Some(d) if d.is_ascii_digit()) {
                    n = n * 10 + self.chars.next().unwrap().to_digit(10).unwrap();
                }
                Some(Token::Number(n))
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while matches!(self.chars.peek(), Some(d) if d.is_alphanumeric() || *d == '_') {
                    s.push(self.chars.next().unwrap());
                }
                Some(Token::Ident(s))
            }
            other => {
                // Unknown character: consume to avoid an infinite loop and
                // surface it as an identifier-looking token downstream.
                self.chars.next();
                Some(Token::Ident(other.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_program() {
        let p = parse_program(
            "P(X,Y) :- E(X,Y).\n\
             P(X,Y) :- P(X,Z), E(Z,W), E(W,Y).\n\
             Q :- P(X,X).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.goal, "Q");
        assert_eq!(p.datalog_width(), 4);
        assert_eq!(p.rules[1].to_string(), "P(X,Y) :- P(X,Z), E(Z,W), E(W,Y).");
    }

    #[test]
    fn goal_comment_overrides_default() {
        let p = parse_program(
            "% goal: P\n\
             P(X) :- E(X,Y).\n\
             Q :- P(X).",
        )
        .unwrap();
        assert_eq!(p.goal, "P");
    }

    #[test]
    fn constants_parse() {
        let p = parse_program("Q(X) :- E(X, 3).").unwrap();
        assert_eq!(p.rules[0].body[0].terms[1], Term::Const(3));
    }

    #[test]
    fn comments_are_stripped() {
        let p = parse_program("P(X) :- E(X,Y). % transitive base\nQ :- P(X).").unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn syntax_errors_are_reported() {
        assert!(parse_program("").is_err());
        assert!(parse_program("P(X :- E(X).").is_err());
        assert!(parse_program("P(X) :- E(X,Y),.").is_err());
        // Unsafe rule rejected at Program construction.
        assert!(parse_program("P(X) :- E(Y,Y).").is_err());
    }

    #[test]
    fn nullary_atoms() {
        let p = parse_program("Q :- E(X,X).").unwrap();
        assert!(p.rules[0].head.terms.is_empty());
    }

    #[test]
    fn goal_defaults_to_last_rules_head() {
        // Two rules with distinct head predicates: the *last* rule's
        // head is the default goal (matching the paper's programs, where
        // the query predicate is defined last).
        let p = parse_program("P(X,Y) :- E(X,Y).\nQ :- P(X,X).").unwrap();
        assert_eq!(p.goal, "Q");
    }

    #[test]
    fn goal_comment_overrides_last_rule_default() {
        // `% goal:` wins over the last-rule default regardless of where
        // the comment appears in the source.
        let p = parse_program("% goal: P\nP(X,Y) :- E(X,Y).\nQ :- P(X,X).").unwrap();
        assert_eq!(p.goal, "P");
        let p = parse_program("P(X,Y) :- E(X,Y).\nQ :- P(X,X).\n% goal: P").unwrap();
        assert_eq!(p.goal, "P");
    }
}
