//! # cspdb-datalog
//!
//! A Datalog engine for *constraint-db* — the database-theoretic side of
//! the paper's central tractability story (Section 4): *expressibility of
//! `¬CSP(B)` in Datalog is a sufficient condition for tractability*,
//! because bottom-up evaluation reaches the least fixpoint in
//! polynomially many steps.
//!
//! * [`Program`] / [`Rule`] / [`Atom`] / [`Term`] — abstract syntax with
//!   safety checking and the k-Datalog bounded-variable test
//!   ([`Program::is_k_datalog`]);
//! * [`parse_program`] — a small rule-syntax parser (the paper's
//!   Non-2-Colorability program parses verbatim);
//! * [`evaluate`] / [`goal_holds`] — semi-naive bottom-up evaluation over
//!   a [`cspdb_core::Structure`] EDB;
//! * [`programs`] — the paper's Section 4 example program and the
//!   2-SAT / Horn refutation programs whose equivalence with existential
//!   pebble games (Theorem 4.6) the workspace tests verify.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod eval;
mod parser;
pub mod programs;

pub use ast::{Atom, Program, Rule, Term};
pub use eval::{
    evaluate, evaluate_budgeted, evaluate_metered, goal_holds, goal_holds_budgeted, EvalError,
    Evaluation,
};
pub use parser::parse_program;

#[cfg(test)]
mod theorem_4_6_tests {
    //! Computational witnesses for Theorem 4.6: for templates whose
    //! complement is k-Datalog-expressible, the Datalog goal, the
    //! Spoiler's pebble-game win, and the non-existence of a
    //! homomorphism all coincide.

    use crate::eval::goal_holds;
    use crate::programs::non_2_colorability;
    use cspdb_consistency::spoiler_wins;
    use cspdb_core::graphs::{clique, complete_bipartite, cycle, path, two_coloring};

    #[test]
    fn datalog_equals_game_equals_semantics_for_2col() {
        let graphs = [
            cycle(3),
            cycle(4),
            cycle(5),
            cycle(6),
            cycle(7),
            path(5),
            clique(3),
            complete_bipartite(2, 2),
        ];
        let program = non_2_colorability();
        let k2 = clique(2);
        for g in graphs {
            let datalog_says_no = goal_holds(&program, &g).unwrap();
            // Odd-cycle walking needs only 3 pebbles; the program uses 4
            // variables. Both levels agree with the semantics.
            let game3_says_no = spoiler_wins(&g, &k2, 3);
            let truth_no = two_coloring(&g).is_none();
            assert_eq!(datalog_says_no, truth_no, "datalog vs truth on {g}");
            assert_eq!(game3_says_no, truth_no, "3-pebble game vs truth on {g}");
        }
    }
}
