//! Local consistency notions (Section 5, Definitions 5.2 and
//! Proposition 5.3), plus classic AC-3 arc consistency.
//!
//! *i-consistency*: every partial solution on `i-1` variables extends to
//! any i-th variable. *Strong k-consistency*: i-consistent for all
//! `i ≤ k`. Proposition 5.3 recasts both in pebble-game terms: the
//! instance is strongly k-consistent iff the family of **all** ≤k partial
//! homomorphisms is a winning strategy for the Duplicator.

use cspdb_core::budget::{Budget, ExhaustionReason, Metering};
use cspdb_core::trace::TraceEvent;
use cspdb_core::{CspInstance, PartialHom, Structure};

/// Enumerates all partial homomorphisms `A -> B` with exactly `size`
/// elements in their domain. Exponential in `size`; meant for fixed small
/// `size`.
pub fn partial_homomorphisms(a: &Structure, b: &Structure, size: usize) -> Vec<PartialHom> {
    let n = a.domain_size() as u32;
    let d = b.domain_size() as u32;
    let mut out = Vec::new();
    let mut frontier = vec![PartialHom::empty()];
    for _ in 0..size {
        let mut next = Vec::new();
        for f in &frontier {
            let min_x = f.sources().max().map(|m| m + 1).unwrap_or(0);
            for x in min_x..n {
                for y in 0..d {
                    let g = f.extended(x, y).expect("x fresh");
                    if g.is_partial_homomorphism(a, b) {
                        next.push(g);
                    }
                }
            }
        }
        frontier = next;
    }
    out.extend(frontier);
    out
}

/// Definition 5.2 via Proposition 5.3: the instance `(A, B)` is
/// *i-consistent* iff the family of partial homomorphisms with `i-1`
/// elements has the i-forth property — every such map extends to any
/// further element as a partial homomorphism.
///
/// # Panics
///
/// Panics if `i == 0`.
pub fn is_i_consistent(a: &Structure, b: &Structure, i: usize) -> bool {
    assert!(i >= 1, "i-consistency is defined for i >= 1");
    let n = a.domain_size() as u32;
    let d = b.domain_size() as u32;
    for f in partial_homomorphisms(a, b, i - 1) {
        for x in 0..n {
            if f.is_defined_on(x) {
                continue;
            }
            let extendable = (0..d).any(|y| {
                f.extended(x, y)
                    .map(|g| g.is_partial_homomorphism(a, b))
                    .unwrap_or(false)
            });
            if !extendable {
                return false;
            }
        }
    }
    true
}

/// Strong k-consistency: i-consistent for every `i ≤ k` (Definition
/// 5.2).
pub fn is_strongly_k_consistent(a: &Structure, b: &Structure, k: usize) -> bool {
    (1..=k).all(|i| is_i_consistent(a, b, i))
}

/// Convenience: strong k-consistency of a classical CSP instance,
/// through its homomorphism form.
pub fn csp_is_strongly_k_consistent(instance: &CspInstance, k: usize) -> bool {
    let (a, b) = instance.to_homomorphism();
    is_strongly_k_consistent(&a, &b, k)
}

/// AC-3 arc consistency over the *binary* constraints of a CSP instance:
/// returns per-variable surviving value lists, or `None` on a domain
/// wipeout (which proves unsatisfiability). Non-binary constraints are
/// ignored by this classic algorithm — use the solver's GAC for those.
pub fn ac3(instance: &CspInstance) -> Option<Vec<Vec<u32>>> {
    ac3_budgeted(instance, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// [`ac3`] under a [`Budget`], ticking one step per arc revision:
/// `Err` when the budget ran out mid-propagation (inconclusive),
/// `Ok(None)` a *sound* wipeout refutation, `Ok(Some(domains))` the
/// arc-consistent domains.
pub fn ac3_budgeted(
    instance: &CspInstance,
    budget: &Budget,
) -> Result<Option<Vec<Vec<u32>>>, ExhaustionReason> {
    ac3_metered(instance, &mut budget.meter())
}

/// [`ac3`] under any [`Metering`] enforcer: same contract as
/// [`ac3_budgeted`], but the caller keeps the meter, so resource usage
/// (and the tracer it carries) stays readable afterwards. Emits one
/// [`TraceEvent::Propagation`] per completed run with the revision and
/// removal counts.
pub fn ac3_metered<M: Metering>(
    instance: &CspInstance,
    meter: &mut M,
) -> Result<Option<Vec<Vec<u32>>>, ExhaustionReason> {
    let mut revisions = 0u64;
    let mut removals = 0u64;
    let emit = |meter: &mut M, revisions: u64, removals: u64, wipeout: bool| {
        meter.tracer().emit_with(|| TraceEvent::Propagation {
            algorithm: "ac3",
            revisions,
            removals,
            wipeout,
        });
    };
    let n = instance.num_vars();
    let d = instance.num_values();
    let mut domains: Vec<Vec<bool>> = vec![vec![true; d]; n];
    // Apply unary constraints directly.
    for c in instance.constraints() {
        if c.scope().len() == 1 {
            let v = c.scope()[0] as usize;
            for (val, slot) in domains[v].iter_mut().enumerate() {
                if *slot && !c.relation().contains(&[val as u32]) {
                    *slot = false;
                }
            }
        }
    }
    // Directed arcs from binary constraints, both directions.
    let mut arcs: Vec<(usize, usize, usize, bool)> = Vec::new(); // (ci, x, y, flipped)
    for (ci, c) in instance.constraints().iter().enumerate() {
        if c.scope().len() == 2 && c.scope()[0] != c.scope()[1] {
            let (x, y) = (c.scope()[0] as usize, c.scope()[1] as usize);
            arcs.push((ci, x, y, false));
            arcs.push((ci, y, x, true));
        }
    }
    let mut queue: Vec<usize> = (0..arcs.len()).collect();
    let mut queued = vec![true; arcs.len()];
    while let Some(ai) = queue.pop() {
        meter.tick()?;
        queued[ai] = false;
        revisions += 1;
        let (ci, x, y, flipped) = arcs[ai];
        let rel = instance.constraints()[ci].relation();
        let mut revised = false;
        for vx in 0..d as u32 {
            if !domains[x][vx as usize] {
                continue;
            }
            let supported = (0..d as u32).any(|vy| {
                domains[y][vy as usize]
                    && if flipped {
                        rel.contains(&[vy, vx])
                    } else {
                        rel.contains(&[vx, vy])
                    }
            });
            if !supported {
                domains[x][vx as usize] = false;
                removals += 1;
                revised = true;
            }
        }
        if revised {
            if domains[x].iter().all(|&s| !s) {
                emit(meter, revisions, removals, true);
                return Ok(None);
            }
            for (aj, &(_, _, ty, _)) in arcs.iter().enumerate() {
                if ty == x && !queued[aj] && aj != ai {
                    queued[aj] = true;
                    queue.push(aj);
                }
            }
        }
    }
    emit(meter, revisions, removals, false);
    Ok(Some(
        domains
            .into_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter_map(|(v, &s)| s.then_some(v as u32))
                    .collect()
            })
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::duplicator_wins;
    use cspdb_core::graphs::{clique, cycle, path};
    use cspdb_core::Relation;
    use std::sync::Arc;

    #[test]
    fn proposition_5_3_strong_consistency_iff_all_partials_win() {
        // For several instances: strong k-consistency (checked by
        // definition) matches "the family of all <=k partial homs is a
        // winning strategy" — equivalently here, forth holds everywhere.
        let pairs = [
            (cycle(4), clique(2)),
            (cycle(5), clique(3)),
            (path(4), clique(2)),
            (clique(3), clique(3)),
        ];
        for (a, b) in pairs {
            for k in 1..=3usize {
                let strong = is_strongly_k_consistent(&a, &b, k);
                // Direct re-check of the winning-strategy form: all
                // partial homs of size <= k, forth property at < k.
                let all_forth = (1..=k).all(|i| is_i_consistent(&a, &b, i));
                assert_eq!(strong, all_forth);
                // A strongly k-consistent nonempty instance means the
                // Duplicator wins (the family witnesses it).
                if strong && a.domain_size() > 0 && b.domain_size() > 0 {
                    assert!(duplicator_wins(&a, &b, k));
                }
            }
        }
    }

    #[test]
    fn odd_cycle_k2_is_2_consistent_but_not_3_consistent() {
        // C5 vs K2 is arc (2-)consistent yet not 3-consistent:
        // a partial solution on two vertices at odd distance cannot
        // always extend... more precisely some pair + third vertex fails.
        let a = cycle(5);
        let b = clique(2);
        assert!(is_i_consistent(&a, &b, 1));
        assert!(is_i_consistent(&a, &b, 2));
        assert!(!is_strongly_k_consistent(&a, &b, 3));
    }

    #[test]
    fn even_cycle_k2_is_strongly_3_consistent() {
        let a = cycle(6);
        let b = clique(2);
        assert!(is_strongly_k_consistent(&a, &b, 2));
        // 2-colorable: all levels of consistency achievable... note
        // 3-consistency can still fail for bipartite graphs when two
        // pebbles sit at even distance on a 6-cycle; verify whatever the
        // truth is against the game (coincidence of Prop 5.3 forms).
        let three = is_i_consistent(&a, &b, 3);
        let game_all = partial_homomorphisms(&a, &b, 2).iter().all(|f| {
            (0..6u32).all(|x| {
                f.is_defined_on(x)
                    || (0..2u32).any(|y| {
                        f.extended(x, y)
                            .map(|g| g.is_partial_homomorphism(&a, &b))
                            .unwrap_or(false)
                    })
            })
        });
        assert_eq!(three, game_all);
    }

    #[test]
    fn ac3_prunes_and_detects_wipeout() {
        // x != y with a unary constraint forcing x = 0 prunes y to {1}.
        let mut p = CspInstance::new(2, 2);
        let neq = Relation::from_tuples(2, [[0u32, 1], [1, 0]]).unwrap();
        p.add_constraint([0, 1], Arc::new(neq)).unwrap();
        p.add_constraint([0], Arc::new(Relation::from_tuples(1, [[0u32]]).unwrap()))
            .unwrap();
        let domains = ac3(&p).expect("consistent");
        assert_eq!(domains[0], vec![0]);
        assert_eq!(domains[1], vec![1]);
        // Force x = 0 and y = 0 with x != y: wipeout.
        let mut q = CspInstance::new(2, 2);
        let neq = Relation::from_tuples(2, [[0u32, 1], [1, 0]]).unwrap();
        q.add_constraint([0, 1], Arc::new(neq)).unwrap();
        q.add_constraint([0], Arc::new(Relation::from_tuples(1, [[0u32]]).unwrap()))
            .unwrap();
        q.add_constraint([1], Arc::new(Relation::from_tuples(1, [[0u32]]).unwrap()))
            .unwrap();
        assert!(ac3(&q).is_none());
    }

    #[test]
    fn ac3_is_sound_never_removes_solution_values() {
        let a = cycle(6);
        let b = clique(2);
        let p = CspInstance::from_homomorphism(&a, &b).unwrap();
        let domains = ac3(&p).expect("bipartite stays consistent");
        // Both 2-colorings survive in every domain.
        for dom in &domains {
            assert_eq!(dom.len(), 2);
        }
    }

    #[test]
    fn partial_homomorphism_enumeration_counts() {
        // path(2) = single edge both directions; into K2.
        let a = path(2);
        let b = clique(2);
        assert_eq!(partial_homomorphisms(&a, &b, 0).len(), 1);
        // size 1: each of 2 vertices x 2 values = 4.
        assert_eq!(partial_homomorphisms(&a, &b, 1).len(), 4);
        // size 2: must differ on the edge: 2 valid of 4.
        assert_eq!(partial_homomorphisms(&a, &b, 2).len(), 2);
    }
}
