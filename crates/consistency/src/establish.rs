//! Establishing strong k-consistency (Definition 5.4, Theorem 5.6).
//!
//! Theorem 5.6: strong k-consistency can be established for `(A, B)` iff
//! the Duplicator wins the existential k-pebble game — iff
//! `W^k(A, B) ≠ ∅`. When it can, re-formatting the largest winning
//! strategy as constraints produces the *largest coherent instance*
//! establishing strong k-consistency:
//!
//! 1. compute `W^k(A, B)`;
//! 2. for every tuple `ā ∈ A^i`, `i ≤ k`, form
//!    `R_ā = { b̄ : (ā, b̄) ∈ W^k(A, B) }`;
//! 3. the CSP instance with constraints `(ā, R_ā)` is the output; its
//!    homomorphism form is `(A', B')`.
//!
//! Implementation note: we instantiate step 2 over tuples of *distinct*
//! elements. Tuples with repeats carry no extra information — their
//! configurations are determined by the underlying partial function
//! (`h_{ā,b̄}` ignores multiplicity), so the distinct-tuple instance has
//! exactly the same k-partial homomorphisms and solutions; this keeps the
//! construction at `O(n^k · d^k)` instead of gratuitously larger.

use crate::game::{largest_winning_strategy, WinningStrategy};
use cspdb_core::{CspInstance, Relation, Structure};

/// The result of establishing strong k-consistency: the paper's
/// `(A', B')` plus the strategy it came from.
#[derive(Debug, Clone)]
pub struct Established {
    /// The new "variable" structure `A'`.
    pub a_prime: Structure,
    /// The new "value" structure `B'`.
    pub b_prime: Structure,
    /// The CSP form: variables = domain of **A**, values = domain of
    /// **B**, one constraint `(ā, R_ā)` per distinct-element tuple with
    /// nonempty `R_ā`.
    pub csp: CspInstance,
}

/// Establishes strong k-consistency for `(A, B)` per Theorem 5.6, or
/// returns `None` when impossible (the Spoiler wins the game).
pub fn establish_strong_k_consistency(
    a: &Structure,
    b: &Structure,
    k: usize,
) -> Option<Established> {
    let w = largest_winning_strategy(a, b, k);
    establish_from_strategy(a, b, &w)
}

/// Same as [`establish_strong_k_consistency`] but reusing an
/// already-computed strategy.
pub fn establish_from_strategy(
    a: &Structure,
    b: &Structure,
    w: &WinningStrategy,
) -> Option<Established> {
    if w.is_empty() {
        return None;
    }
    let k = w.k();
    let n = a.domain_size();
    let mut csp = CspInstance::new(n, b.domain_size());
    // Group strategy members by their source tuple (ascending order —
    // one canonical representative per distinct-element set; we emit the
    // ascending tuple as the constraint scope).
    use std::collections::HashMap;
    let mut by_scope: HashMap<Vec<u32>, Vec<Vec<u32>>> = HashMap::new();
    for f in w.iter() {
        if f.is_empty() {
            continue;
        }
        let scope: Vec<u32> = f.sources().collect();
        let image: Vec<u32> = f.iter().map(|(_, y)| y).collect();
        by_scope.entry(scope).or_default().push(image);
    }
    let mut scopes: Vec<Vec<u32>> = by_scope.keys().cloned().collect();
    scopes.sort();
    for scope in scopes {
        let images = &by_scope[&scope];
        let rel =
            Relation::from_tuples(scope.len(), images.iter()).expect("images have scope arity");
        csp.add_constraint(scope.into_boxed_slice(), rel)
            .expect("strategy members are in range");
    }
    // Also: elements with NO surviving singleton would make the
    // instance unsatisfiable, but w nonempty + forth guarantees every
    // element has a surviving singleton (extend the empty map) whenever
    // k >= 1 — asserted here.
    debug_assert!(
        (0..n as u32).all(|x| w.iter().any(|f| f.len() == 1 && f.is_defined_on(x)) || n == 0),
        "forth property guarantees singletons"
    );
    let _ = k;
    let (a_prime, b_prime) = csp.to_homomorphism();
    Some(Established {
        a_prime,
        b_prime,
        csp,
    })
}

/// Verifies the four conditions of Definition 5.4 for an established
/// instance, against the originals. Exponential checks (condition 4
/// enumerates all `|B|^|A|` functions) — test-sized inputs only.
pub fn verify_definition_5_4(
    a: &Structure,
    b: &Structure,
    est: &Established,
    k: usize,
) -> Result<(), String> {
    // Condition 1: domains match.
    if est.a_prime.domain_size() != a.domain_size() {
        return Err("A' domain differs from A".into());
    }
    if est.b_prime.domain_size() != b.domain_size() {
        return Err("B' domain differs from B".into());
    }
    if !est.a_prime.vocabulary().is_k_ary(k) {
        return Err("A' vocabulary is not k-ary".into());
    }
    // Condition 2: CSP(A', B') is strongly k-consistent.
    if !crate::local::is_strongly_k_consistent(&est.a_prime, &est.b_prime, k) {
        return Err("established instance is not strongly k-consistent".into());
    }
    // Condition 3: k-partial homs of (A', B') are k-partial homs of (A, B).
    for size in 0..=k {
        for f in crate::local::partial_homomorphisms(&est.a_prime, &est.b_prime, size) {
            if !f.is_partial_homomorphism(a, b) {
                return Err(format!("partial hom {f:?} of (A',B') fails on (A,B)"));
            }
        }
    }
    // Condition 4: total functions are homomorphisms A->B iff A'->B'.
    let n = a.domain_size();
    let d = b.domain_size();
    let total = (d as f64).powi(n as i32);
    if total > 1e6 {
        return Err("condition-4 check too large".into());
    }
    if n > 0 && d == 0 {
        return Ok(());
    }
    let mut h = vec![0u32; n];
    loop {
        let on_orig = cspdb_core::is_homomorphism(&h, a, b);
        let on_new = cspdb_core::is_homomorphism(&h, &est.a_prime, &est.b_prime);
        if on_orig != on_new {
            return Err(format!("function {h:?}: original {on_orig}, new {on_new}"));
        }
        let mut i = n;
        loop {
            if i == 0 {
                return Ok(());
            }
            i -= 1;
            h[i] += 1;
            if (h[i] as usize) < d {
                break;
            }
            h[i] = 0;
        }
    }
}

/// The uniform polynomial-time decision procedure of Theorems 4.6/4.7 and
/// 5.7: runs the existential k-pebble game and reports
///
/// * `Some(false)` — the Spoiler wins, hence **no** homomorphism exists
///   (always sound);
/// * `None` — the Duplicator wins: inconclusive in general, but a
///   definitive **yes** whenever `¬CSP(B)` is expressible in k-Datalog
///   (Theorem 5.7), e.g. 2-colorability with k = 3 or Horn templates.
pub fn k_consistency_refutes(a: &Structure, b: &Structure, k: usize) -> Option<bool> {
    if crate::game::spoiler_wins(a, b, k) {
        Some(false)
    } else {
        None
    }
}

/// [`k_consistency_refutes`] under a [`Budget`]
/// (`cspdb_core::budget::Budget`): the outer `Err` means the game
/// computation itself ran out of resources, so not even the sound
/// refutation check completed.
pub fn k_consistency_refutes_budgeted(
    a: &Structure,
    b: &Structure,
    k: usize,
    budget: &cspdb_core::budget::Budget,
) -> Result<Option<bool>, cspdb_core::budget::ExhaustionReason> {
    if crate::game::spoiler_wins_budgeted(a, b, k, budget)? {
        Ok(Some(false))
    } else {
        Ok(None)
    }
}

/// [`k_consistency_refutes`] under any
/// [`Metering`](cspdb_core::budget::Metering) enforcer: same contract as
/// [`k_consistency_refutes_budgeted`], but the caller keeps the meter,
/// so resource usage (and the tracer it carries) stays readable
/// afterwards.
pub fn k_consistency_refutes_metered<M: cspdb_core::budget::Metering>(
    a: &Structure,
    b: &Structure,
    k: usize,
    meter: &mut M,
) -> Result<Option<bool>, cspdb_core::budget::ExhaustionReason> {
    if crate::game::spoiler_wins_metered(a, b, k, meter)? {
        Ok(Some(false))
    } else {
        Ok(None)
    }
}

/// A coherence check for the established instance: every constraint
/// tuple's correspondence is a partial homomorphism of `(A', B')` — the
/// property Theorem 5.6 guarantees ("largest coherent instance").
pub fn established_is_coherent(est: &Established) -> bool {
    cspdb_core::is_coherent(&est.a_prime, &est.b_prime)
}

/// Maximality (Theorem 5.6, final clause), checked against another
/// coherent establishing instance given as a CSP: every constraint
/// `(ā, R)` of the other instance must satisfy `R ⊆ R_ā`.
pub fn dominates(est: &Established, other: &CspInstance) -> bool {
    for c in other.constraints() {
        // Find est's constraint on the same (sorted) scope.
        let mut scope = c.scope().to_vec();
        let perm: Vec<usize> = {
            let mut idx: Vec<usize> = (0..scope.len()).collect();
            idx.sort_by_key(|&i| scope[i]);
            idx
        };
        scope.sort_unstable();
        let mine = est
            .csp
            .constraints()
            .iter()
            .find(|mc| mc.scope() == scope.as_slice());
        let mine = match mine {
            Some(m) => m,
            None => return c.relation().is_empty(),
        };
        for t in c.relation().iter() {
            let sorted_t: Vec<u32> = perm.iter().map(|&i| t[i]).collect();
            if !mine.relation().contains(&sorted_t) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{clique, cycle, path};

    #[test]
    fn theorem_5_6_iff_duplicator_wins() {
        let cases = [
            (cycle(4), clique(2), 2, true),
            (cycle(5), clique(2), 3, false),
            (cycle(5), clique(3), 3, true),
            (path(4), clique(2), 2, true),
            (clique(3), clique(2), 3, false),
        ];
        for (a, b, k, expect) in cases {
            let est = establish_strong_k_consistency(&a, &b, k);
            assert_eq!(est.is_some(), expect, "on {a} -> {b} with k={k}");
        }
    }

    #[test]
    fn established_instance_satisfies_definition_5_4() {
        let cases = [
            (cycle(4), clique(2), 2),
            (path(4), clique(2), 2),
            (cycle(5), clique(3), 2),
            (cycle(3), clique(3), 3),
        ];
        for (a, b, k) in cases {
            let est = establish_strong_k_consistency(&a, &b, k).expect("duplicator wins these");
            verify_definition_5_4(&a, &b, &est, k).expect("definition 5.4 holds");
        }
    }

    #[test]
    fn established_instance_is_coherent() {
        let a = cycle(4);
        let b = clique(2);
        let est = establish_strong_k_consistency(&a, &b, 2).unwrap();
        assert!(established_is_coherent(&est));
    }

    #[test]
    fn maximality_dominates_original_constraints_restricted_to_strategy() {
        // The established instance dominates any coherent establishing
        // instance; in particular, re-establishing from itself changes
        // nothing.
        let a = cycle(5);
        let b = clique(3);
        let est = establish_strong_k_consistency(&a, &b, 2).unwrap();
        let est2 = establish_strong_k_consistency(&est.a_prime, &est.b_prime, 2).unwrap();
        assert!(dominates(&est, &est2.csp));
        assert!(dominates(&est2, &est.csp));
    }

    #[test]
    fn refutation_is_sound_and_complete_for_2col_with_k3() {
        // Theorem 5.7 instance: ¬CSP(K2) is expressible in k-Datalog
        // (odd-cycle program of Section 4), so 3-consistency decides
        // 2-colorability exactly.
        for n in 3..9 {
            let g = cycle(n);
            let refuted = k_consistency_refutes(&g, &clique(2), 3) == Some(false);
            let colorable = cspdb_core::graphs::two_coloring(&g).is_some();
            assert_eq!(refuted, !colorable, "cycle of length {n}");
        }
    }

    #[test]
    fn three_consistency_does_not_decide_3col() {
        // For K4 -> K3 (no homomorphism), does the Duplicator win the
        // 3-pebble game? K4 vs K3: Spoiler pebbles 3 distinct K4 vertices;
        // Duplicator must answer with 3 distinct K3 vertices; then
        // Spoiler moves one pebble to the 4th vertex — adjacent to both
        // remaining — forcing a repeat... any two K3 values differ from
        // the two pinned ones? The two pinned are distinct; third must
        // differ from both: exactly one choice; it exists! So Duplicator
        // survives: 3 pebbles do NOT refute K4 -> K3.
        assert_eq!(k_consistency_refutes(&clique(4), &clique(3), 3), None);
        // While 4 pebbles do.
        assert_eq!(
            k_consistency_refutes(&clique(4), &clique(3), 4),
            Some(false)
        );
    }

    #[test]
    fn establish_on_instance_with_homomorphism_keeps_solutions() {
        let a = path(3);
        let b = clique(2);
        let est = establish_strong_k_consistency(&a, &b, 2).unwrap();
        // Def 5.4 condition 4 checked in detail elsewhere; spot-check a
        // known solution survives.
        assert!(cspdb_core::is_homomorphism(
            &[0, 1, 0],
            &est.a_prime,
            &est.b_prime
        ));
        assert!(!cspdb_core::is_homomorphism(
            &[0, 0, 0],
            &est.a_prime,
            &est.b_prime
        ));
    }
}
