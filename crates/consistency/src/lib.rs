//! # cspdb-consistency
//!
//! Existential k-pebble games and local consistency — Sections 4 and 5 of
//! the paper, the bridge between Datalog and constraint propagation.
//!
//! * [`largest_winning_strategy`] — computes `H^k(A,B)` / the
//!   configuration set `W^k(A,B)` of Theorem 4.5 by greatest fixpoint;
//!   [`duplicator_wins`] / [`spoiler_wins`] decide the game in polynomial
//!   time for fixed `k`.
//! * [`is_i_consistent`] / [`is_strongly_k_consistent`] — Definition 5.2,
//!   implemented through the pebble-game recast of Proposition 5.3;
//!   [`ac3`] is the classic binary arc-consistency algorithm (2-consistency).
//! * [`establish_strong_k_consistency`] — Theorem 5.6: possible iff the
//!   Duplicator wins; the output re-formats the largest winning strategy
//!   into the largest coherent instance establishing strong k-consistency
//!   ([`verify_definition_5_4`] checks all four conditions of Definition
//!   5.4 against the original instance; [`dominates`] checks maximality).
//! * [`k_consistency_refutes`] — the uniform algorithm behind Theorems
//!   4.6/4.7 and 5.7: a Spoiler win soundly refutes homomorphism
//!   existence, and is *complete* exactly for templates whose complement
//!   is k-Datalog-expressible (2-SAT, Horn, 2-colorability, ...).
//! * [`solve_tree_csp`] — Freuder's backtrack-free pipeline for
//!   tree-structured instances (Section 5's "solution via backtrack-free
//!   search"): arc consistency, then greedy root-to-leaf extension with
//!   provably zero dead ends.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod establish;
mod freuder;
mod game;
mod local;

pub use establish::{
    dominates, establish_from_strategy, establish_strong_k_consistency, established_is_coherent,
    k_consistency_refutes, k_consistency_refutes_budgeted, k_consistency_refutes_metered,
    verify_definition_5_4, Established,
};
pub use freuder::{greedy_extend, is_tree_instance, solve_tree_csp, tree_order};
pub use game::{
    duplicator_wins, largest_winning_strategy, largest_winning_strategy_budgeted,
    largest_winning_strategy_metered, spoiler_wins, spoiler_wins_budgeted, spoiler_wins_metered,
    wk_table_bound, WinningStrategy,
};
pub use local::{
    ac3, ac3_budgeted, ac3_metered, csp_is_strongly_k_consistent, is_i_consistent,
    is_strongly_k_consistent, partial_homomorphisms,
};
