//! Backtrack-free search after local consistency — Freuder's sufficient
//! condition, cited in Section 5 of the paper ("in this case a solution
//! can be constructed via backtrack-free search").
//!
//! The cleanest classical instance: if the constraint graph of a binary
//! CSP is a **forest** (Freuder width 1), then after establishing arc
//! consistency (strong 2-consistency on the domains) a solution can be
//! assembled greedily along any root-to-leaf order with *no
//! backtracking*. This module implements exactly that pipeline and the
//! general greedy extender used to verify it.

use cspdb_core::CspInstance;

/// True if the instance's constraint graph (variables adjacent when
/// they share a constraint scope) is a forest and every constraint is
/// unary or binary.
pub fn is_tree_instance(instance: &CspInstance) -> bool {
    let n = instance.num_vars();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for c in instance.constraints() {
        if c.scope().len() > 2 {
            return false;
        }
        if c.scope().len() == 2 && c.scope()[0] != c.scope()[1] {
            let (a, b) = (c.scope()[0] as usize, c.scope()[1] as usize);
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra == rb {
                return false; // duplicate edge or cycle
            }
            parent[ra] = rb;
        }
    }
    true
}

/// A BFS (root-to-leaf) variable ordering of the constraint forest.
pub fn tree_order(instance: &CspInstance) -> Vec<u32> {
    let n = instance.num_vars();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for c in instance.constraints() {
        if c.scope().len() == 2 && c.scope()[0] != c.scope()[1] {
            adj[c.scope()[0] as usize].push(c.scope()[1]);
            adj[c.scope()[1] as usize].push(c.scope()[0]);
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for root in 0..n as u32 {
        if seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    order
}

/// Greedy extension along `order`: each variable takes the first value
/// from its (possibly pruned) domain consistent with all constraints
/// whose other variables are already assigned. Returns the assignment
/// and the number of *dead ends* encountered (0 = backtrack-free).
pub fn greedy_extend(
    instance: &CspInstance,
    order: &[u32],
    domains: &[Vec<u32>],
) -> (Option<Vec<u32>>, usize) {
    let n = instance.num_vars();
    assert_eq!(order.len(), n, "order must cover all variables");
    assert_eq!(domains.len(), n, "one domain per variable");
    let mut assignment: Vec<Option<u32>> = vec![None; n];
    let mut dead_ends = 0usize;
    for &v in order {
        let mut chosen = None;
        'values: for &val in &domains[v as usize] {
            // Check constraints fully assigned once v := val.
            for c in instance.constraints() {
                if !c.scope().contains(&v) {
                    continue;
                }
                let mut tuple = Vec::with_capacity(c.scope().len());
                for &u in c.scope() {
                    let value = if u == v {
                        val
                    } else {
                        match assignment[u as usize] {
                            Some(x) => x,
                            None => continue, // handled when u is set
                        }
                    };
                    tuple.push(value);
                }
                if tuple.len() == c.scope().len() && !c.relation().contains(&tuple) {
                    continue 'values;
                }
            }
            chosen = Some(val);
            break;
        }
        match chosen {
            Some(val) => assignment[v as usize] = Some(val),
            None => {
                dead_ends += 1;
                return (None, dead_ends);
            }
        }
    }
    let solution: Vec<u32> = assignment
        .into_iter()
        .map(|x| x.expect("all set"))
        .collect();
    debug_assert!(instance.is_solution(&solution));
    (Some(solution), dead_ends)
}

/// Freuder's pipeline for tree-structured binary CSPs: arc consistency,
/// then greedy root-to-leaf extension. Returns `None` iff the instance
/// is unsatisfiable; when satisfiable the search is backtrack-free
/// (asserted in debug builds).
///
/// # Panics
///
/// Panics if the instance is not tree-structured (use
/// [`is_tree_instance`] first).
pub fn solve_tree_csp(instance: &CspInstance) -> Option<Vec<u32>> {
    assert!(
        is_tree_instance(instance),
        "constraint graph must be a forest"
    );
    let domains = crate::local::ac3(instance)?;
    if domains.iter().any(Vec::is_empty) {
        return None;
    }
    let order = tree_order(instance);
    let (solution, dead_ends) = greedy_extend(instance, &order, &domains);
    debug_assert_eq!(dead_ends, 0, "Freuder: AC on a tree is backtrack-free");
    debug_assert!(solution.is_some(), "AC wipeout already handled");
    solution
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::Relation;
    use std::sync::Arc;

    fn neq(d: usize) -> Arc<Relation> {
        Arc::new(
            Relation::from_tuples(
                2,
                (0..d as u32)
                    .flat_map(|i| (0..d as u32).filter_map(move |j| (i != j).then_some([i, j]))),
            )
            .unwrap(),
        )
    }

    fn random_tree_instance(n: usize, d: usize, seed: u64) -> CspInstance {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut p = CspInstance::new(n, d);
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            let tuples: Vec<[u32; 2]> = (0..d as u32)
                .flat_map(|i| (0..d as u32).map(move |j| [i, j]))
                .filter(|_| next() % 3 != 0)
                .collect();
            p.add_constraint([u, v], Arc::new(Relation::from_tuples(2, tuples).unwrap()))
                .unwrap();
        }
        p
    }

    #[test]
    fn tree_detection() {
        let mut chain = CspInstance::new(4, 2);
        for i in 0..3u32 {
            chain.add_constraint([i, i + 1], neq(2)).unwrap();
        }
        assert!(is_tree_instance(&chain));
        chain.add_constraint([0, 3], neq(2)).unwrap();
        assert!(!is_tree_instance(&chain)); // closed the cycle
        let mut ternary = CspInstance::new(3, 2);
        ternary
            .add_constraint([0, 1, 2], Arc::new(Relation::full(3, 2)))
            .unwrap();
        assert!(!is_tree_instance(&ternary));
    }

    #[test]
    fn chain_coloring_is_backtrack_free() {
        let mut p = CspInstance::new(6, 2);
        for i in 0..5u32 {
            p.add_constraint([i, i + 1], neq(2)).unwrap();
        }
        let sol = solve_tree_csp(&p).expect("2-colorable chain");
        assert!(p.is_solution(&sol));
    }

    #[test]
    fn unsatisfiable_tree_detected_by_ac() {
        // Star with center forced to 0 and a leaf forced unequal with
        // domain {0} only: make leaf unary-empty after AC.
        let mut p = CspInstance::new(2, 1);
        p.add_constraint([0, 1], neq(1)).unwrap();
        assert!(is_tree_instance(&p));
        assert!(solve_tree_csp(&p).is_none());
    }

    #[test]
    fn random_trees_match_brute_force_and_are_backtrack_free() {
        for seed in 0..25u64 {
            let p = random_tree_instance(7, 3, seed);
            let fast = solve_tree_csp(&p);
            let slow = p.solve_brute_force();
            assert_eq!(fast.is_some(), slow.is_some(), "seed {seed}");
            if let Some(w) = fast {
                assert!(p.is_solution(&w), "seed {seed}");
            }
            // Explicit backtrack-free check in release too.
            if slow.is_some() {
                if let Some(domains) = crate::local::ac3(&p) {
                    let order = tree_order(&p);
                    let (sol, dead_ends) = greedy_extend(&p, &order, &domains);
                    assert_eq!(dead_ends, 0, "seed {seed}");
                    assert!(sol.is_some(), "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn greedy_without_consistency_can_dead_end() {
        // Without AC, greedy in a bad order can fail on a satisfiable
        // tree: center of a star must avoid the leaves' forced values.
        let mut p = CspInstance::new(3, 2);
        // leaf1 = 0 forced; leaf2 = 1 forced; center != both? center
        // must differ from leaf values... make center first in order
        // with unpruned domain picking value 0, then leaf1 != center
        // forced to 1, but leaf1 unary-pinned to 0: dead end.
        p.add_constraint([0], Arc::new(Relation::from_tuples(1, [[0u32]]).unwrap()))
            .unwrap();
        p.add_constraint([1, 0], neq(2)).unwrap(); // center 1 vs leaf 0
        p.add_constraint([1, 2], neq(2)).unwrap();
        let full: Vec<Vec<u32>> = vec![vec![0, 1]; 3];
        // Order: center(1) first picks 0; leaf 0 needs != 0 but is
        // pinned to 0 -> dead end.
        let (sol, dead_ends) = greedy_extend(&p, &[1, 0, 2], &full);
        assert!(sol.is_none());
        assert_eq!(dead_ends, 1);
        // With AC first, the same order is backtrack-free.
        let domains = crate::local::ac3(&p).unwrap();
        let (sol, dead_ends) = greedy_extend(&p, &[1, 0, 2], &domains);
        assert!(sol.is_some());
        assert_eq!(dead_ends, 0);
    }
}
