//! The existential k-pebble game (Section 4 of the paper).
//!
//! The Duplicator wins the existential k-pebble game on `(A, B)` iff
//! there is a *winning strategy*: a nonempty family of partial
//! homomorphisms of size ≤ k, closed under subfunctions, with the
//! *k-forth property* (every member of size < k extends to any further
//! element of **A**). By Proposition 5.1 the union of winning strategies
//! is itself one — the **largest winning strategy** `H^k(A,B)`, whose
//! graph is the configuration set `W^k(A,B)` of Theorem 4.5.
//!
//! We compute `H^k(A,B)` as a greatest fixpoint, dually to the least
//! fixpoint of Theorem 4.5(1): start from all coherent configurations
//! (partial homomorphisms of size ≤ k) and delete any member that loses
//! a subfunction or fails the forth property, until stable. The paper's
//! `O(n^{2k})` bound shows up as the size of the candidate set — this is
//! what Experiment E5 measures.

use cspdb_core::budget::{Budget, ExhaustionReason, Metering};
use cspdb_core::trace::TraceEvent;
use cspdb_core::{PartialHom, Structure};
use std::collections::HashMap;

/// The largest winning strategy for the Duplicator, `H^k(A, B)`.
///
/// Empty iff the Spoiler wins the game.
#[derive(Debug, Clone)]
pub struct WinningStrategy {
    k: usize,
    maps: Vec<PartialHom>,
    index: HashMap<PartialHom, usize>,
}

impl WinningStrategy {
    /// The pebble count the strategy was computed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of partial homomorphisms in the strategy.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// True iff the strategy is empty, i.e. the Spoiler wins.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, f: &PartialHom) -> bool {
        self.index.contains_key(f)
    }

    /// Iterates over the member partial homomorphisms.
    pub fn iter(&self) -> impl Iterator<Item = &PartialHom> + '_ {
        self.maps.iter()
    }

    /// Checks the defining properties against the instance — used by
    /// tests and by `establish`: nonempty ⇒ (all members are partial
    /// homomorphisms ≤ k, closed under subfunctions, k-forth).
    pub fn is_winning_for(&self, a: &Structure, b: &Structure) -> bool {
        if self.maps.is_empty() {
            return false;
        }
        let n = a.domain_size() as u32;
        let d = b.domain_size() as u32;
        for f in &self.maps {
            if f.len() > self.k || !f.is_partial_homomorphism(a, b) {
                return false;
            }
            for r in f.drop_each() {
                if !self.contains(&r) {
                    return false;
                }
            }
            if f.len() < self.k {
                for x in 0..n {
                    if f.is_defined_on(x) {
                        continue;
                    }
                    let extended = (0..d)
                        .any(|y| f.extended(x, y).map(|g| self.contains(&g)).unwrap_or(false));
                    if !extended {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Computes the largest winning strategy `H^k(A, B)` for the Duplicator
/// in the existential k-pebble game.
///
/// # Panics
///
/// Panics if `k == 0` or the vocabularies differ.
pub fn largest_winning_strategy(a: &Structure, b: &Structure, k: usize) -> WinningStrategy {
    largest_winning_strategy_budgeted(a, b, k, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Checked upper bound on the candidate table of the k-pebble game
/// computation: `Σ_{i ≤ k} n^i · d^i` partial maps. Returns `None` on
/// `u64` overflow — in which case the table certainly does not fit in
/// memory and a caller planning a budgeted run should skip this
/// algorithm entirely.
pub fn wk_table_bound(n: usize, d: usize, k: usize) -> Option<u64> {
    let n = n as u64;
    let d = d as u64;
    let mut total: u64 = 0;
    let mut layer: u64 = 1; // n^i * d^i
    for _ in 0..=k {
        total = total.checked_add(layer)?;
        layer = layer.checked_mul(n)?.checked_mul(d)?;
        if layer == 0 {
            break;
        }
    }
    Some(total)
}

/// [`largest_winning_strategy`] under a [`Budget`]: `Err` when the
/// budget ran out mid-computation. Steps are ticked per candidate
/// extension and per fixpoint re-check; each stored candidate is charged
/// against the tuple cap (the `O(n^k d^k)` table is this algorithm's
/// memory hazard).
pub fn largest_winning_strategy_budgeted(
    a: &Structure,
    b: &Structure,
    k: usize,
    budget: &Budget,
) -> Result<WinningStrategy, ExhaustionReason> {
    largest_winning_strategy_metered(a, b, k, &mut budget.meter())
}

/// [`largest_winning_strategy`] under any [`Metering`] enforcer: same
/// contract as [`largest_winning_strategy_budgeted`], but the caller
/// keeps the meter, so resource usage (and the tracer it carries) stays
/// readable afterwards. Emits one [`TraceEvent::KConsistency`] per
/// completed run with the candidate-table and greatest-fixpoint
/// survivor counts.
pub fn largest_winning_strategy_metered<M: Metering>(
    a: &Structure,
    b: &Structure,
    k: usize,
    meter: &mut M,
) -> Result<WinningStrategy, ExhaustionReason> {
    assert!(k >= 1, "the game needs at least one pebble");
    assert_eq!(a.vocabulary(), b.vocabulary(), "vocabulary mismatch");
    let n = a.domain_size() as u32;
    let d = b.domain_size() as u32;

    // Candidate generation: all partial homomorphisms of size <= k.
    let mut maps: Vec<PartialHom> = Vec::new();
    let mut index: HashMap<PartialHom, usize> = HashMap::new();
    {
        // BFS by size: extensions of size-i partial homs by a larger
        // element index keep combinations canonical (sources ascending).
        let mut frontier = vec![PartialHom::empty()];
        index.insert(PartialHom::empty(), 0);
        maps.push(PartialHom::empty());
        meter.charge_tuples(1)?;
        for _size in 0..k {
            let mut next_frontier = Vec::new();
            for f in &frontier {
                let min_x = f.sources().max().map(|m| m + 1).unwrap_or(0);
                for x in min_x..n {
                    for y in 0..d {
                        meter.tick()?;
                        let g = f.extended(x, y).expect("x fresh");
                        if g.is_partial_homomorphism(a, b) {
                            meter.charge_tuples(1)?;
                            index.insert(g.clone(), maps.len());
                            maps.push(g.clone());
                            next_frontier.push(g);
                        }
                    }
                }
            }
            frontier = next_frontier;
        }
    }

    // Greatest fixpoint: delete members violating closure or forth.
    let mut alive = vec![true; maps.len()];
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..maps.len() {
            if !alive[i] {
                continue;
            }
            meter.tick()?;
            let f = &maps[i];
            // Downward closure: every 1-smaller restriction alive.
            let closure_ok = f
                .drop_each()
                .all(|r| index.get(&r).map(|&j| alive[j]).unwrap_or(false));
            let forth_ok = closure_ok
                && (f.len() == k
                    || (0..n).all(|x| {
                        if f.is_defined_on(x) {
                            return true;
                        }
                        (0..d).any(|y| {
                            f.extended(x, y)
                                .and_then(|g| index.get(&g).copied())
                                .map(|j| alive[j])
                                .unwrap_or(false)
                        })
                    }));
            if !forth_ok {
                alive[i] = false;
                changed = true;
            }
        }
    }

    let candidates = maps.len() as u64;
    let surviving: Vec<PartialHom> = maps
        .into_iter()
        .zip(alive)
        .filter_map(|(f, keep)| keep.then_some(f))
        .collect();
    meter.tracer().emit_with(|| TraceEvent::KConsistency {
        k,
        candidates,
        survivors: surviving.len() as u64,
    });
    let index = surviving
        .iter()
        .enumerate()
        .map(|(i, f)| (f.clone(), i))
        .collect();
    Ok(WinningStrategy {
        k,
        maps: surviving,
        index,
    })
}

/// True iff the Duplicator wins the existential k-pebble game on
/// `(A, B)` (Theorem 4.5 gives the polynomial-time bound).
pub fn duplicator_wins(a: &Structure, b: &Structure, k: usize) -> bool {
    !largest_winning_strategy(a, b, k).is_empty()
}

/// True iff the Spoiler wins the existential k-pebble game on `(A, B)`.
pub fn spoiler_wins(a: &Structure, b: &Structure, k: usize) -> bool {
    !duplicator_wins(a, b, k)
}

/// [`spoiler_wins`] under a [`Budget`]; `Err` means the game computation
/// ran out of resources (inconclusive either way).
pub fn spoiler_wins_budgeted(
    a: &Structure,
    b: &Structure,
    k: usize,
    budget: &Budget,
) -> Result<bool, ExhaustionReason> {
    Ok(largest_winning_strategy_budgeted(a, b, k, budget)?.is_empty())
}

/// [`spoiler_wins`] under any [`Metering`] enforcer; `Err` means the
/// game computation ran out of resources (inconclusive either way).
pub fn spoiler_wins_metered<M: Metering>(
    a: &Structure,
    b: &Structure,
    k: usize,
    meter: &mut M,
) -> Result<bool, ExhaustionReason> {
    Ok(largest_winning_strategy_metered(a, b, k, meter)?.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{clique, cycle, path};
    use cspdb_core::PartialHom;

    #[test]
    fn homomorphism_implies_duplicator_wins_every_k() {
        // C4 -> K2 exists, so the Duplicator wins for k = 1, 2, 3.
        let a = cycle(4);
        let b = clique(2);
        for k in 1..=3 {
            assert!(duplicator_wins(&a, &b, k), "k = {k}");
        }
    }

    #[test]
    fn odd_cycle_vs_k2_needs_three_pebbles() {
        // C5 -> K2 has no homomorphism. Two pebbles (arc consistency)
        // cannot see it: the Duplicator survives. Three pebbles walk the
        // cycle and catch the parity contradiction: the Spoiler wins.
        let a = cycle(5);
        let b = clique(2);
        assert!(duplicator_wins(&a, &b, 2));
        assert!(spoiler_wins(&a, &b, 3));
    }

    #[test]
    fn k3_vs_k2_spoiler_wins_with_three_pebbles() {
        let a = clique(3);
        let b = clique(2);
        assert!(duplicator_wins(&a, &b, 2));
        assert!(spoiler_wins(&a, &b, 3));
    }

    #[test]
    fn strategy_satisfies_its_definition() {
        let a = cycle(4);
        let b = clique(2);
        let w = largest_winning_strategy(&a, &b, 2);
        assert!(w.is_winning_for(&a, &b));
        assert!(w.contains(&PartialHom::empty()));
        // Losing game yields empty strategy.
        let w = largest_winning_strategy(&cycle(5), &b, 3);
        assert!(w.is_empty());
        assert!(!w.is_winning_for(&cycle(5), &b));
    }

    #[test]
    fn strategy_is_largest() {
        // Any singleton {total hom restriction family} is a winning
        // strategy; the largest must contain all its members. Check that
        // the restrictions of an actual homomorphism all appear.
        let a = path(3); // 0-1-2
        let b = clique(2);
        let hom = [0u32, 1, 0];
        let w = largest_winning_strategy(&a, &b, 2);
        for i in 0..3u32 {
            for j in 0..3u32 {
                if i == j {
                    continue;
                }
                let f =
                    PartialHom::from_pairs([(i, hom[i as usize]), (j, hom[j as usize])]).unwrap();
                assert!(w.contains(&f), "missing restriction {f:?}");
            }
        }
    }

    #[test]
    fn one_pebble_game_checks_unary_compatibility() {
        // With one pebble only unary facts matter. A has P(0); B has no
        // P-fact: the Spoiler places on 0 and wins.
        let voc = cspdb_core::Vocabulary::new([("P", 1)]).unwrap();
        let mut a = cspdb_core::Structure::new(voc.clone(), 1);
        a.insert_by_name("P", &[0]).unwrap();
        let b = cspdb_core::Structure::new(voc, 1);
        assert!(spoiler_wins(&a, &b, 1));
        // Give B the fact: the Duplicator wins.
        let mut b2 = cspdb_core::Structure::new(a.vocabulary().clone(), 1);
        b2.insert_by_name("P", &[0]).unwrap();
        assert!(duplicator_wins(&a, &b2, 1));
    }

    #[test]
    fn empty_b_with_nonempty_a_loses() {
        let a = path(2);
        let voc = a.vocabulary().clone();
        let b = cspdb_core::Structure::new(voc, 0);
        assert!(spoiler_wins(&a, &b, 2));
    }

    #[test]
    fn game_monotone_in_k() {
        // If the Spoiler wins with k pebbles he wins with k+1.
        let pairs = [
            (cycle(5), clique(2)),
            (clique(3), clique(2)),
            (cycle(4), clique(2)),
            (clique(4), clique(3)),
        ];
        for (a, b) in pairs {
            let mut prev_spoiler = false;
            for k in 1..=4 {
                let s = spoiler_wins(&a, &b, k);
                assert!(!prev_spoiler || s, "monotonicity violated at k={k}");
                prev_spoiler = s;
            }
        }
    }

    #[test]
    fn spoiler_win_is_sound_for_nonexistence() {
        // Soundness: Spoiler winning implies no homomorphism.
        let pairs = [
            (cycle(5), clique(2)),
            (cycle(7), clique(2)),
            (clique(4), clique(3)),
        ];
        for (a, b) in pairs {
            for k in 1..=3 {
                if spoiler_wins(&a, &b, k) {
                    assert!(
                        cspdb_core::CspInstance::from_homomorphism(&a, &b)
                            .unwrap()
                            .solve_brute_force()
                            .is_none(),
                        "spoiler won but a homomorphism exists"
                    );
                }
            }
        }
    }
}
