//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! a minimal benchmarking harness with the API subset the workspace's
//! benches use: `Criterion::benchmark_group`, `sample_size`,
//! `measurement_time`, `bench_with_input`, `BenchmarkId::new`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Timing model: each benchmark runs `sample_size` samples (after one
//! warm-up) and reports min/median/mean wall-clock time per iteration.
//! Passing `--test` (as `cargo test --benches` does) runs every closure
//! exactly once for a smoke check without timing loops.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds a parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Drives the measured closure.
pub struct Bencher {
    samples: usize,
    smoke_only: bool,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, collecting one duration per sample.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        if self.smoke_only {
            black_box(f());
            return;
        }
        black_box(f()); // warm-up
        self.results.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.results.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; sampling here is count-based.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            smoke_only: self.criterion.smoke_only,
            results: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.id, &mut b.results);
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            smoke_only: self.criterion.smoke_only,
            results: Vec::new(),
        };
        f(&mut b);
        self.report(&id.to_string(), &mut b.results);
        self
    }

    fn report(&self, id: &str, results: &mut [Duration]) {
        if self.criterion.smoke_only {
            println!("{}/{}: ok (smoke)", self.name, id);
            return;
        }
        if results.is_empty() {
            println!("{}/{}: no samples", self.name, id);
            return;
        }
        results.sort_unstable();
        let median = results[results.len() / 2];
        let min = results[0];
        let total: Duration = results.iter().sum();
        let mean = total / results.len() as u32;
        println!(
            "{}/{}: median {:?}  mean {:?}  min {:?}  ({} samples)",
            self.name,
            id,
            median,
            mean,
            min,
            results.len()
        );
    }

    /// Ends the group (printing already happened per bench).
    pub fn finish(&mut self) {}
}

/// The harness entry point.
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` (and `cargo bench -- --test`) pass
        // `--test`: run closures once, skip timing loops.
        let smoke_only = std::env::args().any(|a| a == "--test");
        Criterion { smoke_only }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
    }
}

/// Collects benchmark functions into a single runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { smoke_only: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &7u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(runs, 4, "warm-up + 3 samples");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { smoke_only: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(50);
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 1), &(), |b, ()| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn ids_format_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("join", 16).to_string(), "join/16");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
