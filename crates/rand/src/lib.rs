//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this crate provides the *exact* API subset the workspace consumes
//! (`StdRng::seed_from_u64`, `Rng::gen_range` / `gen_bool`, and
//! `SliceRandom::shuffle` / `choose`) behind the same paths, backed by a
//! deterministic xoshiro256** generator seeded through SplitMix64.
//!
//! Streams are deterministic per seed but are **not** bit-compatible
//! with the real `rand` crate's `StdRng` (ChaCha12); all workspace tests
//! are oracle-based (they compare algorithms against each other on
//! whatever instance a seed produces), so only determinism matters.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core generator trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); a tiny modulo
                // bias is irrelevant for test workloads.
                let x = rng.next_u64();
                self.start + (((x as u128 * span as u128) >> 64) as u64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi - lo) as u64 + 1;
                let x = rng.next_u64();
                lo + (((x as u128 * span as u128) >> 64) as u64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let x = rng.next_u64();
                let off = ((x as u128 * span as u128) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i32 => u32, i64 => u64, isize => usize);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64. Not the real `rand` `StdRng` stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference initialization.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and random choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: usize = (0..64)
            .filter(|_| StdRng::seed_from_u64(7).gen_range(0..u32::MAX) == c.gen_range(0..u32::MAX))
            .count();
        assert!(same < 8, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2..=3usize);
            assert!((2..=3).contains(&y));
            let z = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "~25% expected, got {hits}");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let opts = [1u32, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*opts.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
