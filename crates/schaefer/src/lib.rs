//! # cspdb-schaefer
//!
//! Schaefer's Dichotomy Theorem as running code (Section 3 of the paper).
//!
//! Schaefer pinpointed the complexity of Boolean `CSP(B)`: six classes of
//! templates are polynomial-time solvable — 0-valid, 1-valid, Horn,
//! dual-Horn, bijunctive, affine — and everything else is NP-complete.
//! This crate provides:
//!
//! * [`Cnf`] — clause representation with a brute-force oracle;
//! * [`classify`] / [`SchaeferClass`] — *semantic* template
//!   classification by closure (polymorphism) tests: componentwise ∧, ∨,
//!   majority, and x⊕y⊕z;
//! * dedicated solvers: [`solve_horn`] (unit propagation — note this is
//!   Datalog evaluation in disguise, Section 4), [`solve_dual_horn`],
//!   [`solve_2sat`] (implication-graph SCC), [`solve_affine`] (GF(2)
//!   Gaussian elimination on [`XorSystem`]s);
//! * [`solve_boolean`] — the dichotomy driver: compile each constraint
//!   relation to clauses of the detected class's shape and run the
//!   matching polynomial algorithm, or fall back to generic backtracking
//!   on the NP side. Experiment E3 races these two regimes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod cnf;
mod dichotomy;
mod solvers;

pub use classify::{
    classify, is_affine_relation, is_bijunctive_relation, is_dual_horn_relation, is_horn_relation,
    is_one_valid, is_zero_valid, relation_in_class, SchaeferClass, ALL_CLASSES,
};
pub use cnf::{Clause, Cnf};
pub use dichotomy::{solve_boolean, solve_boolean_polynomial, SolverUsed};
pub use solvers::{solve_2sat, solve_affine, solve_dual_horn, solve_horn, XorSystem};
