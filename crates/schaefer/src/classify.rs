//! Semantic classification of Boolean constraint templates into
//! Schaefer's six tractable classes (Section 3 of the paper).
//!
//! Schaefer's Dichotomy Theorem: `CSP(B)` for a Boolean structure **B**
//! is polynomial-time solvable if every relation of **B** is
//!
//! 1. **0-valid** (contains the all-zero tuple),
//! 2. **1-valid** (contains the all-one tuple),
//! 3. **Horn** (closed under componentwise AND),
//! 4. **dual-Horn** (closed under componentwise OR),
//! 5. **bijunctive** (closed under componentwise majority), or
//! 6. **affine** (closed under componentwise XOR of three tuples),
//!
//! and NP-complete otherwise. The closure tests below are *semantic*:
//! any Boolean relation is classified, not just CNF-shaped ones. The
//! closure properties are exactly the polymorphisms later generalized by
//! Jeavons–Cohen–Gyssens (cited as the "other line of attack" in
//! Section 3).

use cspdb_core::Relation;

/// One of Schaefer's tractable classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchaeferClass {
    /// All relations contain the all-zero tuple.
    ZeroValid,
    /// All relations contain the all-one tuple.
    OneValid,
    /// All relations closed under ∧ (expressible in Horn CNF).
    Horn,
    /// All relations closed under ∨ (expressible in dual-Horn CNF).
    DualHorn,
    /// All relations closed under majority (expressible in 2-CNF).
    Bijunctive,
    /// All relations closed under x⊕y⊕z (expressible as XOR systems).
    Affine,
}

/// All six classes, in a fixed order.
pub const ALL_CLASSES: [SchaeferClass; 6] = [
    SchaeferClass::ZeroValid,
    SchaeferClass::OneValid,
    SchaeferClass::Horn,
    SchaeferClass::DualHorn,
    SchaeferClass::Bijunctive,
    SchaeferClass::Affine,
];

fn is_boolean(r: &Relation) -> bool {
    r.max_element().map(|m| m <= 1).unwrap_or(true)
}

/// True if the relation contains the all-zero tuple.
pub fn is_zero_valid(r: &Relation) -> bool {
    r.contains(&vec![0u32; r.arity()])
}

/// True if the relation contains the all-one tuple.
pub fn is_one_valid(r: &Relation) -> bool {
    r.contains(&vec![1u32; r.arity()])
}

/// True if the relation is closed under componentwise AND.
pub fn is_horn_relation(r: &Relation) -> bool {
    debug_assert!(is_boolean(r));
    r.iter().all(|a| {
        r.iter().all(|b| {
            let and: Vec<u32> = a.iter().zip(b.iter()).map(|(&x, &y)| x & y).collect();
            r.contains(&and)
        })
    })
}

/// True if the relation is closed under componentwise OR.
pub fn is_dual_horn_relation(r: &Relation) -> bool {
    debug_assert!(is_boolean(r));
    r.iter().all(|a| {
        r.iter().all(|b| {
            let or: Vec<u32> = a.iter().zip(b.iter()).map(|(&x, &y)| x | y).collect();
            r.contains(&or)
        })
    })
}

/// True if the relation is closed under componentwise majority.
pub fn is_bijunctive_relation(r: &Relation) -> bool {
    debug_assert!(is_boolean(r));
    let tuples: Vec<&[u32]> = r.iter().collect();
    tuples.iter().all(|a| {
        tuples.iter().all(|b| {
            tuples.iter().all(|c| {
                let maj: Vec<u32> = (0..r.arity())
                    .map(|i| {
                        let s = a[i] + b[i] + c[i];
                        u32::from(s >= 2)
                    })
                    .collect();
                r.contains(&maj)
            })
        })
    })
}

/// True if the relation is closed under componentwise XOR of three
/// tuples (`x ⊕ y ⊕ z`, the Mal'tsev operation of the two-element group).
pub fn is_affine_relation(r: &Relation) -> bool {
    debug_assert!(is_boolean(r));
    let tuples: Vec<&[u32]> = r.iter().collect();
    tuples.iter().all(|a| {
        tuples.iter().all(|b| {
            tuples.iter().all(|c| {
                let x: Vec<u32> = (0..r.arity()).map(|i| a[i] ^ b[i] ^ c[i]).collect();
                r.contains(&x)
            })
        })
    })
}

/// Tests membership of a single relation in a class.
pub fn relation_in_class(r: &Relation, class: SchaeferClass) -> bool {
    match class {
        SchaeferClass::ZeroValid => is_zero_valid(r),
        SchaeferClass::OneValid => is_one_valid(r),
        SchaeferClass::Horn => is_horn_relation(r),
        SchaeferClass::DualHorn => is_dual_horn_relation(r),
        SchaeferClass::Bijunctive => is_bijunctive_relation(r),
        SchaeferClass::Affine => is_affine_relation(r),
    }
}

/// Classifies a template (a set of Boolean relations): the classes that
/// *every* relation belongs to. Empty result ⇒ `CSP(B)` is NP-complete
/// by Schaefer's theorem.
///
/// # Panics
///
/// Panics if some relation mentions a non-Boolean element.
pub fn classify<'a>(relations: impl IntoIterator<Item = &'a Relation>) -> Vec<SchaeferClass> {
    let rels: Vec<&Relation> = relations.into_iter().collect();
    assert!(
        rels.iter().all(|r| is_boolean(r)),
        "Schaefer classification requires Boolean relations"
    );
    ALL_CLASSES
        .into_iter()
        .filter(|&c| rels.iter().all(|r| relation_in_class(r, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(arity: usize, tuples: &[&[u32]]) -> Relation {
        Relation::from_tuples(arity, tuples.iter().copied()).unwrap()
    }

    /// The canonical template relations.
    fn implication() -> Relation {
        // x -> y : {00, 01, 11}
        rel(2, &[&[0, 0], &[0, 1], &[1, 1]])
    }

    fn or2() -> Relation {
        rel(2, &[&[0, 1], &[1, 0], &[1, 1]])
    }

    fn xor2() -> Relation {
        rel(2, &[&[0, 1], &[1, 0]])
    }

    fn one_in_three() -> Relation {
        rel(3, &[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]])
    }

    fn nae3() -> Relation {
        // Not-all-equal: everything except 000 and 111.
        rel(
            3,
            &[
                &[0, 0, 1],
                &[0, 1, 0],
                &[0, 1, 1],
                &[1, 0, 0],
                &[1, 0, 1],
                &[1, 1, 0],
            ],
        )
    }

    #[test]
    fn implication_is_in_many_classes() {
        let classes = classify([&implication()]);
        assert!(classes.contains(&SchaeferClass::ZeroValid));
        assert!(classes.contains(&SchaeferClass::OneValid));
        assert!(classes.contains(&SchaeferClass::Horn));
        assert!(classes.contains(&SchaeferClass::DualHorn));
        assert!(classes.contains(&SchaeferClass::Bijunctive));
        // NOT affine: 01 ⊕ 11 ⊕ 00 = 10 ∉ R.
        assert!(!classes.contains(&SchaeferClass::Affine));
    }

    #[test]
    fn or_is_dual_horn_not_horn() {
        assert!(!is_horn_relation(&or2())); // 01 ∧ 10 = 00 ∉ R
        assert!(is_dual_horn_relation(&or2()));
        assert!(is_bijunctive_relation(&or2()));
        assert!(!is_affine_relation(&or2())); // 01⊕10⊕11 = 00 ∉ R
        assert!(!is_zero_valid(&or2()));
        assert!(is_one_valid(&or2()));
    }

    #[test]
    fn xor_is_affine_and_bijunctive_only_ish() {
        assert!(is_affine_relation(&xor2()));
        assert!(is_bijunctive_relation(&xor2()));
        assert!(!is_horn_relation(&xor2()));
        assert!(!is_dual_horn_relation(&xor2()));
        assert!(!is_zero_valid(&xor2()));
        assert!(!is_one_valid(&xor2()));
    }

    #[test]
    fn one_in_three_is_np_side() {
        // The classic NP-complete Schaefer template: in no class.
        assert!(classify([&one_in_three()]).is_empty());
    }

    #[test]
    fn nae_is_np_side() {
        assert!(classify([&nae3()]).is_empty());
    }

    #[test]
    fn mixed_templates_intersect_classes() {
        // {implication, xor}: both bijunctive; implication is not
        // affine, xor is not Horn/dual-Horn/0-valid/1-valid.
        let classes = classify([&implication(), &xor2()]);
        assert_eq!(classes, vec![SchaeferClass::Bijunctive]);
        // {or, one-in-three}: nothing.
        assert!(classify([&or2(), &one_in_three()]).is_empty());
    }

    #[test]
    fn degenerate_relations() {
        // The empty relation is Horn/dual-Horn/bijunctive/affine
        // (closures vacuous) but neither 0- nor 1-valid.
        let empty = Relation::empty(2);
        let classes = classify([&empty]);
        assert!(!classes.contains(&SchaeferClass::ZeroValid));
        assert!(classes.contains(&SchaeferClass::Horn));
        assert!(classes.contains(&SchaeferClass::Affine));
        // The full Boolean relation is in every class.
        let full = Relation::full(2, 2);
        assert_eq!(classify([&full]).len(), 6);
    }

    #[test]
    #[should_panic(expected = "Boolean")]
    fn non_boolean_rejected() {
        let r = rel(1, &[&[2]]);
        classify([&r]);
    }
}
