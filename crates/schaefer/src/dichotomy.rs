//! The dichotomy driver: classify a Boolean CSP instance's template and
//! dispatch to the matching polynomial solver, falling back to generic
//! search on the NP side (Section 3 of the paper).
//!
//! For a template inside a tractable class, each constraint relation is
//! *compiled to clauses of the class's shape* — Horn clauses, dual-Horn
//! clauses, 2-clauses, or XOR equations. Schaefer's analysis guarantees
//! that the implied clauses of the right shape define each closed
//! relation exactly, so the compilation is equivalence-preserving; the
//! property tests cross-check against brute force.

use crate::classify::{classify, SchaeferClass};
use crate::cnf::Cnf;
use crate::solvers::{solve_2sat, solve_affine, solve_dual_horn, solve_horn, XorSystem};
use cspdb_core::{CspInstance, Relation};

/// Which algorithm the dichotomy driver used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverUsed {
    /// All relations 0-valid: the all-zero assignment.
    ZeroValid,
    /// All relations 1-valid: the all-one assignment.
    OneValid,
    /// Horn compilation + unit propagation.
    Horn,
    /// Dual-Horn compilation + unit propagation on the flip.
    DualHorn,
    /// 2-CNF compilation + implication-graph SCC.
    TwoSat,
    /// XOR compilation + Gaussian elimination.
    Affine,
    /// NP side: generic backtracking search.
    GenericSearch,
}

/// Clause shapes the compiler can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Horn,
    DualHorn,
    TwoCnf,
}

/// Enumerates the clauses of `shape` over `scope` implied by `relation`
/// and adds them to `cnf`.
fn compile_clauses(cnf: &mut Cnf, scope: &[u32], relation: &Relation, shape: Shape) {
    let arity = scope.len();
    // Sign pattern per position: 0 = absent, 1 = positive, 2 = negative.
    let mut pattern = vec![0u8; arity];
    loop {
        // Advance odometer at the end; process current pattern first.
        let width = pattern.iter().filter(|&&s| s != 0).count();
        let positives = pattern.iter().filter(|&&s| s == 1).count();
        let negatives = width - positives;
        let admissible = width > 0
            && match shape {
                Shape::Horn => positives <= 1,
                Shape::DualHorn => negatives <= 1,
                Shape::TwoCnf => width <= 2,
            };
        if admissible {
            let implied = relation.iter().all(|t| {
                (0..arity).any(|i| match pattern[i] {
                    1 => t[i] == 1,
                    2 => t[i] == 0,
                    _ => false,
                })
            });
            if implied {
                let clause: Vec<i32> = (0..arity)
                    .filter_map(|i| match pattern[i] {
                        1 => Some(scope[i] as i32 + 1),
                        2 => Some(-(scope[i] as i32 + 1)),
                        _ => None,
                    })
                    .collect();
                cnf.add_clause(clause);
            }
        }
        // Odometer over {0,1,2}^arity.
        let mut i = arity;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            pattern[i] += 1;
            if pattern[i] < 3 {
                break;
            }
            pattern[i] = 0;
        }
    }
}

/// Enumerates the XOR equations over `scope` implied by `relation` and
/// adds them to the system.
fn compile_xor(system: &mut XorSystem, scope: &[u32], relation: &Relation) {
    let arity = scope.len();
    for subset in 1u32..(1 << arity) {
        for parity in [false, true] {
            let implied = relation.iter().all(|t| {
                let mut acc = false;
                for (i, &x) in t.iter().enumerate() {
                    if subset & (1 << i) != 0 {
                        acc ^= x == 1;
                    }
                }
                acc == parity
            });
            if implied {
                let vars = (0..arity)
                    .filter(|&i| subset & (1 << i) != 0)
                    .map(|i| scope[i]);
                system.add_equation(vars, parity);
            }
        }
    }
    // An empty relation implies contradictory unit equations, which the
    // loop above already emitted (both parities pass vacuously).
}

/// Solves a Boolean CSP instance via Schaefer's dichotomy: classify the
/// template, use the matching polynomial algorithm, or fall back to
/// generic search.
///
/// # Panics
///
/// Panics if the instance is not Boolean (`num_values != 2`).
pub fn solve_boolean(instance: &CspInstance) -> (SolverUsed, Option<Vec<u32>>) {
    assert_eq!(instance.num_values(), 2, "Schaefer requires Boolean values");

    // Nullary degenerate constraints.
    if instance
        .constraints()
        .iter()
        .any(|c| c.scope().is_empty() && c.relation().is_empty())
    {
        return (SolverUsed::GenericSearch, None);
    }

    match solve_boolean_polynomial(instance) {
        Some(result) => result,
        None => (SolverUsed::GenericSearch, cspdb_solver::solve_csp(instance)),
    }
}

/// The tractable half of [`solve_boolean`]: classify the template and,
/// when it lies in a Schaefer class, solve with the dedicated
/// polynomial algorithm. Returns `None` for NP-side templates — no
/// fallback search of any kind runs, so resource-governed callers can
/// use this as a cheap first tier without risking an unbudgeted
/// exponential blowup.
///
/// # Panics
///
/// Panics if the instance is not Boolean (`num_values != 2`).
pub fn solve_boolean_polynomial(instance: &CspInstance) -> Option<(SolverUsed, Option<Vec<u32>>)> {
    assert_eq!(instance.num_values(), 2, "Schaefer requires Boolean values");
    let relations: Vec<&Relation> = instance
        .constraints()
        .iter()
        .map(|c| c.relation().as_ref())
        .collect();
    let classes = classify(relations.iter().copied());
    let n = instance.num_vars();

    // Nullary degenerate constraints defeat the per-class compilers.
    if instance
        .constraints()
        .iter()
        .any(|c| c.scope().is_empty() && c.relation().is_empty())
    {
        return None;
    }

    // Classes are ordered cheapest-first; the first match decides.
    if let Some(&class) = classes.first() {
        match class {
            SchaeferClass::ZeroValid => {
                let sol = vec![0u32; n];
                debug_assert!(instance.is_solution(&sol));
                return Some((SolverUsed::ZeroValid, Some(sol)));
            }
            SchaeferClass::OneValid => {
                let sol = vec![1u32; n];
                debug_assert!(instance.is_solution(&sol));
                return Some((SolverUsed::OneValid, Some(sol)));
            }
            SchaeferClass::Horn => {
                let mut cnf = Cnf::new(n);
                for c in instance.constraints() {
                    compile_clauses(&mut cnf, c.scope(), c.relation(), Shape::Horn);
                }
                let sol = solve_horn(&cnf).map(bools_to_u32);
                debug_assert!(sol.as_ref().is_none_or(|s| instance.is_solution(s)));
                return Some((SolverUsed::Horn, sol));
            }
            SchaeferClass::DualHorn => {
                let mut cnf = Cnf::new(n);
                for c in instance.constraints() {
                    compile_clauses(&mut cnf, c.scope(), c.relation(), Shape::DualHorn);
                }
                let sol = solve_dual_horn(&cnf).map(bools_to_u32);
                return Some((SolverUsed::DualHorn, sol));
            }
            SchaeferClass::Bijunctive => {
                let mut cnf = Cnf::new(n);
                for c in instance.constraints() {
                    compile_clauses(&mut cnf, c.scope(), c.relation(), Shape::TwoCnf);
                }
                let sol = solve_2sat(&cnf).map(bools_to_u32);
                return Some((SolverUsed::TwoSat, sol));
            }
            SchaeferClass::Affine => {
                let mut system = XorSystem::new(n);
                for c in instance.constraints() {
                    compile_xor(&mut system, c.scope(), c.relation());
                }
                let sol = solve_affine(&system).map(bools_to_u32);
                return Some((SolverUsed::Affine, sol));
            }
        }
    }
    None
}

fn bools_to_u32(bs: Vec<bool>) -> Vec<u32> {
    bs.into_iter().map(u32::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rel(arity: usize, tuples: &[&[u32]]) -> Arc<Relation> {
        Arc::new(Relation::from_tuples(arity, tuples.iter().copied()).unwrap())
    }

    fn implication() -> Arc<Relation> {
        rel(2, &[&[0, 0], &[0, 1], &[1, 1]])
    }

    fn xor2() -> Arc<Relation> {
        rel(2, &[&[0, 1], &[1, 0]])
    }

    fn or2() -> Arc<Relation> {
        rel(2, &[&[0, 1], &[1, 0], &[1, 1]])
    }

    fn one_in_three() -> Arc<Relation> {
        rel(3, &[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]])
    }

    #[test]
    fn implication_chain_uses_zero_valid_shortcut() {
        let mut p = CspInstance::new(4, 2);
        let imp = implication();
        for i in 0..3u32 {
            p.add_constraint([i, i + 1], imp.clone()).unwrap();
        }
        let (used, sol) = solve_boolean(&p);
        assert_eq!(used, SolverUsed::ZeroValid);
        assert_eq!(sol, Some(vec![0, 0, 0, 0]));
    }

    #[test]
    fn xor_instances_use_affine_solver() {
        let mut p = CspInstance::new(3, 2);
        let x = xor2();
        p.add_constraint([0, 1], x.clone()).unwrap();
        p.add_constraint([1, 2], x.clone()).unwrap();
        let (used, sol) = solve_boolean(&p);
        // xor2 is bijunctive AND affine; driver prefers bijunctive by
        // class order.
        assert!(matches!(used, SolverUsed::TwoSat | SolverUsed::Affine));
        let s = sol.expect("satisfiable");
        assert!(p.is_solution(&s));
        // Odd xor cycle: unsat.
        let mut q = CspInstance::new(3, 2);
        q.add_constraint([0, 1], x.clone()).unwrap();
        q.add_constraint([1, 2], x.clone()).unwrap();
        q.add_constraint([0, 2], x.clone()).unwrap();
        let (_, sol) = solve_boolean(&q);
        assert!(sol.is_none());
    }

    #[test]
    fn one_in_three_falls_back_to_search() {
        let mut p = CspInstance::new(3, 2);
        p.add_constraint([0, 1, 2], one_in_three()).unwrap();
        let (used, sol) = solve_boolean(&p);
        assert_eq!(used, SolverUsed::GenericSearch);
        assert!(sol.is_some());
    }

    #[test]
    fn or_template_uses_dual_horn_or_one_valid() {
        let mut p = CspInstance::new(3, 2);
        let r = or2();
        p.add_constraint([0, 1], r.clone()).unwrap();
        p.add_constraint([1, 2], r.clone()).unwrap();
        let (used, sol) = solve_boolean(&p);
        // or2 is 1-valid: the shortcut fires first.
        assert_eq!(used, SolverUsed::OneValid);
        assert!(p.is_solution(&sol.unwrap()));
    }

    #[test]
    fn driver_agrees_with_brute_force_per_class() {
        // For each canonical template, random instances agree with the
        // oracle.
        let templates: Vec<(&str, Arc<Relation>)> = vec![
            ("implication", implication()),
            ("xor", xor2()),
            ("or", or2()),
            ("one-in-three", one_in_three()),
            // Horn-ish ternary: x ∧ y -> z as a relation.
            (
                "horn3",
                rel(
                    3,
                    &[
                        &[0, 0, 0],
                        &[0, 0, 1],
                        &[0, 1, 0],
                        &[0, 1, 1],
                        &[1, 0, 0],
                        &[1, 0, 1],
                        &[1, 1, 1],
                    ],
                ),
            ),
        ];
        let mut state = 0xFEEDFACE12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (name, template) in templates {
            for _ in 0..15 {
                let n = 3 + (next() % 4) as usize;
                let mut p = CspInstance::new(n, 2);
                for _ in 0..(2 + next() % 5) {
                    let arity = template.arity();
                    let scope: Vec<u32> = (0..arity).map(|_| (next() % n as u64) as u32).collect();
                    // Repeated variables are legal; normalize is internal.
                    p.add_constraint(scope.into_boxed_slice(), template.clone())
                        .unwrap();
                }
                let (_, fast) = solve_boolean(&p);
                let slow = p.solve_brute_force();
                assert_eq!(
                    fast.is_some(),
                    slow.is_some(),
                    "template {name}, instance {p:?}"
                );
                if let Some(s) = fast {
                    assert!(p.is_solution(&s), "template {name}");
                }
            }
        }
    }

    #[test]
    fn mixed_tractable_templates() {
        // implication + xor: intersection = {bijunctive, affine}; both
        // polynomial. Build a forcing chain: x0 -> x1, x1 ⊕ x2.
        let mut p = CspInstance::new(3, 2);
        p.add_constraint([0, 1], implication()).unwrap();
        p.add_constraint([1, 2], xor2()).unwrap();
        let (used, sol) = solve_boolean(&p);
        assert!(matches!(used, SolverUsed::TwoSat | SolverUsed::Affine));
        assert!(p.is_solution(&sol.unwrap()));
    }

    #[test]
    fn empty_relation_makes_unsat_via_any_solver() {
        let mut p = CspInstance::new(2, 2);
        p.add_constraint([0, 1], Arc::new(Relation::empty(2)))
            .unwrap();
        let (_, sol) = solve_boolean(&p);
        assert!(sol.is_none());
    }
}
