//! CNF formulas with DIMACS-style signed literals.
//!
//! Boolean constraint satisfaction (`CSP(B)` for Boolean structures
//! **B**, Section 3 of the paper) is Schaefer's *generalized
//! satisfiability*. This module provides the clause representation shared
//! by the dedicated polynomial solvers: literal `+(v+1)` is variable `v`
//! positive, `-(v+1)` negative.

/// A clause: a disjunction of nonzero literals.
pub type Clause = Vec<i32>;

/// A CNF formula.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    /// Number of variables (variables are `0..num_vars`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates a formula with no clauses.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds a clause.
    ///
    /// # Panics
    ///
    /// Panics on zero literals or out-of-range variables.
    pub fn add_clause(&mut self, clause: impl Into<Clause>) {
        let clause = clause.into();
        for &lit in &clause {
            assert!(lit != 0, "literal 0 is invalid");
            assert!(
                (lit.unsigned_abs() as usize) <= self.num_vars,
                "literal {lit} out of range"
            );
        }
        self.clauses.push(clause);
    }

    /// Evaluates the formula under a total assignment
    /// (`assignment[v] == true` means variable `v` is true).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not total.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "assignment must be total");
        self.clauses.iter().all(|c| {
            c.iter().any(|&lit| {
                let v = (lit.unsigned_abs() - 1) as usize;
                if lit > 0 {
                    assignment[v]
                } else {
                    !assignment[v]
                }
            })
        })
    }

    /// Exhaustive satisfiability oracle for tiny formulas.
    ///
    /// # Panics
    ///
    /// Panics if `2^num_vars > 2^22`.
    pub fn solve_brute_force(&self) -> Option<Vec<bool>> {
        assert!(self.num_vars <= 22, "brute force limited to 22 variables");
        for bits in 0u64..(1u64 << self.num_vars) {
            let assignment: Vec<bool> = (0..self.num_vars).map(|v| bits & (1 << v) != 0).collect();
            if self.is_satisfied_by(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    /// True if every clause is Horn (at most one positive literal).
    pub fn is_horn(&self) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().filter(|&&l| l > 0).count() <= 1)
    }

    /// True if every clause is dual-Horn (at most one negative literal).
    pub fn is_dual_horn(&self) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().filter(|&&l| l < 0).count() <= 1)
    }

    /// True if every clause has at most two literals (2-CNF).
    pub fn is_bijunctive(&self) -> bool {
        self.clauses.iter().all(|c| c.len() <= 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation() {
        let mut f = Cnf::new(2);
        f.add_clause([1, -2]);
        assert!(f.is_satisfied_by(&[true, true]));
        assert!(f.is_satisfied_by(&[false, false]));
        assert!(!f.is_satisfied_by(&[false, true]));
    }

    #[test]
    fn brute_force_finds_solutions() {
        let mut f = Cnf::new(3);
        f.add_clause([1]);
        f.add_clause([-1, 2]);
        f.add_clause([-2, 3]);
        let a = f.solve_brute_force().unwrap();
        assert_eq!(a, vec![true, true, true]);
        f.add_clause([-3]);
        assert!(f.solve_brute_force().is_none());
    }

    #[test]
    fn class_shape_checks() {
        let mut horn = Cnf::new(3);
        horn.add_clause([-1, -2, 3]);
        horn.add_clause([-1]);
        assert!(horn.is_horn());
        assert!(!horn.is_dual_horn());
        let mut dual = Cnf::new(2);
        dual.add_clause([1, 2]);
        assert!(dual.is_dual_horn());
        let mut two = Cnf::new(3);
        two.add_clause([1, -2]);
        two.add_clause([2, 3]);
        assert!(two.is_bijunctive());
        two.add_clause([1, 2, 3]);
        assert!(!two.is_bijunctive());
    }

    #[test]
    #[should_panic(expected = "literal 0")]
    fn zero_literal_rejected() {
        Cnf::new(1).add_clause([0]);
    }

    #[test]
    fn empty_clause_is_unsatisfiable() {
        let mut f = Cnf::new(1);
        f.add_clause(Vec::<i32>::new());
        assert!(f.solve_brute_force().is_none());
    }
}
