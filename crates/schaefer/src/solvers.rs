//! Dedicated polynomial-time solvers for Schaefer's tractable classes
//! (Section 3 of the paper):
//!
//! * [`solve_horn`] — unit propagation, computing the minimal model of a
//!   Horn formula (this is also Datalog evaluation, cf. Section 4);
//! * [`solve_dual_horn`] — by literal-flip symmetry with Horn;
//! * [`solve_2sat`] — implication graph + Tarjan SCC, linear time;
//! * [`solve_affine`] — Gaussian elimination over GF(2) for XOR systems.

use crate::cnf::Cnf;

/// Solves a Horn formula (every clause has ≤ 1 positive literal) by unit
/// propagation: start all-false, propagate forced positives, check the
/// fully negative clauses. Returns the *minimal* model or `None`.
///
/// # Panics
///
/// Panics if the formula is not Horn.
pub fn solve_horn(f: &Cnf) -> Option<Vec<bool>> {
    assert!(f.is_horn(), "solve_horn requires a Horn formula");
    let mut value = vec![false; f.num_vars];
    loop {
        let mut changed = false;
        for c in &f.clauses {
            // Clause satisfied?
            let satisfied = c.iter().any(|&l| {
                let v = (l.unsigned_abs() - 1) as usize;
                (l > 0) == value[v]
            });
            if satisfied {
                continue;
            }
            // All negative literals are currently... a clause is
            // falsified-so-far; the only way to fix it is a positive
            // literal. Horn: at most one.
            match c.iter().find(|&&l| l > 0) {
                Some(&head) => {
                    let v = (head.unsigned_abs() - 1) as usize;
                    // head must currently be false (else satisfied).
                    value[v] = true;
                    changed = true;
                }
                None => return None, // fully negative clause violated
            }
        }
        if !changed {
            break;
        }
    }
    debug_assert!(f.is_satisfied_by(&value));
    Some(value)
}

/// Solves a dual-Horn formula by flipping every literal's sign and every
/// assignment bit around [`solve_horn`]. Returns the *maximal* model.
///
/// # Panics
///
/// Panics if the formula is not dual-Horn.
pub fn solve_dual_horn(f: &Cnf) -> Option<Vec<bool>> {
    assert!(f.is_dual_horn(), "solve_dual_horn requires dual-Horn");
    let mut flipped = Cnf::new(f.num_vars);
    for c in &f.clauses {
        flipped.add_clause(c.iter().map(|&l| -l).collect::<Vec<_>>());
    }
    solve_horn(&flipped).map(|m| m.into_iter().map(|b| !b).collect())
}

/// Solves a 2-CNF formula via the implication graph: satisfiable iff no
/// variable is in the same strongly connected component as its negation;
/// a model reads off the reverse topological order of SCCs.
///
/// # Panics
///
/// Panics if some clause has more than 2 literals.
pub fn solve_2sat(f: &Cnf) -> Option<Vec<bool>> {
    assert!(f.is_bijunctive(), "solve_2sat requires 2-CNF");
    let n = f.num_vars;
    // Vertices: 2v = x_v, 2v+1 = ¬x_v.
    let node = |l: i32| -> usize {
        let v = (l.unsigned_abs() - 1) as usize;
        if l > 0 {
            2 * v
        } else {
            2 * v + 1
        }
    };
    let neg = |u: usize| -> usize { u ^ 1 };
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); 2 * n];
    for c in &f.clauses {
        match c.as_slice() {
            [] => return None,
            [a] => adj[neg(node(*a))].push(node(*a)),
            [a, b] => {
                adj[neg(node(*a))].push(node(*b));
                adj[neg(node(*b))].push(node(*a));
            }
            _ => unreachable!("checked bijunctive"),
        }
    }
    // Iterative Tarjan SCC.
    let m = 2 * n;
    let mut index = vec![usize::MAX; m];
    let mut low = vec![0usize; m];
    let mut on_stack = vec![false; m];
    let mut comp = vec![usize::MAX; m];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    // Explicit DFS stack of (node, child-iterator position).
    for start in 0..m {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (u, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[u] = next_index;
                low[u] = next_index;
                next_index += 1;
                stack.push(u);
                on_stack[u] = true;
            }
            if *ci < adj[u].len() {
                let w = adj[u][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[u] = low[u].min(index[w]);
                }
            } else {
                if low[u] == index[u] {
                    loop {
                        let w = stack.pop().expect("scc stack nonempty");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == u {
                            break;
                        }
                    }
                    next_comp += 1;
                }
                let lu = low[u];
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    low[p] = low[p].min(lu);
                }
            }
        }
    }
    // Unsatisfiable iff x and ¬x share a component. Tarjan numbers
    // components in reverse topological order, so x is true iff
    // comp[x] < comp[¬x].
    let mut model = vec![false; n];
    for v in 0..n {
        if comp[2 * v] == comp[2 * v + 1] {
            return None;
        }
        model[v] = comp[2 * v] < comp[2 * v + 1];
    }
    debug_assert!(f.is_satisfied_by(&model));
    Some(model)
}

/// An affine (XOR) system over GF(2): each equation is
/// `x_{v_1} ⊕ ... ⊕ x_{v_m} = rhs`.
#[derive(Debug, Clone, Default)]
pub struct XorSystem {
    /// Number of variables.
    pub num_vars: usize,
    /// Equations: sorted variable lists plus right-hand sides.
    pub equations: Vec<(Vec<u32>, bool)>,
}

impl XorSystem {
    /// Creates an empty system.
    pub fn new(num_vars: usize) -> Self {
        XorSystem {
            num_vars,
            equations: Vec::new(),
        }
    }

    /// Adds an equation `⊕ vars = rhs`. Repeated variables cancel.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range variables.
    pub fn add_equation(&mut self, vars: impl IntoIterator<Item = u32>, rhs: bool) {
        let mut vs: Vec<u32> = vars.into_iter().collect();
        assert!(
            vs.iter().all(|&v| (v as usize) < self.num_vars),
            "variable out of range"
        );
        vs.sort_unstable();
        // x ⊕ x = 0.
        let mut cancelled = Vec::with_capacity(vs.len());
        let mut i = 0;
        while i < vs.len() {
            if i + 1 < vs.len() && vs[i] == vs[i + 1] {
                i += 2;
            } else {
                cancelled.push(vs[i]);
                i += 1;
            }
        }
        self.equations.push((cancelled, rhs));
    }

    /// True if the assignment satisfies every equation.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        self.equations.iter().all(|(vars, rhs)| {
            vars.iter()
                .fold(false, |acc, &v| acc ^ assignment[v as usize])
                == *rhs
        })
    }
}

/// Solves an affine system by Gaussian elimination over GF(2); free
/// variables are set to false. Returns a model or `None`.
#[allow(clippy::needless_range_loop)] // columns drive several parallel tables
pub fn solve_affine(system: &XorSystem) -> Option<Vec<bool>> {
    let n = system.num_vars;
    let words = n.div_ceil(64) + 1; // last word holds the RHS bit
    let rhs_word = n / 64;
    let rhs_bit = n % 64;
    let mut rows: Vec<Vec<u64>> = Vec::new();
    for (vars, rhs) in &system.equations {
        let mut row = vec![0u64; words.max(rhs_word + 1)];
        for &v in vars {
            row[v as usize / 64] ^= 1 << (v % 64);
        }
        if *rhs {
            row[rhs_word] ^= 1 << rhs_bit;
        }
        rows.push(row);
    }
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; n];
    let mut used = vec![false; rows.len()];
    for col in 0..n {
        let word = col / 64;
        let bit = 1u64 << (col % 64);
        let pivot = (0..rows.len()).find(|&r| !used[r] && rows[r][word] & bit != 0);
        let Some(p) = pivot else { continue };
        used[p] = true;
        pivot_of_col[col] = Some(p);
        for r in 0..rows.len() {
            if r != p && rows[r][word] & bit != 0 {
                let (a, b) = if r < p {
                    let (lo, hi) = rows.split_at_mut(p);
                    (&mut lo[r], &hi[0])
                } else {
                    let (lo, hi) = rows.split_at_mut(r);
                    (&mut hi[0], &lo[p])
                };
                for (x, y) in a.iter_mut().zip(b.iter()) {
                    *x ^= *y;
                }
            }
        }
    }
    // Inconsistent: an unused row that is all-zero except RHS.
    for (r, row) in rows.iter().enumerate() {
        let zero_lhs = (0..n).all(|c| row[c / 64] & (1 << (c % 64)) == 0);
        if zero_lhs && row[rhs_word] & (1 << rhs_bit) != 0 {
            let _ = r;
            return None;
        }
    }
    // Back-substitute: after full elimination each pivot row determines
    // its variable directly (free vars = false).
    let mut model = vec![false; n];
    for (col, pivot) in pivot_of_col.iter().enumerate() {
        if let Some(p) = *pivot {
            // Row p: pivot col plus possibly free columns; with free
            // vars false, value = RHS xor (sum over other set pivot
            // columns — none, eliminated) xor free columns (false).
            let mut value = rows[p][rhs_word] & (1 << rhs_bit) != 0;
            for c in 0..n {
                if c != col && rows[p][c / 64] & (1 << (c % 64)) != 0 {
                    // c must be a free column (pivots eliminated).
                    debug_assert!(pivot_of_col[c].is_none());
                    value ^= model[c]; // false at this point
                }
            }
            model[col] = value;
        }
    }
    debug_assert!(system.is_satisfied_by(&model));
    Some(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horn_minimal_model() {
        let mut f = Cnf::new(3);
        f.add_clause([1]); // x0
        f.add_clause([-1, 2]); // x0 -> x1
        let m = solve_horn(&f).unwrap();
        assert_eq!(m, vec![true, true, false]); // minimal: x2 stays false
        f.add_clause([-2]);
        assert!(solve_horn(&f).is_none());
    }

    #[test]
    fn dual_horn_maximal_model() {
        let mut f = Cnf::new(2);
        f.add_clause([-1]); // ¬x0
        f.add_clause([1, 2]); // x0 ∨ x1
        let m = solve_dual_horn(&f).unwrap();
        assert_eq!(m, vec![false, true]);
    }

    #[test]
    fn two_sat_classic_cases() {
        // (x0 ∨ x1)(¬x0 ∨ x1)(¬x1 ∨ x0): forces x0 = x1 = 1... check:
        let mut f = Cnf::new(2);
        f.add_clause([1, 2]);
        f.add_clause([-1, 2]);
        f.add_clause([-2, 1]);
        let m = solve_2sat(&f).unwrap();
        assert!(f.is_satisfied_by(&m));
        // Add (¬x0 ∨ ¬x1): now x0 != x1 and x0 = x1 - contradiction.
        f.add_clause([-1, -2]);
        assert!(solve_2sat(&f).is_none());
    }

    #[test]
    fn two_sat_agrees_with_brute_force_on_random() {
        let mut state = 0x5DEECE66Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 3 + (next() % 5) as usize;
            let mut f = Cnf::new(n);
            for _ in 0..(2 + next() % 8) {
                let a = (1 + (next() % n as u64) as i32) * if next() % 2 == 0 { 1 } else { -1 };
                let b = (1 + (next() % n as u64) as i32) * if next() % 2 == 0 { 1 } else { -1 };
                f.add_clause([a, b]);
            }
            let fast = solve_2sat(&f);
            let slow = f.solve_brute_force();
            assert_eq!(fast.is_some(), slow.is_some(), "on {f:?}");
            if let Some(m) = fast {
                assert!(f.is_satisfied_by(&m));
            }
        }
    }

    #[test]
    fn horn_agrees_with_brute_force_on_random() {
        let mut state = 0xB5026F5AA96619E9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 3 + (next() % 5) as usize;
            let mut f = Cnf::new(n);
            for _ in 0..(2 + next() % 8) {
                let width = 1 + (next() % 3) as usize;
                let mut clause: Vec<i32> = (0..width)
                    .map(|_| -(1 + (next() % n as u64) as i32))
                    .collect();
                if next() % 2 == 0 {
                    clause[0] = -clause[0];
                }
                f.add_clause(clause);
            }
            assert!(f.is_horn());
            let fast = solve_horn(&f);
            let slow = f.solve_brute_force();
            assert_eq!(fast.is_some(), slow.is_some(), "on {f:?}");
        }
    }

    #[test]
    fn affine_systems() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 ⊕ x2 = 0: consistent.
        let mut s = XorSystem::new(3);
        s.add_equation([0, 1], true);
        s.add_equation([1, 2], true);
        s.add_equation([0, 2], false);
        let m = solve_affine(&s).unwrap();
        assert!(s.is_satisfied_by(&m));
        // Flip the last RHS: inconsistent.
        let mut s2 = XorSystem::new(3);
        s2.add_equation([0, 1], true);
        s2.add_equation([1, 2], true);
        s2.add_equation([0, 2], true);
        assert!(solve_affine(&s2).is_none());
    }

    #[test]
    fn affine_cancellation_and_degenerate() {
        let mut s = XorSystem::new(2);
        s.add_equation([0, 0], true); // cancels to 0 = 1
        assert!(solve_affine(&s).is_none());
        let mut s = XorSystem::new(2);
        s.add_equation([1, 1], false); // 0 = 0
        assert!(solve_affine(&s).is_some());
        let s = XorSystem::new(0);
        assert_eq!(solve_affine(&s), Some(vec![]));
    }

    #[test]
    fn affine_agrees_with_enumeration_on_random() {
        let mut state = 0x853C49E6748FEA9Bu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let n = 2 + (next() % 5) as usize;
            let mut s = XorSystem::new(n);
            for _ in 0..(1 + next() % 6) {
                let width = 1 + (next() % 3) as usize;
                let vars: Vec<u32> = (0..width).map(|_| (next() % n as u64) as u32).collect();
                s.add_equation(vars, next() % 2 == 0);
            }
            let fast = solve_affine(&s);
            // Enumerate.
            let mut any = false;
            for bits in 0u64..(1 << n) {
                let a: Vec<bool> = (0..n).map(|v| bits & (1 << v) != 0).collect();
                if s.is_satisfied_by(&a) {
                    any = true;
                    break;
                }
            }
            assert_eq!(fast.is_some(), any, "on {s:?}");
        }
    }
}
