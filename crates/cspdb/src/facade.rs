//! The unified [`Solver`] facade and the governed dispatch machinery.
//!
//! One builder covers every solving mode — plain, budget-governed, and
//! the parallel portfolio race:
//!
//! ```
//! use cspdb::{Solver, SolveStrategy};
//! use cspdb::core::budget::Budget;
//! use cspdb::core::graphs::{clique, cycle};
//!
//! let report = Solver::new()
//!     .budget(Budget::unlimited())
//!     .strategy(SolveStrategy::Ladder)
//!     .solve(&cycle(6), &clique(2));
//! assert!(report.answer.is_sat());
//! ```
//!
//! Attach a [`TraceSink`] with [`Solver::trace`] to receive typed
//! [`TraceEvent`]s from every phase of the run, and read the per-phase
//! wall-time/step/tuple summary from [`GovernedReport::trace`].

use cspdb_core::budget::{Answer, Budget, CancelToken, ExhaustionReason, Metering, ResourceUsage};
use cspdb_core::trace::{TraceEvent, TraceSink, Tracer};
use cspdb_core::{CspInstance, Structure};
use cspdb_solver::BudgetedRun;
use rayon::prelude::*;
use std::sync::Arc;
use std::time::Instant;

/// Which strategy a solve ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Schaefer-class polynomial solver (which one is in the payload).
    Schaefer(cspdb_schaefer::SolverUsed),
    /// Yannakakis on an acyclic instance.
    Yannakakis,
    /// Dynamic programming over a tree decomposition of the given width.
    Treewidth(usize),
    /// Generic MAC backtracking.
    Backtracking,
    /// Arc-consistency fallback (sound refutations only).
    ArcConsistency,
    /// Strong k-consistency fallback (sound refutations only).
    KConsistency(usize),
}

impl Strategy {
    /// Stable machine-readable phase name, without payloads — the
    /// `strategy` field of [`TraceEvent::TierStart`]/[`TraceEvent::TierEnd`].
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Schaefer(_) => "schaefer",
            Strategy::Yannakakis => "yannakakis",
            Strategy::Treewidth(_) => "treewidth",
            Strategy::Backtracking => "backtracking",
            Strategy::ArcConsistency => "arc_consistency",
            Strategy::KConsistency(_) => "k_consistency",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Schaefer(used) => write!(f, "schaefer({used:?})"),
            Strategy::Yannakakis => write!(f, "yannakakis"),
            Strategy::Treewidth(w) => write!(f, "treewidth({w})"),
            Strategy::Backtracking => write!(f, "backtracking"),
            Strategy::ArcConsistency => write!(f, "arc-consistency"),
            Strategy::KConsistency(k) => write!(f, "{k}-consistency"),
        }
    }
}

/// The result of a plain (unbudgeted) solve, as returned by
/// [`GovernedReport::expect_decided`].
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// The strategy that produced the answer.
    pub strategy: Strategy,
    /// A homomorphism `A -> B`, if one exists.
    pub witness: Option<Vec<u32>>,
}

/// How one tier of the governed ladder (or one portfolio racer) ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierOutcome {
    /// The tier produced the final answer.
    Decided,
    /// The tier was skipped, with the reason (inapplicable / too big).
    Skipped(&'static str),
    /// The tier's budget slice ran out before it could decide.
    Exhausted(ExhaustionReason),
    /// The tier completed but could not decide (e.g. consistency held).
    Inconclusive,
}

impl TierOutcome {
    /// Short human-readable label (`"decided"`, `"skipped: ..."`,
    /// `"exhausted: ..."`, `"inconclusive"`).
    pub fn label(&self) -> String {
        match self {
            TierOutcome::Decided => "decided".into(),
            TierOutcome::Skipped(why) => format!("skipped: {why}"),
            TierOutcome::Exhausted(r) => format!("exhausted: {r}"),
            TierOutcome::Inconclusive => "inconclusive".into(),
        }
    }
}

/// One rung of the degradation ladder: which strategy was tried and how
/// it ended. The full trace explains an `Unknown` answer.
#[derive(Debug, Clone)]
pub struct TierAttempt {
    /// The strategy attempted.
    pub strategy: Strategy,
    /// How the attempt ended.
    pub outcome: TierOutcome,
}

/// Wall time and meter counters one phase of a governed run consumed.
///
/// Under portfolio racing all racers draw on one shared meter, so step
/// and tuple counts are unattributable per racer: racer phases report
/// zero counters and an aggregate `"portfolio"` phase carries the
/// totals.
#[derive(Debug, Clone)]
pub struct PhaseTrace {
    /// Display name of the phase (e.g. `"treewidth(2)"`).
    pub phase: String,
    /// Wall time the phase consumed, in microseconds.
    pub micros: u64,
    /// Meter steps the phase ticked.
    pub steps: u64,
    /// Meter tuples the phase charged.
    pub tuples: u64,
}

/// Per-phase summary of a governed run — available on every
/// [`GovernedReport`] whether or not a [`TraceSink`] was attached.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// One entry per phase, in execution order.
    pub phases: Vec<PhaseTrace>,
}

/// The result of a governed solve: a three-valued answer plus the
/// ladder trace that produced it.
///
/// Soundness contract: `Sat`/`Unsat` always agree with the unbudgeted
/// ground truth; exhaustion only ever widens the answer to `Unknown`.
#[derive(Debug, Clone)]
pub struct GovernedReport {
    /// `Sat` with witness, `Unsat`, or `Unknown(reason)`.
    pub answer: Answer,
    /// The strategy that decided, `None` when the answer is `Unknown`.
    pub strategy: Option<Strategy>,
    /// Every tier attempted, in ladder order.
    pub attempts: Vec<TierAttempt>,
    /// Per-phase wall time and meter counters.
    pub trace: TraceSummary,
}

impl GovernedReport {
    /// Collapses a decided report into the legacy [`SolveReport`] shape.
    ///
    /// # Panics
    ///
    /// Panics when the answer is `Unknown` — only use this on runs whose
    /// budget cannot exhaust (e.g. the unlimited default).
    pub fn expect_decided(self) -> SolveReport {
        SolveReport {
            strategy: self.strategy.expect("budgeted run did not decide"),
            witness: self.answer.witness().map(<[u32]>::to_vec),
        }
    }
}

/// Uniform three-valued verdict accessor over every report type the
/// workspace produces ([`SolveReport`], [`GovernedReport`], and the
/// solver crate's [`BudgetedRun`]).
pub trait SolveOutcome {
    /// The run's verdict as a core [`Answer`].
    fn outcome(&self) -> Answer;
}

impl SolveOutcome for GovernedReport {
    fn outcome(&self) -> Answer {
        self.answer.clone()
    }
}

impl SolveOutcome for SolveReport {
    fn outcome(&self) -> Answer {
        match &self.witness {
            Some(w) => Answer::Sat(w.clone()),
            None => Answer::Unsat,
        }
    }
}

impl SolveOutcome for BudgetedRun {
    fn outcome(&self) -> Answer {
        self.answer.clone()
    }
}

impl From<SolveReport> for GovernedReport {
    fn from(report: SolveReport) -> Self {
        let strategy = report.strategy;
        GovernedReport {
            answer: match report.witness {
                Some(w) => Answer::Sat(w),
                None => Answer::Unsat,
            },
            strategy: Some(strategy),
            attempts: vec![TierAttempt {
                strategy,
                outcome: TierOutcome::Decided,
            }],
            trace: TraceSummary::default(),
        }
    }
}

impl From<BudgetedRun> for GovernedReport {
    fn from(run: BudgetedRun) -> Self {
        let usage = run.usage;
        let (strategy, outcome) = match &run.answer {
            Answer::Unknown(r) => (None, TierOutcome::Exhausted(*r)),
            _ => (Some(Strategy::Backtracking), TierOutcome::Decided),
        };
        GovernedReport {
            answer: run.answer,
            strategy,
            attempts: vec![TierAttempt {
                strategy: Strategy::Backtracking,
                outcome,
            }],
            trace: TraceSummary {
                phases: vec![PhaseTrace {
                    phase: Strategy::Backtracking.to_string(),
                    micros: usage.elapsed.as_micros() as u64,
                    steps: usage.steps,
                    tuples: usage.tuples,
                }],
            },
        }
    }
}

/// Maximum heuristic treewidth for which the DP route is attempted.
const TREEWIDTH_CUTOFF: usize = 4;

/// Pebble count for the k-consistency fallback tier.
const FALLBACK_K: usize = 3;

/// Largest `W^k` table the k-consistency fallback will build when the
/// budget carries no tuple cap of its own.
const FALLBACK_WK_CAP: u64 = 1_000_000;

/// How [`Solver::solve`] dispatches over the paper's tractability map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveStrategy {
    /// Straight MAC backtracking — no structural dispatch.
    Direct,
    /// The sequential degradation ladder: Schaefer, Yannakakis,
    /// treewidth DP, backtracking, then sound-refutation consistency
    /// fallbacks, each under a budget slice (the default).
    #[default]
    Ladder,
    /// The applicable structural strategies race on [`rayon`] workers
    /// under one thread-shared meter; first sound answer wins and
    /// cancels the rest.
    Portfolio,
}

/// Builder facade over every solving mode of the workspace.
///
/// ```
/// use cspdb::Solver;
/// use cspdb::core::graphs::{clique, cycle};
///
/// let report = Solver::new().solve(&cycle(6), &clique(2));
/// assert!(report.answer.is_sat()); // even cycles are 2-colorable
/// ```
///
/// With a budget, a strategy, and a trace sink:
///
/// ```
/// use cspdb::{Solver, SolveStrategy};
/// use cspdb::core::budget::Budget;
/// use cspdb::core::trace::Recorder;
/// use cspdb::core::graphs::{clique, cycle};
/// use std::sync::Arc;
///
/// let rec = Arc::new(Recorder::new());
/// let report = Solver::new()
///     .budget(Budget::unlimited())
///     .strategy(SolveStrategy::Ladder)
///     .trace(rec.clone())
///     .solve(&cycle(5), &clique(3));
/// assert!(report.answer.is_sat());
/// assert!(!rec.events().is_empty());
/// ```
#[derive(Clone)]
pub struct Solver {
    budget: Budget,
    strategy: SolveStrategy,
    parallel: bool,
    sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("budget", &self.budget)
            .field("strategy", &self.strategy)
            .field("parallel", &self.parallel)
            .field("trace", &self.sink.is_some())
            .finish()
    }
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// A solver with an unlimited budget, the [`SolveStrategy::Ladder`]
    /// dispatch, sequential tier execution, and no trace sink.
    pub fn new() -> Self {
        Solver {
            budget: Budget::unlimited(),
            strategy: SolveStrategy::default(),
            parallel: false,
            sink: None,
        }
    }

    /// Sets the resource [`Budget`] governing the whole run.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Selects the dispatch [`SolveStrategy`].
    pub fn strategy(mut self, strategy: SolveStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Runs ladder tiers (and the direct solve) on their parallel,
    /// thread-shared-meter implementations instead of the sequential
    /// ones. [`SolveStrategy::Portfolio`] always races in parallel,
    /// regardless of this flag.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attaches a [`TraceSink`] receiving typed [`TraceEvent`]s from
    /// every phase. Builder-order independent: the sink is composed with
    /// the budget at solve time, so `.trace(..).budget(..)` and
    /// `.budget(..).trace(..)` behave identically.
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Solves the homomorphism problem `A -> B`.
    ///
    /// # Panics
    ///
    /// Panics if the structures have different vocabularies.
    pub fn solve(&self, a: &Structure, b: &Structure) -> GovernedReport {
        assert_eq!(a.vocabulary(), b.vocabulary(), "vocabulary mismatch");
        let instance = CspInstance::from_homomorphism(a, b).expect("same vocabulary");
        self.solve_csp(&instance)
    }

    /// Solves a classical CSP instance.
    pub fn solve_csp(&self, instance: &CspInstance) -> GovernedReport {
        let budget = match &self.sink {
            Some(sink) => self.budget.clone().with_trace(sink.clone()),
            None => self.budget.clone(),
        };
        match self.strategy {
            SolveStrategy::Direct => run_direct(instance, &budget, self.parallel),
            SolveStrategy::Ladder => run_ladder(instance, &budget, self.parallel),
            SolveStrategy::Portfolio => run_portfolio(instance, &budget),
        }
    }
}

fn answer_of(witness: Option<Vec<u32>>) -> Answer {
    match witness {
        Some(w) => Answer::Sat(w),
        None => Answer::Unsat,
    }
}

/// Shared bookkeeping of one governed run: the attempt list, the phase
/// summary, the latched exhaustion reason, and the event tracer.
struct Dispatch {
    tracer: Tracer,
    attempts: Vec<TierAttempt>,
    trace: TraceSummary,
    last_exhaustion: Option<ExhaustionReason>,
}

impl Dispatch {
    fn new(budget: &Budget) -> Self {
        Dispatch {
            tracer: budget.tracer().clone(),
            attempts: Vec::new(),
            trace: TraceSummary::default(),
            last_exhaustion: None,
        }
    }

    /// Emits [`TraceEvent::TierStart`] and stamps the tier's clock.
    fn begin(&self, name: &'static str) -> Instant {
        self.tracer
            .emit_with(|| TraceEvent::TierStart { strategy: name });
        Instant::now()
    }

    /// Records a finished tier: [`TraceEvent::TierEnd`] (plus
    /// [`TraceEvent::Exhausted`] when applicable), a [`PhaseTrace`]
    /// entry, and the [`TierAttempt`].
    fn finish(
        &mut self,
        strategy: Strategy,
        outcome: TierOutcome,
        micros: u64,
        usage: ResourceUsage,
    ) {
        let label = outcome.label();
        self.tracer.emit_with(|| TraceEvent::TierEnd {
            strategy: strategy.name(),
            outcome: label,
            micros,
            steps: usage.steps,
            tuples: usage.tuples,
        });
        if let TierOutcome::Exhausted(reason) = outcome {
            self.last_exhaustion = Some(reason);
            self.tracer.emit_with(|| TraceEvent::Exhausted {
                phase: strategy.name(),
                reason,
            });
        }
        self.trace.phases.push(PhaseTrace {
            phase: strategy.to_string(),
            micros,
            steps: usage.steps,
            tuples: usage.tuples,
        });
        self.attempts.push(TierAttempt { strategy, outcome });
    }

    /// Finishes a deciding tier and closes the report.
    fn decided(
        mut self,
        answer: Answer,
        strategy: Strategy,
        micros: u64,
        usage: ResourceUsage,
    ) -> GovernedReport {
        self.finish(strategy, TierOutcome::Decided, micros, usage);
        self.report(answer, Some(strategy))
    }

    fn report(self, answer: Answer, strategy: Option<Strategy>) -> GovernedReport {
        GovernedReport {
            answer,
            strategy,
            attempts: self.attempts,
            trace: self.trace,
        }
    }

    fn unknown(self) -> GovernedReport {
        let reason = self
            .last_exhaustion
            .expect("some tier exhausted, else a complete tier decided");
        self.report(Answer::Unknown(reason), None)
    }
}

fn micros_since(start: Instant) -> u64 {
    start.elapsed().as_micros() as u64
}

/// Tier 1 of both the ladder and the portfolio: Schaefer's polynomial
/// solvers run inline (they are low-order polynomial and complete).
/// `Some` when the template was Boolean and in a Schaefer class.
fn schaefer_tier(
    d: &Dispatch,
    instance: &CspInstance,
    budget: &Budget,
) -> Option<(Strategy, Answer, u64)> {
    if instance.num_values() != 2 || budget.meter().checkpoint().is_err() {
        return None;
    }
    let start = d.begin("schaefer");
    match cspdb_schaefer::solve_boolean_polynomial(instance) {
        Some((used, witness)) => Some((
            Strategy::Schaefer(used),
            answer_of(witness),
            micros_since(start),
        )),
        None => {
            // NP-side Boolean template: fall through to the structural
            // strategies without recording a ladder attempt (only the
            // event stream sees the probe).
            let micros = micros_since(start);
            d.tracer.emit_with(|| TraceEvent::TierEnd {
                strategy: "schaefer",
                outcome: "skipped: template not in a polynomial Schaefer class".into(),
                micros,
                steps: 0,
                tuples: 0,
            });
            None
        }
    }
}

/// Sound-refutation consistency fallbacks (ladder tiers 5a/5b), shared
/// verbatim by the sequential ladder and the portfolio's post-race path.
fn consistency_fallbacks(
    mut d: Dispatch,
    instance: &CspInstance,
    a: &Structure,
    b: &Structure,
    budget: &Budget,
) -> GovernedReport {
    // 5a. Arc-consistency approximation: a wipeout soundly refutes.
    let slice = budget.slice(1, 8);
    let mut meter = slice.meter();
    let start = d.begin("arc_consistency");
    match cspdb_consistency::ac3_metered(instance, &mut meter) {
        Ok(None) => {
            return d.decided(
                Answer::Unsat,
                Strategy::ArcConsistency,
                micros_since(start),
                meter.usage(),
            )
        }
        Ok(Some(_)) => d.finish(
            Strategy::ArcConsistency,
            TierOutcome::Inconclusive,
            micros_since(start),
            meter.usage(),
        ),
        Err(r) => d.finish(
            Strategy::ArcConsistency,
            TierOutcome::Exhausted(r),
            micros_since(start),
            meter.usage(),
        ),
    }

    // 5b. Strong k-consistency approximation: a Spoiler win in the
    // existential k-pebble game soundly refutes. Gated by an
    // overflow-safe table estimate so an uncapped budget cannot be
    // tricked into building a gigantic W^k table.
    let wk_ok = cspdb_consistency::wk_table_bound(a.domain_size(), b.domain_size(), FALLBACK_K)
        .map(|bound| bound <= FALLBACK_WK_CAP)
        .unwrap_or(false);
    if wk_ok {
        let slice = budget.slice(1, 8);
        let mut meter = slice.meter();
        let start = d.begin("k_consistency");
        match cspdb_consistency::k_consistency_refutes_metered(a, b, FALLBACK_K, &mut meter) {
            Ok(Some(false)) => {
                return d.decided(
                    Answer::Unsat,
                    Strategy::KConsistency(FALLBACK_K),
                    micros_since(start),
                    meter.usage(),
                )
            }
            Ok(_) => d.finish(
                Strategy::KConsistency(FALLBACK_K),
                TierOutcome::Inconclusive,
                micros_since(start),
                meter.usage(),
            ),
            Err(r) => d.finish(
                Strategy::KConsistency(FALLBACK_K),
                TierOutcome::Exhausted(r),
                micros_since(start),
                meter.usage(),
            ),
        }
    } else {
        let start = d.begin("k_consistency");
        d.finish(
            Strategy::KConsistency(FALLBACK_K),
            TierOutcome::Skipped("W^k table estimate above cap"),
            micros_since(start),
            ResourceUsage::default(),
        );
    }

    d.unknown()
}

/// [`SolveStrategy::Direct`]: MAC backtracking with no dispatch.
fn run_direct(instance: &CspInstance, budget: &Budget, parallel: bool) -> GovernedReport {
    let mut d = Dispatch::new(budget);
    let start = d.begin("backtracking");
    let run = if parallel {
        cspdb_solver::solve_csp_shared(instance, &budget.shared_meter())
    } else {
        cspdb_solver::solve_csp_metered(instance, budget.meter())
    };
    let usage = run.usage;
    match run.answer {
        Answer::Unknown(r) => {
            d.finish(
                Strategy::Backtracking,
                TierOutcome::Exhausted(r),
                micros_since(start),
                usage,
            );
            d.unknown()
        }
        sound => d.decided(sound, Strategy::Backtracking, micros_since(start), usage),
    }
}

/// [`SolveStrategy::Ladder`]: resource-governed dispatch walking the
/// paper's tractability ladder under budget slices, degrading gracefully
/// instead of hanging.
///
/// 1. Boolean template in a Schaefer class → the dedicated polynomial
///    solver (Section 3);
/// 2. α-acyclic constraint hypergraph → Yannakakis under a budget slice;
/// 3. small heuristic Gaifman treewidth → decomposition DP under a
///    budget slice (the planning pass is budgeted too — min-fill alone
///    can dwarf a millisecond deadline on large instances);
/// 4. MAC backtracking under a budget slice;
/// 5. approximation fallback: budgeted arc-consistency, then strong
///    k-consistency, which can soundly answer `Unsat` (a wipeout /
///    Spoiler win refutes, Sections 4–5) but never `Sat`.
///
/// Every decided answer agrees with the unbudgeted ground truth; if all
/// tiers exhaust, the answer is `Unknown` carrying the last tier's
/// exhaustion reason and the trace of every attempt.
fn run_ladder(instance: &CspInstance, budget: &Budget, parallel: bool) -> GovernedReport {
    let mut d = Dispatch::new(budget);

    // 1. Schaefer.
    if let Some((strategy, answer, micros)) = schaefer_tier(&d, instance, budget) {
        return d.decided(answer, strategy, micros, ResourceUsage::default());
    }

    // 2. Acyclic hypergraph: Yannakakis under a quarter slice.
    if cspdb_relalg::is_acyclic_instance(instance) {
        let slice = budget.slice(1, 4);
        let start = d.begin("yannakakis");
        let (result, usage) = if parallel {
            let meter = slice.shared_meter();
            let r = cspdb_relalg::solve_acyclic_shared(instance, &meter);
            (r, meter.usage())
        } else {
            let mut meter = slice.meter();
            let r = cspdb_relalg::solve_acyclic_metered(instance, &mut meter);
            (r, meter.usage())
        };
        match result {
            Ok(witness) => {
                return d.decided(
                    answer_of(witness),
                    Strategy::Yannakakis,
                    micros_since(start),
                    usage,
                )
            }
            Err(cspdb_relalg::AcyclicSolveError::Exhausted(r)) => d.finish(
                Strategy::Yannakakis,
                TierOutcome::Exhausted(r),
                micros_since(start),
                usage,
            ),
            Err(cspdb_relalg::AcyclicSolveError::NotAcyclic) => {
                unreachable!("checked acyclic")
            }
        }
    } else {
        let start = d.begin("yannakakis");
        d.finish(
            Strategy::Yannakakis,
            TierOutcome::Skipped("hypergraph is not α-acyclic"),
            micros_since(start),
            ResourceUsage::default(),
        );
    }

    // 3. Bounded treewidth: budgeted planning, then budgeted DP, drawing
    // on one quarter-slice meter together.
    let (a, b) = instance.to_homomorphism();
    {
        let slice = budget.slice(1, 4);
        let g = cspdb_decomp::Graph::gaifman(&a);
        let start = d.begin("treewidth");
        if parallel {
            let meter = slice.shared_meter();
            match treewidth_tier(&a, &b, &g, parallel, &mut meter.clone(), Some(&meter)) {
                TreewidthTier::Decided(width, witness) => {
                    return d.decided(
                        answer_of(witness),
                        Strategy::Treewidth(width),
                        micros_since(start),
                        meter.usage(),
                    )
                }
                TreewidthTier::Other(width, outcome) => d.finish(
                    Strategy::Treewidth(width),
                    outcome,
                    micros_since(start),
                    meter.usage(),
                ),
            }
        } else {
            let mut meter = slice.meter();
            match treewidth_tier(&a, &b, &g, parallel, &mut meter, None) {
                TreewidthTier::Decided(width, witness) => {
                    return d.decided(
                        answer_of(witness),
                        Strategy::Treewidth(width),
                        micros_since(start),
                        meter.usage(),
                    )
                }
                TreewidthTier::Other(width, outcome) => d.finish(
                    Strategy::Treewidth(width),
                    outcome,
                    micros_since(start),
                    meter.usage(),
                ),
            }
        }
    }

    // 4. Generic MAC backtracking under a quarter slice (complete given
    // enough budget: with no limits this tier always decides).
    {
        let slice = budget.slice(1, 4);
        let start = d.begin("backtracking");
        let run = if parallel {
            cspdb_solver::solve_csp_shared(instance, &slice.shared_meter())
        } else {
            cspdb_solver::solve_csp_metered(instance, slice.meter())
        };
        let usage = run.usage;
        match run.answer {
            Answer::Unknown(r) => d.finish(
                Strategy::Backtracking,
                TierOutcome::Exhausted(r),
                micros_since(start),
                usage,
            ),
            sound => return d.decided(sound, Strategy::Backtracking, micros_since(start), usage),
        }
    }

    // 5. Sound-refutation fallbacks.
    consistency_fallbacks(d, instance, &a, &b, budget)
}

/// Outcome of the treewidth tier's planning + DP pipeline.
enum TreewidthTier {
    /// The DP decided: width used and the verdict.
    Decided(usize, Option<Vec<u32>>),
    /// Planning exhausted, width above cutoff, or DP exhausted.
    Other(usize, TierOutcome),
}

/// Runs min-fill planning, the cutoff check, and the decomposition DP on
/// one meter. `shared` selects the level-parallel DP (the planning pass
/// charges `meter` either way).
fn treewidth_tier<M: Metering>(
    a: &Structure,
    b: &Structure,
    g: &cspdb_decomp::Graph,
    parallel: bool,
    meter: &mut M,
    shared: Option<&cspdb_core::budget::SharedMeter>,
) -> TreewidthTier {
    debug_assert_eq!(parallel, shared.is_some());
    let order = match cspdb_decomp::min_fill_order_metered(g, meter) {
        Ok(order) => order,
        Err(r) => {
            // Planning alone blew the slice: record under the treewidth
            // strategy with the width unknown (the cutoff stands in).
            return TreewidthTier::Other(TREEWIDTH_CUTOFF, TierOutcome::Exhausted(r));
        }
    };
    let width = cspdb_decomp::order_width(g, &order);
    if width > TREEWIDTH_CUTOFF {
        return TreewidthTier::Other(
            width,
            TierOutcome::Skipped("heuristic treewidth above cutoff"),
        );
    }
    let td = cspdb_decomp::from_elimination_order(g, &order);
    let result = match shared {
        Some(shared) => cspdb_decomp::solve_with_decomposition_shared(a, b, &td, shared),
        None => cspdb_decomp::solve_with_decomposition_metered(a, b, &td, meter),
    };
    match result {
        Ok(witness) => TreewidthTier::Decided(width, witness),
        Err(cspdb_decomp::DecompSolveError::Exhausted(r)) => {
            TreewidthTier::Other(width, TierOutcome::Exhausted(r))
        }
        Err(cspdb_decomp::DecompSolveError::Invalid(msg)) => {
            unreachable!("constructed decomposition is valid: {msg}")
        }
    }
}

/// How one racer in the portfolio ended.
enum RaceResult {
    Decided(Answer),
    Skipped(&'static str),
    Exhausted(ExhaustionReason),
}

/// [`SolveStrategy::Portfolio`]: instead of walking the ladder tier by
/// tier with budget *slices*, the applicable structural strategies —
/// Yannakakis on acyclic instances, the treewidth DP when planning stays
/// under the cutoff, and MAC backtracking — **race on [`rayon`] workers
/// under one thread-shared [`cspdb_core::budget::SharedMeter`]**. The
/// budget's step, tuple, and deadline limits bound the racers' *total*
/// work, and the first racer to produce a sound answer cancels the rest
/// through a [`CancelToken`] child of the caller's token (so cancelling
/// the caller still stops everything, while the race's own cancellation
/// never escapes to the caller).
///
/// Schaefer's polynomial solvers still run inline first (they are
/// low-order polynomial and complete), and the sound-refutation-only
/// consistency fallbacks run after the race only if no racer decided.
/// Soundness is unchanged: every decided answer agrees with the
/// unbudgeted ground truth.
fn run_portfolio(instance: &CspInstance, budget: &Budget) -> GovernedReport {
    let mut d = Dispatch::new(budget);

    // 1. Schaefer inline — same as the sequential ladder.
    if let Some((strategy, answer, micros)) = schaefer_tier(&d, instance, budget) {
        return d.decided(answer, strategy, micros, ResourceUsage::default());
    }

    // 2. Race the structural strategies under one shared meter. The race
    // token is a *child* of the caller's token: caller cancellation
    // propagates in, the winner's `race.cancel()` does not leak out.
    let race = match &budget.cancel {
        Some(caller) => caller.child(),
        None => CancelToken::new(),
    };
    let race_budget = budget.clone().with_cancel(race.clone());
    let meter = race_budget.shared_meter();
    let acyclic = cspdb_relalg::is_acyclic_instance(instance);
    let (a, b) = instance.to_homomorphism();

    type Racer<'r> = Box<dyn FnOnce() -> (Strategy, RaceResult, u64) + Send + 'r>;
    let racers: Vec<Racer> = vec![
        Box::new(|| {
            meter.tracer().emit_with(|| TraceEvent::TierStart {
                strategy: "yannakakis",
            });
            let start = Instant::now();
            if !acyclic {
                return (
                    Strategy::Yannakakis,
                    RaceResult::Skipped("hypergraph is not α-acyclic"),
                    micros_since(start),
                );
            }
            let result = match cspdb_relalg::solve_acyclic_shared(instance, &meter) {
                Ok(witness) => {
                    race.cancel();
                    RaceResult::Decided(answer_of(witness))
                }
                Err(cspdb_relalg::AcyclicSolveError::Exhausted(r)) => RaceResult::Exhausted(r),
                Err(cspdb_relalg::AcyclicSolveError::NotAcyclic) => {
                    unreachable!("checked acyclic")
                }
            };
            (Strategy::Yannakakis, result, micros_since(start))
        }),
        Box::new(|| {
            meter.tracer().emit_with(|| TraceEvent::TierStart {
                strategy: "treewidth",
            });
            let start = Instant::now();
            let g = cspdb_decomp::Graph::gaifman(&a);
            let (strategy, result) =
                match treewidth_tier(&a, &b, &g, true, &mut meter.clone(), Some(&meter)) {
                    TreewidthTier::Decided(width, witness) => {
                        race.cancel();
                        (
                            Strategy::Treewidth(width),
                            RaceResult::Decided(answer_of(witness)),
                        )
                    }
                    TreewidthTier::Other(width, TierOutcome::Exhausted(r)) => {
                        (Strategy::Treewidth(width), RaceResult::Exhausted(r))
                    }
                    TreewidthTier::Other(width, TierOutcome::Skipped(why)) => {
                        (Strategy::Treewidth(width), RaceResult::Skipped(why))
                    }
                    TreewidthTier::Other(..) => unreachable!("planning is exhaustive"),
                };
            (strategy, result, micros_since(start))
        }),
        Box::new(|| {
            meter.tracer().emit_with(|| TraceEvent::TierStart {
                strategy: "backtracking",
            });
            let start = Instant::now();
            let run = cspdb_solver::solve_csp_shared(instance, &meter);
            let result = match run.answer {
                Answer::Unknown(r) => RaceResult::Exhausted(r),
                sound => {
                    race.cancel();
                    RaceResult::Decided(sound)
                }
            };
            (Strategy::Backtracking, result, micros_since(start))
        }),
    ];
    let race_start = Instant::now();
    let results: Vec<(Strategy, RaceResult, u64)> =
        racers.into_par_iter().map(|tier| tier()).collect();
    let race_micros = micros_since(race_start);

    let mut winner: Option<(Strategy, Answer)> = None;
    let mut losers: Vec<(&'static str, String)> = Vec::new();
    for (strategy, result, micros) in results {
        let outcome = match result {
            RaceResult::Decided(answer) => {
                if winner.is_none() {
                    winner = Some((strategy, answer));
                } else {
                    losers.push((strategy.name(), "decided late".into()));
                }
                TierOutcome::Decided
            }
            RaceResult::Skipped(why) => {
                losers.push((strategy.name(), format!("skipped: {why}")));
                TierOutcome::Skipped(why)
            }
            RaceResult::Exhausted(r) => {
                losers.push((strategy.name(), r.to_string()));
                TierOutcome::Exhausted(r)
            }
        };
        // Racer phases report zero counters: the meter is shared, so
        // per-racer step/tuple attribution does not exist.
        d.finish(strategy, outcome, micros, ResourceUsage::default());
    }
    if let Some((strategy, _)) = &winner {
        let name = strategy.name();
        d.tracer
            .emit_with(|| TraceEvent::RaceWinner { strategy: name });
        losers.retain(|(loser, _)| *loser != name);
    }
    for (name, cause) in losers {
        d.tracer.emit_with(move || TraceEvent::RaceLoser {
            strategy: name,
            cause,
        });
    }
    let total = meter.usage();
    d.trace.phases.push(PhaseTrace {
        phase: "portfolio".into(),
        micros: race_micros,
        steps: total.steps,
        tuples: total.tuples,
    });
    if let Some((strategy, answer)) = winner {
        return d.report(answer, Some(strategy));
    }

    // 3. Sound-refutation fallbacks, sequential, under the race-token
    // budget (the race found no winner, so the token is untripped unless
    // the caller cancelled).
    consistency_fallbacks(d, instance, &a, &b, &race_budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{clique, cycle, path};
    use cspdb_core::trace::Recorder;
    use cspdb_core::Relation;
    use std::sync::Arc;

    fn solve(a: &Structure, b: &Structure) -> SolveReport {
        Solver::new().solve(a, b).expect_decided()
    }

    #[test]
    fn dispatches_to_schaefer_for_boolean_templates() {
        // 2-coloring = CSP(K2): Boolean, xor-like template.
        let report = solve(&cycle(6), &clique(2));
        assert!(matches!(report.strategy, Strategy::Schaefer(_)));
        assert!(report.witness.is_some());
        let report = solve(&cycle(7), &clique(2));
        assert!(matches!(report.strategy, Strategy::Schaefer(_)));
        assert!(report.witness.is_none());
    }

    #[test]
    fn dispatches_to_yannakakis_for_acyclic() {
        // Star coloring with 3 colors: acyclic instance, non-Boolean.
        let mut p = CspInstance::new(4, 3);
        let neq = Arc::new(
            Relation::from_tuples(
                2,
                (0..3u32).flat_map(|i| (0..3u32).filter_map(move |j| (i != j).then_some([i, j]))),
            )
            .unwrap(),
        );
        for leaf in 1..4u32 {
            p.add_constraint([0, leaf], neq.clone()).unwrap();
        }
        let report = Solver::new().solve_csp(&p).expect_decided();
        assert_eq!(report.strategy, Strategy::Yannakakis);
        assert!(report.witness.is_some());
        assert!(p.is_solution(report.witness.as_ref().unwrap()));
    }

    #[test]
    fn dispatches_to_treewidth_for_cyclic_sparse() {
        // Odd cycle into K3: cyclic, treewidth 2, 3 values.
        let report = solve(&cycle(5), &clique(3));
        assert!(matches!(report.strategy, Strategy::Treewidth(w) if w <= 2));
        let h = report.witness.expect("3-colorable");
        assert!(cspdb_core::is_homomorphism(&h, &cycle(5), &clique(3)));
    }

    #[test]
    fn dispatches_to_backtracking_for_dense() {
        // K7 into K6: treewidth 6 > cutoff, not Boolean, cyclic.
        let report = solve(&clique(7), &clique(6));
        assert_eq!(report.strategy, Strategy::Backtracking);
        assert!(report.witness.is_none());
        let report = solve(&clique(7), &clique(7));
        assert_eq!(report.strategy, Strategy::Backtracking);
        assert!(report.witness.is_some());
    }

    #[test]
    fn all_strategies_agree_with_each_other() {
        let mut state = 0x1357924680ACE135u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 4 + (next() % 3) as usize;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if next() % 2 == 0 {
                        edges.push((u, v));
                    }
                }
            }
            let a = cspdb_core::graphs::undirected(n, &edges);
            for b in [clique(2), clique(3)] {
                let report = solve(&a, &b);
                let direct = cspdb_solver::find_homomorphism(&a, &b);
                assert_eq!(report.witness.is_some(), direct.is_some());
                if let Some(h) = report.witness {
                    assert!(cspdb_core::is_homomorphism(&h, &a, &b));
                }
            }
        }
    }

    #[test]
    fn witnesses_verify_for_path_instances() {
        let report = solve(&path(6), &clique(2));
        let h = report.witness.unwrap();
        assert!(cspdb_core::is_homomorphism(&h, &path(6), &clique(2)));
    }

    #[test]
    fn parallel_ladder_agrees_with_sequential() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let cases = [
            (cycle(5), clique(3), true),
            (cycle(5), clique(2), false),
            (clique(4), clique(3), false),
            (path(7), clique(2), true),
        ];
        for (a, b, expected) in cases {
            let seq = Solver::new().solve(&a, &b);
            let par = pool.install(|| Solver::new().parallel(true).solve(&a, &b));
            assert_eq!(seq.answer.is_sat(), expected, "sequential on {a}");
            assert_eq!(par.answer.is_sat(), expected, "parallel on {a}");
        }
    }

    #[test]
    fn direct_strategy_is_pure_backtracking() {
        let report = Solver::new()
            .strategy(SolveStrategy::Direct)
            .solve(&cycle(5), &clique(3));
        assert_eq!(report.strategy, Some(Strategy::Backtracking));
        assert!(report.answer.is_sat());
        assert_eq!(report.attempts.len(), 1);
        assert_eq!(report.trace.phases.len(), 1);
        assert_eq!(report.trace.phases[0].phase, "backtracking");
    }

    #[test]
    fn portfolio_agrees_with_sequential_ladder() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let cases = [
            (cycle(5), clique(3), true),   // treewidth territory
            (cycle(5), clique(4), true),   // treewidth territory, sat
            (clique(4), clique(3), false), // backtracking territory
            (clique(4), clique(4), true),  // backtracking territory, sat
            (cycle(6), clique(2), true),   // Schaefer inline
            (cycle(7), clique(2), false),  // Schaefer inline, unsat
        ];
        for (a, b, expected) in cases {
            let solver = Solver::new().strategy(SolveStrategy::Portfolio);
            let report = pool.install(|| solver.solve(&a, &b));
            assert!(
                report.strategy.is_some(),
                "unlimited portfolio must decide on {a}"
            );
            assert_eq!(report.answer.is_sat(), expected, "on {a} -> {b}");
            if let Some(w) = report.answer.witness() {
                assert!(cspdb_core::is_homomorphism(w, &a, &b));
            }
            // And agreement with the sequential governed ladder.
            let seq = Solver::new().solve(&a, &b);
            assert_eq!(report.answer.is_sat(), seq.answer.is_sat());
        }
    }

    #[test]
    fn portfolio_acyclic_instances_race_yannakakis() {
        // Non-Boolean star: Schaefer is inapplicable, so the race decides
        // — and the Yannakakis racer must at least appear in the trace.
        let mut p = CspInstance::new(4, 3);
        let neq = Arc::new(
            Relation::from_tuples(
                2,
                (0..3u32).flat_map(|i| (0..3u32).filter_map(move |j| (i != j).then_some([i, j]))),
            )
            .unwrap(),
        );
        for leaf in 1..4u32 {
            p.add_constraint([0, leaf], neq.clone()).unwrap();
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let solver = Solver::new().strategy(SolveStrategy::Portfolio);
        let report = pool.install(|| solver.solve_csp(&p));
        assert!(report.answer.is_sat());
        assert!(p.is_solution(report.answer.witness().unwrap()));
        assert!(report
            .attempts
            .iter()
            .any(|t| t.strategy == Strategy::Yannakakis));
    }

    #[test]
    fn portfolio_exhausts_to_unknown_soundly() {
        // A 1-step budget cannot decide K4 -> K3 (not Boolean, cyclic,
        // planning alone costs more): every racer exhausts, fallbacks
        // exhaust or stay inconclusive, answer is Unknown — never wrong.
        let report = Solver::new()
            .budget(Budget::new().with_step_limit(1))
            .strategy(SolveStrategy::Portfolio)
            .solve(&clique(4), &clique(3));
        assert!(report.answer.is_unknown());
        assert!(report.strategy.is_none());
    }

    #[test]
    fn portfolio_respects_caller_cancellation() {
        let token = cspdb_core::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token.clone());
        // K7 -> K6 is big enough that every racer crosses an amortised
        // checkpoint, so the pre-cancelled token must yield Unknown.
        let report = Solver::new()
            .budget(budget)
            .strategy(SolveStrategy::Portfolio)
            .solve(&clique(7), &clique(6));
        assert!(report.answer.is_unknown());
        // The race's internal cancellation must never fire the caller's
        // token; here it was already cancelled by the caller, and the
        // token object is unchanged (still just "cancelled").
        assert!(token.is_cancelled());
        // Conversely a fresh caller token stays untripped after a
        // portfolio run in which a winner cancelled the race internally.
        let token = cspdb_core::CancelToken::new();
        let budget = Budget::unlimited().with_cancel(token.clone());
        let report = Solver::new()
            .budget(budget)
            .strategy(SolveStrategy::Portfolio)
            .solve(&cycle(5), &clique(3));
        assert!(report.answer.is_sat());
        assert!(
            !token.is_cancelled(),
            "race cancellation leaked to the caller token"
        );
    }

    #[test]
    fn trace_summary_records_every_ladder_phase() {
        // K4 -> K3: Schaefer inapplicable (3 values), not acyclic,
        // treewidth 3 <= cutoff decides.
        let report = Solver::new().solve(&clique(4), &clique(3));
        assert!(report.answer.is_unsat());
        let phases: Vec<&str> = report
            .trace
            .phases
            .iter()
            .map(|p| p.phase.as_str())
            .collect();
        assert_eq!(report.trace.phases.len(), report.attempts.len());
        assert!(phases[0].starts_with("yannakakis"), "got {phases:?}");
        assert!(phases[1].starts_with("treewidth"), "got {phases:?}");
        // The deciding treewidth phase consumed meter resources.
        assert!(report.trace.phases[1].steps > 0);
    }

    #[test]
    fn recorder_sees_tier_events_in_order() {
        let rec = Arc::new(Recorder::new());
        let report = Solver::new()
            .trace(rec.clone())
            .solve(&cycle(5), &clique(3));
        assert!(report.answer.is_sat());
        let events = rec.events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).collect();
        // Tier events frame the run; the deciding treewidth tier also
        // emits decomposition and DP-table events in between.
        assert!(kinds.contains(&"tier_start"));
        assert!(kinds.contains(&"tier_end"));
        assert!(kinds.contains(&"decomposition"));
        assert!(kinds.contains(&"dp_table"));
        // TierStart always precedes its TierEnd.
        let first_start = kinds.iter().position(|k| *k == "tier_start").unwrap();
        let first_end = kinds.iter().position(|k| *k == "tier_end").unwrap();
        assert!(first_start < first_end);
    }

    #[test]
    fn report_conversions_unify_outcomes() {
        let solve_report = solve(&cycle(6), &clique(2));
        assert!(solve_report.outcome().is_sat());
        let governed: GovernedReport = solve_report.into();
        assert!(governed.outcome().is_sat());
        assert_eq!(governed.attempts.len(), 1);

        let run = cspdb_solver::solve_csp_budgeted(
            &CspInstance::from_homomorphism(&cycle(5), &clique(3)).unwrap(),
            &Budget::unlimited(),
        );
        assert!(run.outcome().is_sat());
        let governed: GovernedReport = run.into();
        assert!(governed.outcome().is_sat());
        assert_eq!(governed.strategy, Some(Strategy::Backtracking));
        assert_eq!(governed.trace.phases.len(), 1);

        let exhausted = cspdb_solver::solve_csp_budgeted(
            &CspInstance::from_homomorphism(&clique(5), &clique(4)).unwrap(),
            &Budget::new().with_step_limit(1),
        );
        let governed: GovernedReport = exhausted.into();
        assert!(governed.outcome().is_unknown());
        assert_eq!(governed.strategy, None);
    }

    #[test]
    fn builder_is_order_insensitive_for_trace_and_budget() {
        let rec1 = Arc::new(Recorder::new());
        let rec2 = Arc::new(Recorder::new());
        let r1 = Solver::new()
            .trace(rec1.clone())
            .budget(Budget::unlimited())
            .solve(&cycle(5), &clique(3));
        let r2 = Solver::new()
            .budget(Budget::unlimited())
            .trace(rec2.clone())
            .solve(&cycle(5), &clique(3));
        assert_eq!(r1.answer.is_sat(), r2.answer.is_sat());
        assert_eq!(rec1.events().len(), rec2.events().len());
        assert!(!rec1.events().is_empty());
    }
}
