//! # cspdb
//!
//! The facade crate of *constraint-db* — a Rust reproduction of
//! Moshe Y. Vardi, *"Constraint Satisfaction and Database Theory: a
//! Tutorial"* (PODS 2000).
//!
//! The tutorial's thesis is that constraint satisfaction and database
//! theory are two views of the homomorphism problem. This crate
//! re-exports every subsystem and adds [`Solver`]: one builder over
//! every solving mode, dispatching on the paper's tractability map —
//!
//! 1. Boolean template in a Schaefer class → the dedicated polynomial
//!    solver (Section 3);
//! 2. α-acyclic constraint hypergraph → Yannakakis (Section 6's acyclic
//!    join lineage);
//! 3. small Gaifman treewidth → dynamic programming over a tree
//!    decomposition (Theorem 6.2);
//! 4. otherwise → MAC backtracking (the honest NP baseline), with
//!    arc-/k-consistency refutation (Sections 4–5) as sound fallbacks.
//!
//! ```
//! use cspdb::Solver;
//! use cspdb::core::graphs::{clique, cycle};
//!
//! let report = Solver::new().solve(&cycle(6), &clique(2));
//! assert!(report.answer.is_sat()); // even cycles are 2-colorable
//! let report = Solver::new().solve(&cycle(7), &clique(2));
//! assert!(report.answer.is_unsat());
//! ```
//!
//! Budgets ([`core::budget::Budget`]), parallel tier execution, the
//! portfolio race, and trace sinks ([`core::trace::TraceSink`]) all hang
//! off the same builder; see [`Solver`] and [`ExplainReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Pebble games and consistency (Sections 4–5).
pub use cspdb_consistency as consistency;
/// Core data model (Section 2).
pub use cspdb_core as core;
/// Conjunctive queries, containment, cores (Props 2.2/2.3, 6.1).
pub use cspdb_cq as cq;
/// Datalog engine and canonical programs (Section 4).
pub use cspdb_datalog as datalog;
/// Treewidth and hypertree decompositions (Section 6).
pub use cspdb_decomp as decomp;
/// Relational algebra and join-based solving (Prop 2.1, Yannakakis).
pub use cspdb_relalg as relalg;
/// Regular path queries and view-based answering (Section 7).
pub use cspdb_rpq as rpq;
/// Schaefer's dichotomy (Section 3).
pub use cspdb_schaefer as schaefer;
/// Backtracking search.
pub use cspdb_solver as solver;

mod explain;
mod facade;

pub use explain::{render_join_plan, ExplainReport};
pub use facade::{
    GovernedReport, PhaseTrace, SolveOutcome, SolveReport, SolveStrategy, Solver, Strategy,
    TierAttempt, TierOutcome, TraceSummary,
};

use cspdb_core::budget::Budget;
use cspdb_core::{CspInstance, Structure};

/// Dispatches on the paper's tractability map and solves `A -> B` with
/// the best algorithm the theory licenses, unbudgeted.
#[deprecated(since = "0.4.0", note = "use `Solver::new().solve(a, b)`")]
pub fn auto_solve(a: &Structure, b: &Structure) -> SolveReport {
    Solver::new().solve(a, b).expect_decided()
}

/// [`auto_solve`] for a classical CSP instance, unbudgeted.
#[deprecated(since = "0.4.0", note = "use `Solver::new().solve_csp(instance)`")]
pub fn auto_solve_csp(instance: &CspInstance) -> SolveReport {
    Solver::new().solve_csp(instance).expect_decided()
}

/// Resource-governed dispatch for the homomorphism problem `A -> B`:
/// the sequential degradation ladder under budget slices.
#[deprecated(
    since = "0.4.0",
    note = "use `Solver::new().budget(budget).solve(a, b)`"
)]
pub fn auto_solve_governed(a: &Structure, b: &Structure, budget: &Budget) -> GovernedReport {
    Solver::new().budget(budget.clone()).solve(a, b)
}

/// [`auto_solve_governed`] for a classical CSP instance.
#[deprecated(
    since = "0.4.0",
    note = "use `Solver::new().budget(budget).solve_csp(instance)`"
)]
pub fn auto_solve_governed_csp(instance: &CspInstance, budget: &Budget) -> GovernedReport {
    Solver::new().budget(budget.clone()).solve_csp(instance)
}

/// Portfolio dispatch for the homomorphism problem `A -> B`: the
/// applicable strategies race in parallel under one shared meter.
#[deprecated(
    since = "0.4.0",
    note = "use `Solver::new().budget(budget).strategy(SolveStrategy::Portfolio).solve(a, b)`"
)]
pub fn auto_solve_portfolio(a: &Structure, b: &Structure, budget: &Budget) -> GovernedReport {
    Solver::new()
        .budget(budget.clone())
        .strategy(SolveStrategy::Portfolio)
        .solve(a, b)
}

/// [`auto_solve_portfolio`] for a classical CSP instance.
#[deprecated(
    since = "0.4.0",
    note = "use `Solver::new().budget(budget).strategy(SolveStrategy::Portfolio).solve_csp(instance)`"
)]
pub fn auto_solve_portfolio_csp(instance: &CspInstance, budget: &Budget) -> GovernedReport {
    Solver::new()
        .budget(budget.clone())
        .strategy(SolveStrategy::Portfolio)
        .solve_csp(instance)
}

#[cfg(test)]
mod deprecated_surface_tests {
    //! The legacy entry points must keep compiling and agreeing with the
    //! facade until they are removed.
    #![allow(deprecated)]

    use super::*;
    use cspdb_core::graphs::{clique, cycle};

    #[test]
    fn legacy_entry_points_still_answer_correctly() {
        assert!(auto_solve(&cycle(6), &clique(2)).witness.is_some());
        assert!(auto_solve(&cycle(7), &clique(2)).witness.is_none());
        let governed = auto_solve_governed(&cycle(5), &clique(3), &Budget::unlimited());
        assert!(governed.answer.is_sat());
        let portfolio = auto_solve_portfolio(&cycle(5), &clique(3), &Budget::unlimited());
        assert!(portfolio.answer.is_sat());
        let instance = CspInstance::from_homomorphism(&cycle(5), &clique(3)).unwrap();
        assert!(auto_solve_csp(&instance).witness.is_some());
        assert!(auto_solve_governed_csp(&instance, &Budget::unlimited())
            .answer
            .is_sat());
        assert!(auto_solve_portfolio_csp(&instance, &Budget::unlimited())
            .answer
            .is_sat());
    }

    /// The deprecated shims are one-line delegations to the [`Solver`]
    /// facade with default settings; their reports must stay *identical*
    /// to the facade's over randomized instances, not just on the few
    /// fixed graphs above.
    #[test]
    fn legacy_shims_match_facade_defaults_on_random_instances() {
        use cspdb_core::graphs::undirected;

        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..12 {
            let n = 4 + (next() % 5) as usize;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if next() % 3 != 0 {
                        edges.push((u, v));
                    }
                }
            }
            let a = undirected(n, &edges);
            let k = 2 + (next() % 3) as usize;
            let b = clique(k);

            let facade = Solver::new().solve(&a, &b).expect_decided();
            let legacy = auto_solve(&a, &b);
            assert_eq!(
                legacy.strategy, facade.strategy,
                "round {round}: strategy diverged (n={n}, k={k})"
            );
            assert_eq!(
                legacy.witness.is_some(),
                facade.witness.is_some(),
                "round {round}: answer diverged (n={n}, k={k})"
            );

            let governed_facade = Solver::new().solve(&a, &b);
            let governed_legacy = auto_solve_governed(&a, &b, &Budget::unlimited());
            assert_eq!(
                governed_legacy.answer.is_sat(),
                governed_facade.answer.is_sat(),
                "round {round}: governed answer diverged (n={n}, k={k})"
            );
            assert_eq!(
                governed_legacy.strategy, governed_facade.strategy,
                "round {round}: governed strategy diverged (n={n}, k={k})"
            );

            if let Ok(instance) = CspInstance::from_homomorphism(&a, &b) {
                let csp_facade = Solver::new().solve_csp(&instance).expect_decided();
                let csp_legacy = auto_solve_csp(&instance);
                assert_eq!(
                    csp_legacy.witness.is_some(),
                    csp_facade.witness.is_some(),
                    "round {round}: csp answer diverged (n={n}, k={k})"
                );
            }
        }
    }
}
