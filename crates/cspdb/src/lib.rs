//! # cspdb
//!
//! The facade crate of *constraint-db* — a Rust reproduction of
//! Moshe Y. Vardi, *"Constraint Satisfaction and Database Theory: a
//! Tutorial"* (PODS 2000).
//!
//! The tutorial's thesis is that constraint satisfaction and database
//! theory are two views of the homomorphism problem. This crate
//! re-exports every subsystem and adds [`auto_solve`]: a dispatcher that
//! inspects an instance and picks the best algorithm the paper's theory
//! licenses —
//!
//! 1. Boolean template in a Schaefer class → the dedicated polynomial
//!    solver (Section 3);
//! 2. α-acyclic constraint hypergraph → Yannakakis (Section 6's acyclic
//!    join lineage);
//! 3. small Gaifman treewidth → dynamic programming over a tree
//!    decomposition (Theorem 6.2);
//! 4. otherwise → MAC backtracking (the honest NP baseline), with
//!    k-consistency refutation (Sections 4–5) as a cheap pre-check.
//!
//! ```
//! use cspdb::auto_solve;
//! use cspdb::core::graphs::{clique, cycle};
//!
//! let report = auto_solve(&cycle(6), &clique(2));
//! assert!(report.witness.is_some()); // even cycles are 2-colorable
//! let report = auto_solve(&cycle(7), &clique(2));
//! assert!(report.witness.is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Pebble games and consistency (Sections 4–5).
pub use cspdb_consistency as consistency;
/// Core data model (Section 2).
pub use cspdb_core as core;
/// Conjunctive queries, containment, cores (Props 2.2/2.3, 6.1).
pub use cspdb_cq as cq;
/// Datalog engine and canonical programs (Section 4).
pub use cspdb_datalog as datalog;
/// Treewidth and hypertree decompositions (Section 6).
pub use cspdb_decomp as decomp;
/// Relational algebra and join-based solving (Prop 2.1, Yannakakis).
pub use cspdb_relalg as relalg;
/// Regular path queries and view-based answering (Section 7).
pub use cspdb_rpq as rpq;
/// Schaefer's dichotomy (Section 3).
pub use cspdb_schaefer as schaefer;
/// Backtracking search.
pub use cspdb_solver as solver;

use cspdb_core::budget::{Answer, Budget, CancelToken, ExhaustionReason};
use cspdb_core::{CspInstance, Structure};
use rayon::prelude::*;

/// Which strategy [`auto_solve`] ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Schaefer-class polynomial solver (which one is in the payload).
    Schaefer(cspdb_schaefer::SolverUsed),
    /// Yannakakis on an acyclic instance.
    Yannakakis,
    /// Dynamic programming over a tree decomposition of the given width.
    Treewidth(usize),
    /// Generic MAC backtracking.
    Backtracking,
    /// Arc-consistency fallback (sound refutations only).
    ArcConsistency,
    /// Strong k-consistency fallback (sound refutations only).
    KConsistency(usize),
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Schaefer(used) => write!(f, "schaefer({used:?})"),
            Strategy::Yannakakis => write!(f, "yannakakis"),
            Strategy::Treewidth(w) => write!(f, "treewidth({w})"),
            Strategy::Backtracking => write!(f, "backtracking"),
            Strategy::ArcConsistency => write!(f, "arc-consistency"),
            Strategy::KConsistency(k) => write!(f, "{k}-consistency"),
        }
    }
}

/// The result of [`auto_solve`].
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// The strategy that produced the answer.
    pub strategy: Strategy,
    /// A homomorphism `A -> B`, if one exists.
    pub witness: Option<Vec<u32>>,
}

/// How one tier of the [`auto_solve_governed`] ladder ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierOutcome {
    /// The tier produced the final answer.
    Decided,
    /// The tier was skipped, with the reason (inapplicable / too big).
    Skipped(&'static str),
    /// The tier's budget slice ran out before it could decide.
    Exhausted(ExhaustionReason),
    /// The tier completed but could not decide (e.g. consistency held).
    Inconclusive,
}

/// One rung of the degradation ladder: which strategy was tried and how
/// it ended. The full trace explains an `Unknown` answer.
#[derive(Debug, Clone)]
pub struct TierAttempt {
    /// The strategy attempted.
    pub strategy: Strategy,
    /// How the attempt ended.
    pub outcome: TierOutcome,
}

/// The result of [`auto_solve_governed`]: a three-valued answer plus the
/// ladder trace that produced it.
///
/// Soundness contract: `Sat`/`Unsat` always agree with the unbudgeted
/// ground truth; exhaustion only ever widens the answer to `Unknown`.
#[derive(Debug, Clone)]
pub struct GovernedReport {
    /// `Sat` with witness, `Unsat`, or `Unknown(reason)`.
    pub answer: Answer,
    /// The strategy that decided, `None` when the answer is `Unknown`.
    pub strategy: Option<Strategy>,
    /// Every tier attempted, in ladder order.
    pub attempts: Vec<TierAttempt>,
}

/// Maximum heuristic treewidth for which the DP route is attempted.
const TREEWIDTH_CUTOFF: usize = 4;

/// Pebble count for the k-consistency fallback tier.
const FALLBACK_K: usize = 3;

/// Largest `W^k` table the k-consistency fallback will build when the
/// budget carries no tuple cap of its own.
const FALLBACK_WK_CAP: u64 = 1_000_000;

/// Solves the homomorphism problem `A -> B`, dispatching on instance
/// structure per the paper's tractability map (see crate docs).
///
/// # Panics
///
/// Panics if the structures have different vocabularies.
pub fn auto_solve(a: &Structure, b: &Structure) -> SolveReport {
    assert_eq!(a.vocabulary(), b.vocabulary(), "vocabulary mismatch");
    let instance = CspInstance::from_homomorphism(a, b).expect("same vocabulary");
    auto_solve_csp(&instance)
}

/// [`auto_solve`] for classical CSP instances.
pub fn auto_solve_csp(instance: &CspInstance) -> SolveReport {
    let report = auto_solve_governed_csp(instance, &Budget::unlimited());
    let strategy = report.strategy.expect("unlimited budget always decides");
    SolveReport {
        strategy,
        witness: report.answer.witness().map(<[u32]>::to_vec),
    }
}

/// [`auto_solve`] under a [`Budget`]: the homomorphism-problem entry
/// point of the governed ladder. See [`auto_solve_governed_csp`].
///
/// # Panics
///
/// Panics if the structures have different vocabularies.
pub fn auto_solve_governed(a: &Structure, b: &Structure, budget: &Budget) -> GovernedReport {
    assert_eq!(a.vocabulary(), b.vocabulary(), "vocabulary mismatch");
    let instance = CspInstance::from_homomorphism(a, b).expect("same vocabulary");
    auto_solve_governed_csp(&instance, budget)
}

/// Resource-governed dispatch: walks the paper's tractability ladder
/// under a [`Budget`], degrading gracefully instead of hanging.
///
/// 1. Boolean template in a Schaefer class → the dedicated polynomial
///    solver (Section 3);
/// 2. α-acyclic constraint hypergraph → Yannakakis under a budget slice;
/// 3. small heuristic Gaifman treewidth → decomposition DP under a
///    budget slice (the planning pass is budgeted too — min-fill alone
///    can dwarf a millisecond deadline on large instances);
/// 4. MAC backtracking under a budget slice;
/// 5. approximation fallback: budgeted arc-consistency, then strong
///    k-consistency, which can soundly answer `Unsat` (a wipeout /
///    Spoiler win refutes, Sections 4–5) but never `Sat`.
///
/// Every decided answer agrees with the unbudgeted ground truth; if all
/// tiers exhaust, the answer is `Unknown` carrying the last tier's
/// exhaustion reason and the trace of every attempt.
pub fn auto_solve_governed_csp(instance: &CspInstance, budget: &Budget) -> GovernedReport {
    let mut attempts: Vec<TierAttempt> = Vec::new();
    let mut last_exhaustion: Option<ExhaustionReason> = None;
    let exhaust = |attempts: &mut Vec<TierAttempt>,
                   last: &mut Option<ExhaustionReason>,
                   strategy: Strategy,
                   reason: ExhaustionReason| {
        attempts.push(TierAttempt {
            strategy,
            outcome: TierOutcome::Exhausted(reason),
        });
        *last = Some(reason);
    };
    let decided = |answer: Answer, strategy: Strategy, mut attempts: Vec<TierAttempt>| {
        attempts.push(TierAttempt {
            strategy,
            outcome: TierOutcome::Decided,
        });
        GovernedReport {
            answer,
            strategy: Some(strategy),
            attempts,
        }
    };

    // 1. Boolean templates: Schaefer's dichotomy. The class test and the
    // dedicated solvers are low-order polynomial, so they run without a
    // slice of their own; a cancellation check guards re-entry. The
    // polynomial-only entry point never falls back to generic search —
    // NP-side templates return `None` and fall through to the
    // structural strategies, which run under budget slices.
    if instance.num_values() == 2 && budget.meter().checkpoint().is_ok() {
        if let Some((used, witness)) = cspdb_schaefer::solve_boolean_polynomial(instance) {
            let strategy = Strategy::Schaefer(used);
            let answer = match witness {
                Some(w) => Answer::Sat(w),
                None => Answer::Unsat,
            };
            return decided(answer, strategy, attempts);
        }
    }

    // 2. Acyclic hypergraph: Yannakakis under a quarter slice.
    if cspdb_relalg::is_acyclic_instance(instance) {
        match cspdb_relalg::solve_acyclic_budgeted(instance, &budget.slice(1, 4)) {
            Ok(witness) => {
                let answer = match witness {
                    Some(w) => Answer::Sat(w),
                    None => Answer::Unsat,
                };
                return decided(answer, Strategy::Yannakakis, attempts);
            }
            Err(cspdb_relalg::AcyclicSolveError::Exhausted(r)) => {
                exhaust(&mut attempts, &mut last_exhaustion, Strategy::Yannakakis, r);
            }
            Err(cspdb_relalg::AcyclicSolveError::NotAcyclic) => {
                unreachable!("checked acyclic")
            }
        }
    } else {
        attempts.push(TierAttempt {
            strategy: Strategy::Yannakakis,
            outcome: TierOutcome::Skipped("hypergraph is not α-acyclic"),
        });
    }

    // 3. Bounded treewidth: budgeted planning, then budgeted DP, under a
    // quarter slice together.
    let tw_slice = budget.slice(1, 4);
    let (a, b) = instance.to_homomorphism();
    let g = cspdb_decomp::Graph::gaifman(&a);
    match cspdb_decomp::min_fill_order_budgeted(&g, &tw_slice) {
        Err(r) => {
            // Planning alone blew the slice: record under the treewidth
            // strategy with the width unknown (0 placeholder avoided by
            // using the cutoff).
            exhaust(
                &mut attempts,
                &mut last_exhaustion,
                Strategy::Treewidth(TREEWIDTH_CUTOFF),
                r,
            );
        }
        Ok(order) => {
            let width = cspdb_decomp::order_width(&g, &order);
            if width <= TREEWIDTH_CUTOFF {
                let td = cspdb_decomp::from_elimination_order(&g, &order);
                match cspdb_decomp::solve_with_decomposition_budgeted(&a, &b, &td, &tw_slice) {
                    Ok(witness) => {
                        let answer = match witness {
                            Some(w) => Answer::Sat(w),
                            None => Answer::Unsat,
                        };
                        return decided(answer, Strategy::Treewidth(width), attempts);
                    }
                    Err(cspdb_decomp::DecompSolveError::Exhausted(r)) => {
                        exhaust(
                            &mut attempts,
                            &mut last_exhaustion,
                            Strategy::Treewidth(width),
                            r,
                        );
                    }
                    Err(cspdb_decomp::DecompSolveError::Invalid(msg)) => {
                        unreachable!("constructed decomposition is valid: {msg}")
                    }
                }
            } else {
                attempts.push(TierAttempt {
                    strategy: Strategy::Treewidth(width),
                    outcome: TierOutcome::Skipped("heuristic treewidth above cutoff"),
                });
            }
        }
    }

    // 4. Generic MAC backtracking under a quarter slice (complete given
    // enough budget: with no limits this tier always decides).
    let run = cspdb_solver::solve_csp_budgeted(instance, &budget.slice(1, 4));
    match run.answer {
        Answer::Sat(w) => return decided(Answer::Sat(w), Strategy::Backtracking, attempts),
        Answer::Unsat => return decided(Answer::Unsat, Strategy::Backtracking, attempts),
        Answer::Unknown(r) => {
            exhaust(
                &mut attempts,
                &mut last_exhaustion,
                Strategy::Backtracking,
                r,
            );
        }
    }

    // 5a. Arc-consistency approximation: a wipeout soundly refutes.
    match cspdb_consistency::ac3_budgeted(instance, &budget.slice(1, 8)) {
        Ok(None) => return decided(Answer::Unsat, Strategy::ArcConsistency, attempts),
        Ok(Some(_)) => attempts.push(TierAttempt {
            strategy: Strategy::ArcConsistency,
            outcome: TierOutcome::Inconclusive,
        }),
        Err(r) => {
            exhaust(
                &mut attempts,
                &mut last_exhaustion,
                Strategy::ArcConsistency,
                r,
            );
        }
    }

    // 5b. Strong k-consistency approximation: a Spoiler win in the
    // existential k-pebble game soundly refutes. Gated by an
    // overflow-safe table estimate so an uncapped budget cannot be
    // tricked into building a gigantic W^k table.
    let wk_ok = cspdb_consistency::wk_table_bound(a.domain_size(), b.domain_size(), FALLBACK_K)
        .map(|bound| bound <= FALLBACK_WK_CAP)
        .unwrap_or(false);
    if wk_ok {
        match cspdb_consistency::k_consistency_refutes_budgeted(
            &a,
            &b,
            FALLBACK_K,
            &budget.slice(1, 8),
        ) {
            Ok(Some(false)) => {
                return decided(Answer::Unsat, Strategy::KConsistency(FALLBACK_K), attempts)
            }
            Ok(_) => attempts.push(TierAttempt {
                strategy: Strategy::KConsistency(FALLBACK_K),
                outcome: TierOutcome::Inconclusive,
            }),
            Err(r) => {
                exhaust(
                    &mut attempts,
                    &mut last_exhaustion,
                    Strategy::KConsistency(FALLBACK_K),
                    r,
                );
            }
        }
    } else {
        attempts.push(TierAttempt {
            strategy: Strategy::KConsistency(FALLBACK_K),
            outcome: TierOutcome::Skipped("W^k table estimate above cap"),
        });
    }

    GovernedReport {
        answer: Answer::Unknown(
            last_exhaustion.expect("some tier exhausted, else a complete tier decided"),
        ),
        strategy: None,
        attempts,
    }
}

/// How one racer in [`auto_solve_portfolio_csp`] ended.
enum RaceResult {
    Decided(Answer),
    Skipped(&'static str),
    Exhausted(ExhaustionReason),
}

/// [`auto_solve_governed`] in portfolio mode: see
/// [`auto_solve_portfolio_csp`].
///
/// # Panics
///
/// Panics if the structures have different vocabularies.
pub fn auto_solve_portfolio(a: &Structure, b: &Structure, budget: &Budget) -> GovernedReport {
    assert_eq!(a.vocabulary(), b.vocabulary(), "vocabulary mismatch");
    let instance = CspInstance::from_homomorphism(a, b).expect("same vocabulary");
    auto_solve_portfolio_csp(&instance, budget)
}

/// Portfolio dispatch: instead of walking the ladder tier by tier with
/// budget *slices* (as [`auto_solve_governed_csp`] does), the applicable
/// structural strategies — Yannakakis on acyclic instances, the
/// treewidth DP when planning stays under the cutoff, and MAC
/// backtracking — **race on [`rayon`] workers under one thread-shared
/// [`cspdb_core::budget::SharedMeter`]**. The budget's step, tuple, and
/// deadline limits bound the racers' *total* work, and the first racer
/// to produce a sound answer cancels the rest through a
/// [`CancelToken`] child of the caller's token (so cancelling the caller
/// still stops everything, while the race's own cancellation never
/// escapes to the caller).
///
/// Schaefer's polynomial solvers still run inline first (they are
/// low-order polynomial and complete), and the sound-refutation-only
/// consistency fallbacks run after the race only if no racer decided.
/// Soundness is unchanged: every decided answer agrees with the
/// unbudgeted ground truth.
pub fn auto_solve_portfolio_csp(instance: &CspInstance, budget: &Budget) -> GovernedReport {
    let mut attempts: Vec<TierAttempt> = Vec::new();

    // 1. Schaefer inline — same as the sequential ladder.
    if instance.num_values() == 2 && budget.meter().checkpoint().is_ok() {
        if let Some((used, witness)) = cspdb_schaefer::solve_boolean_polynomial(instance) {
            let strategy = Strategy::Schaefer(used);
            attempts.push(TierAttempt {
                strategy,
                outcome: TierOutcome::Decided,
            });
            let answer = match witness {
                Some(w) => Answer::Sat(w),
                None => Answer::Unsat,
            };
            return GovernedReport {
                answer,
                strategy: Some(strategy),
                attempts,
            };
        }
    }

    // 2. Race the structural strategies under one shared meter. The race
    // token is a *child* of the caller's token: caller cancellation
    // propagates in, the winner's `race.cancel()` does not leak out.
    let race = match &budget.cancel {
        Some(caller) => caller.child(),
        None => CancelToken::new(),
    };
    let race_budget = budget.clone().with_cancel(race.clone());
    let meter = race_budget.shared_meter();
    let acyclic = cspdb_relalg::is_acyclic_instance(instance);
    let (a, b) = instance.to_homomorphism();

    type Racer<'r> = Box<dyn FnOnce() -> (Strategy, RaceResult) + Send + 'r>;
    let answer_of = |witness: Option<Vec<u32>>| match witness {
        Some(w) => Answer::Sat(w),
        None => Answer::Unsat,
    };
    let racers: Vec<Racer> = vec![
        Box::new(|| {
            if !acyclic {
                return (
                    Strategy::Yannakakis,
                    RaceResult::Skipped("hypergraph is not α-acyclic"),
                );
            }
            match cspdb_relalg::solve_acyclic_shared(instance, &meter) {
                Ok(witness) => {
                    race.cancel();
                    (
                        Strategy::Yannakakis,
                        RaceResult::Decided(answer_of(witness)),
                    )
                }
                Err(cspdb_relalg::AcyclicSolveError::Exhausted(r)) => {
                    (Strategy::Yannakakis, RaceResult::Exhausted(r))
                }
                Err(cspdb_relalg::AcyclicSolveError::NotAcyclic) => {
                    unreachable!("checked acyclic")
                }
            }
        }),
        Box::new(|| {
            let g = cspdb_decomp::Graph::gaifman(&a);
            match cspdb_decomp::min_fill_order_shared(&g, &meter) {
                Err(r) => (
                    Strategy::Treewidth(TREEWIDTH_CUTOFF),
                    RaceResult::Exhausted(r),
                ),
                Ok(order) => {
                    let width = cspdb_decomp::order_width(&g, &order);
                    if width > TREEWIDTH_CUTOFF {
                        return (
                            Strategy::Treewidth(width),
                            RaceResult::Skipped("heuristic treewidth above cutoff"),
                        );
                    }
                    let td = cspdb_decomp::from_elimination_order(&g, &order);
                    match cspdb_decomp::solve_with_decomposition_shared(&a, &b, &td, &meter) {
                        Ok(witness) => {
                            race.cancel();
                            (
                                Strategy::Treewidth(width),
                                RaceResult::Decided(answer_of(witness)),
                            )
                        }
                        Err(cspdb_decomp::DecompSolveError::Exhausted(r)) => {
                            (Strategy::Treewidth(width), RaceResult::Exhausted(r))
                        }
                        Err(cspdb_decomp::DecompSolveError::Invalid(msg)) => {
                            unreachable!("constructed decomposition is valid: {msg}")
                        }
                    }
                }
            }
        }),
        Box::new(|| {
            let run = cspdb_solver::solve_csp_shared(instance, &meter);
            match run.answer {
                Answer::Unknown(r) => (Strategy::Backtracking, RaceResult::Exhausted(r)),
                sound => {
                    race.cancel();
                    (Strategy::Backtracking, RaceResult::Decided(sound))
                }
            }
        }),
    ];
    let results: Vec<(Strategy, RaceResult)> = racers.into_par_iter().map(|tier| tier()).collect();

    let mut winner: Option<(Strategy, Answer)> = None;
    let mut last_exhaustion: Option<ExhaustionReason> = None;
    for (strategy, result) in results {
        let outcome = match result {
            RaceResult::Decided(answer) => {
                if winner.is_none() {
                    winner = Some((strategy, answer));
                }
                TierOutcome::Decided
            }
            RaceResult::Skipped(why) => TierOutcome::Skipped(why),
            RaceResult::Exhausted(r) => {
                last_exhaustion = Some(r);
                TierOutcome::Exhausted(r)
            }
        };
        attempts.push(TierAttempt { strategy, outcome });
    }
    if let Some((strategy, answer)) = winner {
        return GovernedReport {
            answer,
            strategy: Some(strategy),
            attempts,
        };
    }

    // 3. Sound-refutation fallbacks, sequential, under the race-token
    // budget (the race found no winner, so the token is untripped unless
    // the caller cancelled).
    match cspdb_consistency::ac3_budgeted(instance, &race_budget.slice(1, 8)) {
        Ok(None) => {
            attempts.push(TierAttempt {
                strategy: Strategy::ArcConsistency,
                outcome: TierOutcome::Decided,
            });
            return GovernedReport {
                answer: Answer::Unsat,
                strategy: Some(Strategy::ArcConsistency),
                attempts,
            };
        }
        Ok(Some(_)) => attempts.push(TierAttempt {
            strategy: Strategy::ArcConsistency,
            outcome: TierOutcome::Inconclusive,
        }),
        Err(r) => {
            last_exhaustion = Some(r);
            attempts.push(TierAttempt {
                strategy: Strategy::ArcConsistency,
                outcome: TierOutcome::Exhausted(r),
            });
        }
    }
    let wk_ok = cspdb_consistency::wk_table_bound(a.domain_size(), b.domain_size(), FALLBACK_K)
        .map(|bound| bound <= FALLBACK_WK_CAP)
        .unwrap_or(false);
    if wk_ok {
        match cspdb_consistency::k_consistency_refutes_budgeted(
            &a,
            &b,
            FALLBACK_K,
            &race_budget.slice(1, 8),
        ) {
            Ok(Some(false)) => {
                attempts.push(TierAttempt {
                    strategy: Strategy::KConsistency(FALLBACK_K),
                    outcome: TierOutcome::Decided,
                });
                return GovernedReport {
                    answer: Answer::Unsat,
                    strategy: Some(Strategy::KConsistency(FALLBACK_K)),
                    attempts,
                };
            }
            Ok(_) => attempts.push(TierAttempt {
                strategy: Strategy::KConsistency(FALLBACK_K),
                outcome: TierOutcome::Inconclusive,
            }),
            Err(r) => {
                last_exhaustion = Some(r);
                attempts.push(TierAttempt {
                    strategy: Strategy::KConsistency(FALLBACK_K),
                    outcome: TierOutcome::Exhausted(r),
                });
            }
        }
    } else {
        attempts.push(TierAttempt {
            strategy: Strategy::KConsistency(FALLBACK_K),
            outcome: TierOutcome::Skipped("W^k table estimate above cap"),
        });
    }

    GovernedReport {
        answer: Answer::Unknown(
            last_exhaustion.expect("backtracking racer either decides or exhausts"),
        ),
        strategy: None,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{clique, cycle, path};
    use cspdb_core::Relation;
    use std::sync::Arc;

    #[test]
    fn dispatches_to_schaefer_for_boolean_templates() {
        // 2-coloring = CSP(K2): Boolean, xor-like template.
        let report = auto_solve(&cycle(6), &clique(2));
        assert!(matches!(report.strategy, Strategy::Schaefer(_)));
        assert!(report.witness.is_some());
        let report = auto_solve(&cycle(7), &clique(2));
        assert!(matches!(report.strategy, Strategy::Schaefer(_)));
        assert!(report.witness.is_none());
    }

    #[test]
    fn dispatches_to_yannakakis_for_acyclic() {
        // Star coloring with 3 colors: acyclic instance, non-Boolean.
        let mut p = CspInstance::new(4, 3);
        let neq = Arc::new(
            Relation::from_tuples(
                2,
                (0..3u32).flat_map(|i| (0..3u32).filter_map(move |j| (i != j).then_some([i, j]))),
            )
            .unwrap(),
        );
        for leaf in 1..4u32 {
            p.add_constraint([0, leaf], neq.clone()).unwrap();
        }
        let report = auto_solve_csp(&p);
        assert_eq!(report.strategy, Strategy::Yannakakis);
        assert!(report.witness.is_some());
        assert!(p.is_solution(report.witness.as_ref().unwrap()));
    }

    #[test]
    fn dispatches_to_treewidth_for_cyclic_sparse() {
        // Odd cycle into K3: cyclic, treewidth 2, 3 values.
        let report = auto_solve(&cycle(5), &clique(3));
        assert!(matches!(report.strategy, Strategy::Treewidth(w) if w <= 2));
        let h = report.witness.expect("3-colorable");
        assert!(cspdb_core::is_homomorphism(&h, &cycle(5), &clique(3)));
    }

    #[test]
    fn dispatches_to_backtracking_for_dense() {
        // K7 into K6: treewidth 6 > cutoff, not Boolean, cyclic.
        let report = auto_solve(&clique(7), &clique(6));
        assert_eq!(report.strategy, Strategy::Backtracking);
        assert!(report.witness.is_none());
        let report = auto_solve(&clique(7), &clique(7));
        assert_eq!(report.strategy, Strategy::Backtracking);
        assert!(report.witness.is_some());
    }

    #[test]
    fn all_strategies_agree_with_each_other() {
        let mut state = 0x1357924680ACE135u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 4 + (next() % 3) as usize;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if next() % 2 == 0 {
                        edges.push((u, v));
                    }
                }
            }
            let a = cspdb_core::graphs::undirected(n, &edges);
            for b in [clique(2), clique(3)] {
                let report = auto_solve(&a, &b);
                let direct = cspdb_solver::find_homomorphism(&a, &b);
                assert_eq!(report.witness.is_some(), direct.is_some());
                if let Some(h) = report.witness {
                    assert!(cspdb_core::is_homomorphism(&h, &a, &b));
                }
            }
        }
    }

    #[test]
    fn witnesses_verify_for_path_instances() {
        let report = auto_solve(&path(6), &clique(2));
        let h = report.witness.unwrap();
        assert!(cspdb_core::is_homomorphism(&h, &path(6), &clique(2)));
    }

    #[test]
    fn portfolio_agrees_with_sequential_ladder() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let cases = [
            (cycle(5), clique(3), true),   // treewidth territory
            (cycle(5), clique(4), true),   // treewidth territory, sat
            (clique(4), clique(3), false), // backtracking territory
            (clique(4), clique(4), true),  // backtracking territory, sat
            (cycle(6), clique(2), true),   // Schaefer inline
            (cycle(7), clique(2), false),  // Schaefer inline, unsat
        ];
        for (a, b, expected) in cases {
            let budget = Budget::unlimited();
            let report = pool.install(|| auto_solve_portfolio(&a, &b, &budget));
            assert!(
                report.strategy.is_some(),
                "unlimited portfolio must decide on {a}"
            );
            assert_eq!(report.answer.is_sat(), expected, "on {a} -> {b}");
            if let Some(w) = report.answer.witness() {
                assert!(cspdb_core::is_homomorphism(w, &a, &b));
            }
            // And agreement with the sequential governed ladder.
            let seq = auto_solve_governed(&a, &b, &Budget::unlimited());
            assert_eq!(report.answer.is_sat(), seq.answer.is_sat());
        }
    }

    #[test]
    fn portfolio_acyclic_instances_race_yannakakis() {
        // Non-Boolean star: Schaefer is inapplicable, so the race decides
        // — and the Yannakakis racer must at least appear in the trace.
        let mut p = CspInstance::new(4, 3);
        let neq = Arc::new(
            Relation::from_tuples(
                2,
                (0..3u32).flat_map(|i| (0..3u32).filter_map(move |j| (i != j).then_some([i, j]))),
            )
            .unwrap(),
        );
        for leaf in 1..4u32 {
            p.add_constraint([0, leaf], neq.clone()).unwrap();
        }
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let report = pool.install(|| auto_solve_portfolio_csp(&p, &Budget::unlimited()));
        assert!(report.answer.is_sat());
        assert!(p.is_solution(report.answer.witness().unwrap()));
        assert!(report
            .attempts
            .iter()
            .any(|t| t.strategy == Strategy::Yannakakis));
    }

    #[test]
    fn portfolio_exhausts_to_unknown_soundly() {
        // A 1-step budget cannot decide K4 -> K3 (not Boolean, cyclic,
        // planning alone costs more): every racer exhausts, fallbacks
        // exhaust or stay inconclusive, answer is Unknown — never wrong.
        let report =
            auto_solve_portfolio(&clique(4), &clique(3), &Budget::new().with_step_limit(1));
        assert!(report.answer.is_unknown());
        assert!(report.strategy.is_none());
    }

    #[test]
    fn portfolio_respects_caller_cancellation() {
        let token = cspdb_core::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(token.clone());
        // K7 -> K6 is big enough that every racer crosses an amortised
        // checkpoint, so the pre-cancelled token must yield Unknown.
        let report = auto_solve_portfolio(&clique(7), &clique(6), &budget);
        assert!(report.answer.is_unknown());
        // The race's internal cancellation must never fire the caller's
        // token; here it was already cancelled by the caller, and the
        // token object is unchanged (still just "cancelled").
        assert!(token.is_cancelled());
        // Conversely a fresh caller token stays untripped after a
        // portfolio run in which a winner cancelled the race internally.
        let token = cspdb_core::CancelToken::new();
        let budget = Budget::unlimited().with_cancel(token.clone());
        let report = auto_solve_portfolio(&cycle(5), &clique(3), &budget);
        assert!(report.answer.is_sat());
        assert!(
            !token.is_cancelled(),
            "race cancellation leaked to the caller token"
        );
    }
}
