//! # cspdb
//!
//! The facade crate of *constraint-db* — a Rust reproduction of
//! Moshe Y. Vardi, *"Constraint Satisfaction and Database Theory: a
//! Tutorial"* (PODS 2000).
//!
//! The tutorial's thesis is that constraint satisfaction and database
//! theory are two views of the homomorphism problem. This crate
//! re-exports every subsystem and adds [`Solver`]: one builder over
//! every solving mode, dispatching on the paper's tractability map —
//!
//! 1. Boolean template in a Schaefer class → the dedicated polynomial
//!    solver (Section 3);
//! 2. α-acyclic constraint hypergraph → Yannakakis (Section 6's acyclic
//!    join lineage);
//! 3. small Gaifman treewidth → dynamic programming over a tree
//!    decomposition (Theorem 6.2);
//! 4. otherwise → MAC backtracking (the honest NP baseline), with
//!    arc-/k-consistency refutation (Sections 4–5) as sound fallbacks.
//!
//! ```
//! use cspdb::Solver;
//! use cspdb::core::graphs::{clique, cycle};
//!
//! let report = Solver::new().solve(&cycle(6), &clique(2));
//! assert!(report.answer.is_sat()); // even cycles are 2-colorable
//! let report = Solver::new().solve(&cycle(7), &clique(2));
//! assert!(report.answer.is_unsat());
//! ```
//!
//! Budgets ([`core::budget::Budget`]), parallel tier execution, the
//! portfolio race, and trace sinks ([`core::trace::TraceSink`]) all hang
//! off the same builder; see [`Solver`] and [`ExplainReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Pebble games and consistency (Sections 4–5).
pub use cspdb_consistency as consistency;
/// Core data model (Section 2).
pub use cspdb_core as core;
/// Conjunctive queries, containment, cores (Props 2.2/2.3, 6.1).
pub use cspdb_cq as cq;
/// Datalog engine and canonical programs (Section 4).
pub use cspdb_datalog as datalog;
/// Treewidth and hypertree decompositions (Section 6).
pub use cspdb_decomp as decomp;
/// Incremental view maintenance: delta-driven materialized views.
pub use cspdb_ivm as ivm;
/// Relational algebra and join-based solving (Prop 2.1, Yannakakis).
pub use cspdb_relalg as relalg;
/// Regular path queries and view-based answering (Section 7).
pub use cspdb_rpq as rpq;
/// Schaefer's dichotomy (Section 3).
pub use cspdb_schaefer as schaefer;
/// Backtracking search.
pub use cspdb_solver as solver;

mod explain;
mod facade;

pub use explain::{render_join_plan, ExplainReport};
pub use facade::{
    GovernedReport, PhaseTrace, SolveOutcome, SolveReport, SolveStrategy, Solver, Strategy,
    TierAttempt, TierOutcome, TraceSummary,
};

#[cfg(test)]
mod facade_surface_tests {
    //! The [`Solver`] builder is the one public entry point; these keep
    //! its default-settings behaviour pinned over randomized instances
    //! (the parity coverage the removed `auto_solve*` shims used to
    //! exercise).

    use super::*;
    use cspdb_core::budget::Budget;
    use cspdb_core::graphs::{clique, cycle};
    use cspdb_core::CspInstance;

    #[test]
    fn builder_entry_points_answer_correctly() {
        let solve = |a: &_, b: &_| Solver::new().solve(a, b).expect_decided();
        assert!(solve(&cycle(6), &clique(2)).witness.is_some());
        assert!(solve(&cycle(7), &clique(2)).witness.is_none());
        let governed = Solver::new()
            .budget(Budget::unlimited())
            .solve(&cycle(5), &clique(3));
        assert!(governed.answer.is_sat());
        let portfolio = Solver::new()
            .budget(Budget::unlimited())
            .strategy(SolveStrategy::Portfolio)
            .solve(&cycle(5), &clique(3));
        assert!(portfolio.answer.is_sat());
        let instance = CspInstance::from_homomorphism(&cycle(5), &clique(3)).unwrap();
        assert!(Solver::new()
            .solve_csp(&instance)
            .expect_decided()
            .witness
            .is_some());
        assert!(Solver::new()
            .budget(Budget::unlimited())
            .solve_csp(&instance)
            .answer
            .is_sat());
        assert!(Solver::new()
            .budget(Budget::unlimited())
            .strategy(SolveStrategy::Portfolio)
            .solve_csp(&instance)
            .answer
            .is_sat());
    }

    /// Default-settings dispatch is deterministic: two fresh builders
    /// must agree on strategy and answer over randomized instances
    /// (structure-vs-structure and the CSP view of the same problem).
    #[test]
    fn facade_defaults_are_deterministic_on_random_instances() {
        use cspdb_core::graphs::undirected;

        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..12 {
            let n = 4 + (next() % 5) as usize;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if next() % 3 != 0 {
                        edges.push((u, v));
                    }
                }
            }
            let a = undirected(n, &edges);
            let k = 2 + (next() % 3) as usize;
            let b = clique(k);

            let first = Solver::new().solve(&a, &b).expect_decided();
            let second = Solver::new().solve(&a, &b).expect_decided();
            assert_eq!(
                first.strategy, second.strategy,
                "round {round}: strategy diverged (n={n}, k={k})"
            );
            assert_eq!(
                first.witness.is_some(),
                second.witness.is_some(),
                "round {round}: answer diverged (n={n}, k={k})"
            );

            let governed = Solver::new().budget(Budget::unlimited()).solve(&a, &b);
            assert_eq!(
                governed.answer.is_sat(),
                first.witness.is_some(),
                "round {round}: governed answer diverged (n={n}, k={k})"
            );

            if let Ok(instance) = CspInstance::from_homomorphism(&a, &b) {
                let csp = Solver::new().solve_csp(&instance).expect_decided();
                assert_eq!(
                    csp.witness.is_some(),
                    first.witness.is_some(),
                    "round {round}: csp answer diverged (n={n}, k={k})"
                );
            }
        }
    }
}
