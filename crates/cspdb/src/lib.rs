//! # cspdb
//!
//! The facade crate of *constraint-db* — a Rust reproduction of
//! Moshe Y. Vardi, *"Constraint Satisfaction and Database Theory: a
//! Tutorial"* (PODS 2000).
//!
//! The tutorial's thesis is that constraint satisfaction and database
//! theory are two views of the homomorphism problem. This crate
//! re-exports every subsystem and adds [`auto_solve`]: a dispatcher that
//! inspects an instance and picks the best algorithm the paper's theory
//! licenses —
//!
//! 1. Boolean template in a Schaefer class → the dedicated polynomial
//!    solver (Section 3);
//! 2. α-acyclic constraint hypergraph → Yannakakis (Section 6's acyclic
//!    join lineage);
//! 3. small Gaifman treewidth → dynamic programming over a tree
//!    decomposition (Theorem 6.2);
//! 4. otherwise → MAC backtracking (the honest NP baseline), with
//!    k-consistency refutation (Sections 4–5) as a cheap pre-check.
//!
//! ```
//! use cspdb::auto_solve;
//! use cspdb::core::graphs::{clique, cycle};
//!
//! let report = auto_solve(&cycle(6), &clique(2));
//! assert!(report.witness.is_some()); // even cycles are 2-colorable
//! let report = auto_solve(&cycle(7), &clique(2));
//! assert!(report.witness.is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core data model (Section 2).
pub use cspdb_core as core;
/// Relational algebra and join-based solving (Prop 2.1, Yannakakis).
pub use cspdb_relalg as relalg;
/// Conjunctive queries, containment, cores (Props 2.2/2.3, 6.1).
pub use cspdb_cq as cq;
/// Backtracking search.
pub use cspdb_solver as solver;
/// Pebble games and consistency (Sections 4–5).
pub use cspdb_consistency as consistency;
/// Datalog engine and canonical programs (Section 4).
pub use cspdb_datalog as datalog;
/// Schaefer's dichotomy (Section 3).
pub use cspdb_schaefer as schaefer;
/// Treewidth and hypertree decompositions (Section 6).
pub use cspdb_decomp as decomp;
/// Regular path queries and view-based answering (Section 7).
pub use cspdb_rpq as rpq;

use cspdb_core::{CspInstance, Structure};

/// Which strategy [`auto_solve`] ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Schaefer-class polynomial solver (which one is in the payload).
    Schaefer(cspdb_schaefer::SolverUsed),
    /// Yannakakis on an acyclic instance.
    Yannakakis,
    /// Dynamic programming over a tree decomposition of the given width.
    Treewidth(usize),
    /// Generic MAC backtracking.
    Backtracking,
}

/// The result of [`auto_solve`].
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// The strategy that produced the answer.
    pub strategy: Strategy,
    /// A homomorphism `A -> B`, if one exists.
    pub witness: Option<Vec<u32>>,
}

/// Maximum heuristic treewidth for which the DP route is attempted.
const TREEWIDTH_CUTOFF: usize = 4;

/// Solves the homomorphism problem `A -> B`, dispatching on instance
/// structure per the paper's tractability map (see crate docs).
///
/// # Panics
///
/// Panics if the structures have different vocabularies.
pub fn auto_solve(a: &Structure, b: &Structure) -> SolveReport {
    assert_eq!(a.vocabulary(), b.vocabulary(), "vocabulary mismatch");
    let instance = CspInstance::from_homomorphism(a, b).expect("same vocabulary");
    auto_solve_csp(&instance)
}

/// [`auto_solve`] for classical CSP instances.
pub fn auto_solve_csp(instance: &CspInstance) -> SolveReport {
    // 1. Boolean templates: Schaefer's dichotomy.
    if instance.num_values() == 2 {
        let (used, witness) = cspdb_schaefer::solve_boolean(instance);
        if used != cspdb_schaefer::SolverUsed::GenericSearch {
            return SolveReport {
                strategy: Strategy::Schaefer(used),
                witness,
            };
        }
        // NP-side Boolean templates fall through to the structural
        // strategies, which may still apply.
    }
    // 2. Acyclic hypergraph: Yannakakis.
    if cspdb_relalg::is_acyclic_instance(instance) {
        let witness = cspdb_relalg::solve_acyclic(instance)
            .expect("checked acyclic");
        return SolveReport {
            strategy: Strategy::Yannakakis,
            witness,
        };
    }
    // 3. Bounded treewidth: DP.
    let (a, b) = instance.to_homomorphism();
    let g = cspdb_decomp::Graph::gaifman(&a);
    let order = cspdb_decomp::min_fill_order(&g);
    let width = cspdb_decomp::order_width(&g, &order);
    if width <= TREEWIDTH_CUTOFF {
        let td = cspdb_decomp::from_elimination_order(&g, &order);
        let witness = cspdb_decomp::solve_with_decomposition(&a, &b, &td)
            .expect("constructed decomposition is valid");
        return SolveReport {
            strategy: Strategy::Treewidth(width),
            witness,
        };
    }
    // 4. Generic search.
    SolveReport {
        strategy: Strategy::Backtracking,
        witness: cspdb_solver::solve_csp(instance),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{clique, cycle, path};
    use cspdb_core::Relation;
    use std::sync::Arc;

    #[test]
    fn dispatches_to_schaefer_for_boolean_templates() {
        // 2-coloring = CSP(K2): Boolean, xor-like template.
        let report = auto_solve(&cycle(6), &clique(2));
        assert!(matches!(report.strategy, Strategy::Schaefer(_)));
        assert!(report.witness.is_some());
        let report = auto_solve(&cycle(7), &clique(2));
        assert!(matches!(report.strategy, Strategy::Schaefer(_)));
        assert!(report.witness.is_none());
    }

    #[test]
    fn dispatches_to_yannakakis_for_acyclic() {
        // Star coloring with 3 colors: acyclic instance, non-Boolean.
        let mut p = CspInstance::new(4, 3);
        let neq = Arc::new(
            Relation::from_tuples(
                2,
                (0..3u32).flat_map(|i| (0..3u32).filter_map(move |j| (i != j).then_some([i, j]))),
            )
            .unwrap(),
        );
        for leaf in 1..4u32 {
            p.add_constraint([0, leaf], neq.clone()).unwrap();
        }
        let report = auto_solve_csp(&p);
        assert_eq!(report.strategy, Strategy::Yannakakis);
        assert!(report.witness.is_some());
        assert!(p.is_solution(report.witness.as_ref().unwrap()));
    }

    #[test]
    fn dispatches_to_treewidth_for_cyclic_sparse() {
        // Odd cycle into K3: cyclic, treewidth 2, 3 values.
        let report = auto_solve(&cycle(5), &clique(3));
        assert!(matches!(report.strategy, Strategy::Treewidth(w) if w <= 2));
        let h = report.witness.expect("3-colorable");
        assert!(cspdb_core::is_homomorphism(&h, &cycle(5), &clique(3)));
    }

    #[test]
    fn dispatches_to_backtracking_for_dense() {
        // K7 into K6: treewidth 6 > cutoff, not Boolean, cyclic.
        let report = auto_solve(&clique(7), &clique(6));
        assert_eq!(report.strategy, Strategy::Backtracking);
        assert!(report.witness.is_none());
        let report = auto_solve(&clique(7), &clique(7));
        assert_eq!(report.strategy, Strategy::Backtracking);
        assert!(report.witness.is_some());
    }

    #[test]
    fn all_strategies_agree_with_each_other() {
        let mut state = 0x1357924680ACE135u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 4 + (next() % 3) as usize;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if next() % 2 == 0 {
                        edges.push((u, v));
                    }
                }
            }
            let a = cspdb_core::graphs::undirected(n, &edges);
            for b in [clique(2), clique(3)] {
                let report = auto_solve(&a, &b);
                let direct = cspdb_solver::find_homomorphism(&a, &b);
                assert_eq!(report.witness.is_some(), direct.is_some());
                if let Some(h) = report.witness {
                    assert!(cspdb_core::is_homomorphism(&h, &a, &b));
                }
            }
        }
    }

    #[test]
    fn witnesses_verify_for_path_instances() {
        let report = auto_solve(&path(6), &clique(2));
        let h = report.witness.unwrap();
        assert!(cspdb_core::is_homomorphism(&h, &path(6), &clique(2)));
    }
}
