//! EXPLAIN-style reporting: a [`GovernedReport`] plus the recorded
//! [`TraceEvent`] stream, rendered as text or JSON.
//!
//! Database engines answer `EXPLAIN ANALYZE` with the executed plan and
//! its per-operator cardinalities; this module is the CSP analogue. The
//! ladder's tiers play the role of plan alternatives, the trace events
//! carry per-operator (join/semijoin) cardinalities, and the phase
//! summary gives per-tier wall time and meter charges.
//!
//! ```
//! use cspdb::{ExplainReport, Solver};
//! use cspdb::core::graphs::{clique, cycle};
//! use cspdb::core::trace::Recorder;
//! use std::sync::Arc;
//!
//! let rec = Arc::new(Recorder::new());
//! let report = Solver::new().trace(rec.clone()).solve(&cycle(5), &clique(3));
//! let explain = ExplainReport::new(report, rec.take());
//! assert!(explain.render_text().contains("treewidth"));
//! assert!(explain.to_json().starts_with('{'));
//! ```

use crate::facade::GovernedReport;
use cspdb_core::budget::Answer;
use cspdb_core::trace::{OperatorKind, TraceEvent};
use std::fmt::Write as _;

/// Renders the join-planner section of an EXPLAIN report: for every
/// [`TraceEvent::PlanChosen`] in `events`, the engine the cost gate
/// picked (and why), then the chosen order with the planner's estimated
/// cardinality per step next to the *actual* rows the subsequent
/// hash-join operators produced, plus the number of hash indexes built.
/// Runs executed by the worst-case-optimal engine instead render one
/// line per attribute level with its surviving-binding count. Returns
/// `None` when no plan was recorded (the run never entered the join
/// pipeline).
pub fn render_join_plan(events: &[TraceEvent]) -> Option<String> {
    let mut out = String::new();
    let mut plans = 0usize;
    for (i, event) in events.iter().enumerate() {
        let TraceEvent::PlanChosen {
            relations,
            order,
            est_rows,
            cross_steps,
            engine,
            reason,
        } = event
        else {
            continue;
        };
        plans += 1;
        let _ = writeln!(
            out,
            "join plan: {} relations, {} cross product{}",
            relations,
            cross_steps.len(),
            if cross_steps.len() == 1 { "" } else { "s" },
        );
        let _ = writeln!(out, "  engine: {engine} ({reason})");
        // Events belonging to this plan: everything up to the next one.
        let tail = events[i + 1..]
            .iter()
            .take_while(|e| !matches!(e, TraceEvent::PlanChosen { .. }));
        if *engine == "wcoj" {
            // The leapfrog engine binds one attribute per level; show the
            // surviving-binding count per level instead of per-step
            // hash-join actuals (no binary steps ran).
            for e in tail {
                if let TraceEvent::WcojLevel {
                    level,
                    attr,
                    relations,
                    matches,
                } = e
                {
                    let _ = writeln!(
                        out,
                        "  level {level}  attr {attr:>3}   {relations} relations   {matches:>8} matches"
                    );
                }
            }
            continue;
        }
        // Actual cardinalities: the sequential hash-join operators that
        // ran after this plan, one per step past the first (fewer when
        // an empty intermediate ended the pipeline early).
        let mut actuals = tail.filter_map(|e| match e {
            TraceEvent::Operator {
                op: OperatorKind::HashJoin,
                output_rows,
                ..
            } => Some(*output_rows),
            _ => None,
        });
        for (step, (rel, est)) in order.iter().zip(est_rows.iter()).enumerate() {
            let actual = if step == 0 {
                String::new()
            } else {
                match actuals.next() {
                    Some(rows) => format!("   actual {rows:>8} rows"),
                    None => String::new(),
                }
            };
            let cross = if cross_steps.contains(&(step as u32)) {
                "   (cross product)"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  step {step}  relation {rel:>3}   est {est:>8} rows{actual}{cross}"
            );
        }
    }
    let indexes = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::IndexBuilt { .. }))
        .count();
    if indexes > 0 {
        let _ = writeln!(out, "indexes built: {indexes}");
    }
    (plans > 0).then_some(out)
}

/// A governed run together with its recorded event stream, renderable
/// as an `EXPLAIN ANALYZE`-style report.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// The run's answer, attempts, and phase summary.
    pub report: GovernedReport,
    /// The typed events recorded during the run, in emission order.
    pub events: Vec<TraceEvent>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ExplainReport {
    /// Pairs a report with the events a
    /// [`Recorder`](cspdb_core::trace::Recorder) captured for it.
    pub fn new(report: GovernedReport, events: Vec<TraceEvent>) -> Self {
        ExplainReport { report, events }
    }

    /// Human-readable plan report: the answer, the winning strategy, every
    /// tier attempt with its per-phase wall time and meter counters, and
    /// the event stream indented under its enclosing tier.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        match &self.report.answer {
            Answer::Sat(w) => {
                let _ = writeln!(out, "answer: sat (witness over {} variables)", w.len());
            }
            Answer::Unsat => {
                let _ = writeln!(out, "answer: unsat");
            }
            Answer::Unknown(r) => {
                let _ = writeln!(out, "answer: unknown ({r})");
            }
        }
        match &self.report.strategy {
            Some(s) => {
                let _ = writeln!(out, "strategy: {s}");
            }
            None => {
                let _ = writeln!(out, "strategy: none (no tier decided)");
            }
        }
        let _ = writeln!(out, "tiers:");
        for (attempt, phase) in self
            .report
            .attempts
            .iter()
            .zip(self.report.trace.phases.iter())
        {
            let _ = writeln!(
                out,
                "  {:<16} {:<40} {:>8} µs {:>10} steps {:>10} tuples",
                attempt.strategy.to_string(),
                attempt.outcome.label(),
                phase.micros,
                phase.steps,
                phase.tuples,
            );
        }
        // Phases beyond the attempts (e.g. the aggregate "portfolio" row).
        for phase in self
            .report
            .trace
            .phases
            .iter()
            .skip(self.report.attempts.len())
        {
            let _ = writeln!(
                out,
                "  {:<16} {:<40} {:>8} µs {:>10} steps {:>10} tuples",
                phase.phase, "(aggregate)", phase.micros, phase.steps, phase.tuples,
            );
        }
        if let Some(plan) = render_join_plan(&self.events) {
            out.push_str(&plan);
        }
        if self.events.is_empty() {
            let _ = writeln!(out, "events: none recorded");
        } else {
            let _ = writeln!(out, "events ({}):", self.events.len());
            let mut depth = 0usize;
            for event in &self.events {
                if matches!(event, TraceEvent::TierEnd { .. }) {
                    depth = depth.saturating_sub(1);
                }
                let _ = writeln!(
                    out,
                    "  {}{} {}",
                    "  ".repeat(depth),
                    event.kind(),
                    event.to_json(),
                );
                if matches!(event, TraceEvent::TierStart { .. }) {
                    depth += 1;
                }
            }
        }
        out
    }

    /// Machine-readable report: one JSON object with the answer, the
    /// winning strategy, the exhaustion reason (`null` unless the answer
    /// is unknown), the tier attempts, the per-phase timings/counters,
    /// and the raw event objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let (answer, witness_len, reason) = match &self.report.answer {
            Answer::Sat(w) => ("sat", Some(w.len()), None),
            Answer::Unsat => ("unsat", None, None),
            Answer::Unknown(r) => ("unknown", None, Some(r.to_string())),
        };
        let _ = write!(out, "\"answer\":\"{answer}\"");
        match witness_len {
            Some(n) => {
                let _ = write!(out, ",\"witness_len\":{n}");
            }
            None => out.push_str(",\"witness_len\":null"),
        }
        match &self.report.strategy {
            Some(s) => {
                let _ = write!(out, ",\"strategy\":\"{}\"", esc(&s.to_string()));
            }
            None => out.push_str(",\"strategy\":null"),
        }
        match reason {
            Some(r) => {
                let _ = write!(out, ",\"exhaustion_reason\":\"{}\"", esc(&r));
            }
            None => out.push_str(",\"exhaustion_reason\":null"),
        }
        out.push_str(",\"attempts\":[");
        for (i, attempt) in self.report.attempts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"strategy\":\"{}\",\"outcome\":\"{}\"}}",
                esc(&attempt.strategy.to_string()),
                esc(&attempt.outcome.label()),
            );
        }
        out.push_str("],\"phases\":[");
        for (i, phase) in self.report.trace.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"phase\":\"{}\",\"micros\":{},\"steps\":{},\"tuples\":{}}}",
                esc(&phase.phase),
                phase.micros,
                phase.steps,
                phase.tuples,
            );
        }
        out.push_str("],\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facade::{SolveStrategy, Solver};
    use cspdb_core::budget::Budget;
    use cspdb_core::graphs::{clique, cycle};
    use cspdb_core::trace::Recorder;
    use std::sync::Arc;

    fn explain(a: &cspdb_core::Structure, b: &cspdb_core::Structure) -> ExplainReport {
        let rec = Arc::new(Recorder::new());
        let report = Solver::new().trace(rec.clone()).solve(a, b);
        ExplainReport::new(report, rec.take())
    }

    #[test]
    fn text_report_names_the_winning_tier() {
        let e = explain(&cycle(5), &clique(3));
        let text = e.render_text();
        assert!(text.contains("answer: sat"), "got:\n{text}");
        assert!(text.contains("strategy: treewidth"), "got:\n{text}");
        assert!(text.contains("tier_start"), "got:\n{text}");
    }

    #[test]
    fn json_report_is_structurally_sound() {
        let e = explain(&cycle(5), &clique(3));
        let json = e.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"answer\":\"sat\""), "got:\n{json}");
        assert!(json.contains("\"exhaustion_reason\":null"));
        assert!(json.contains("\"phases\":["));
        assert!(json.contains("\"event\":\"dp_table\""), "got:\n{json}");
        // Balanced braces and quotes — cheap well-formedness checks that
        // catch missed commas/escapes without a JSON parser dependency.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "got:\n{json}"
        );
        assert_eq!(json.matches('"').count() % 2, 0, "got:\n{json}");
    }

    #[test]
    fn join_plan_section_pairs_estimates_with_actuals() {
        use cspdb_relalg::{join_all_budgeted, NamedRelation};
        let rec = Arc::new(Recorder::new());
        let budget = Budget::unlimited().with_trace(rec.clone());
        let mut meter = budget.meter();
        // A 3-relation chain: R(0,1) ⋈ S(1,2) ⋈ T(2,3).
        let r = NamedRelation::new(vec![0, 1], vec![vec![1, 2], vec![2, 3]]);
        let s = NamedRelation::new(vec![1, 2], vec![vec![2, 4], vec![3, 5]]);
        let t = NamedRelation::new(vec![2, 3], vec![vec![4, 6], vec![5, 7]]);
        let joined = join_all_budgeted(vec![r, s, t], &mut meter).unwrap();
        assert_eq!(joined.len(), 2);
        let events = rec.take();
        let plan = render_join_plan(&events).expect("a plan was recorded");
        assert!(plan.contains("join plan: 3 relations"), "got:\n{plan}");
        assert!(plan.contains("0 cross products"), "got:\n{plan}");
        assert!(plan.contains("engine: binary"), "got:\n{plan}");
        assert!(plan.contains("actual"), "got:\n{plan}");
        assert!(plan.contains("indexes built: 2"), "got:\n{plan}");
        // And the section shows up in a rendered report.
        let report = Solver::new().solve(&cycle(5), &clique(3));
        let text = ExplainReport::new(report, events).render_text();
        assert!(text.contains("join plan:"), "got:\n{text}");
    }

    #[test]
    fn join_plan_section_renders_wcoj_levels() {
        use cspdb_relalg::{join_all_budgeted, NamedRelation};
        let rec = Arc::new(Recorder::new());
        let budget = Budget::unlimited().with_trace(rec.clone());
        let mut meter = budget.meter();
        // A dense cyclic triangle query: R(0,1) ⋈ S(1,2) ⋈ T(2,0) over
        // the complete 8-vertex digraph, where the AGM bound (512)
        // undercuts the binary peak estimate and the cost gate routes
        // to the worst-case-optimal engine.
        let edges: Vec<Vec<u32>> = (0..8u32)
            .flat_map(|a| (0..8u32).filter(move |&b| b != a).map(move |b| vec![a, b]))
            .collect();
        let r = NamedRelation::new(vec![0, 1], edges.clone());
        let s = NamedRelation::new(vec![1, 2], edges.clone());
        let t = NamedRelation::new(vec![2, 0], edges);
        let joined = join_all_budgeted(vec![r, s, t], &mut meter).unwrap();
        assert_eq!(joined.len(), 8 * 7 * 6);
        let events = rec.take();
        let plan = render_join_plan(&events).expect("a plan was recorded");
        assert!(plan.contains("engine: wcoj"), "got:\n{plan}");
        assert!(plan.contains("AGM"), "got:\n{plan}");
        assert!(plan.contains("level 0"), "got:\n{plan}");
        assert!(plan.contains("level 2"), "got:\n{plan}");
        // Each triangle attribute is shared by exactly two relations.
        assert!(plan.contains("2 relations"), "got:\n{plan}");
        // No binary hash-join steps ran, so no per-step actuals.
        assert!(!plan.contains("actual"), "got:\n{plan}");
    }

    #[test]
    fn render_join_plan_is_none_without_a_plan() {
        assert!(render_join_plan(&[]).is_none());
        let e = explain(&cycle(5), &clique(3));
        // The default ladder solves cycle/clique before the join tier, so
        // no PlanChosen event is recorded and the section is omitted.
        let _ = render_join_plan(&e.events);
    }

    #[test]
    fn exhausted_run_reports_reason_in_json() {
        let rec = Arc::new(Recorder::new());
        let report = Solver::new()
            .budget(Budget::new().with_step_limit(1))
            .strategy(SolveStrategy::Ladder)
            .trace(rec.clone())
            .solve(&clique(4), &clique(3));
        let e = ExplainReport::new(report, rec.take());
        let json = e.to_json();
        assert!(json.contains("\"answer\":\"unknown\""), "got:\n{json}");
        assert!(json.contains("\"strategy\":null"));
        assert!(
            json.contains("\"exhaustion_reason\":\"step"),
            "got:\n{json}"
        );
        let text = e.render_text();
        assert!(text.contains("answer: unknown"), "got:\n{text}");
    }
}
