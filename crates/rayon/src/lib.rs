//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the API subset the workspace uses — [`join`], [`ThreadPoolBuilder`] /
//! [`ThreadPool::install`], [`current_num_threads`], and the
//! `par_iter` / `into_par_iter` → `map` → `collect` pipeline — on top of
//! `std::thread::scope`. Call sites are source-compatible with real
//! rayon, so swapping in the crates.io crate is a `Cargo.toml` change.
//!
//! Execution model: a parallel iterator is **eager** — the driving call
//! (`collect`, `for_each`) splits the items into one contiguous chunk
//! per thread, runs each chunk on a scoped thread, and reassembles
//! results in chunk order, so output order always matches the
//! sequential order. The thread count comes from the innermost
//! [`ThreadPool::install`] on the calling thread, defaulting to
//! `std::thread::available_parallelism`. Unlike real rayon there is no
//! work stealing and no persistent pool; `install` only scopes the
//! thread count, and nested parallel calls inside a worker see the
//! default count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::fmt;
use std::thread;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads parallel operations on this thread will use:
/// the innermost [`ThreadPool::install`] override, else
/// `std::thread::available_parallelism`.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error from [`ThreadPoolBuilder::build`]. The stand-in never fails to
/// build; the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count; `0` means the default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in the stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A logical thread pool: in the stand-in, just a thread count that
/// [`install`](ThreadPool::install) scopes onto the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

/// Restores the previous thread-count override even if `op` panics.
struct InstallGuard {
    previous: Option<usize>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|c| c.set(self.previous));
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing parallel
    /// operations it performs (on the calling thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let guard = InstallGuard {
            previous: INSTALLED_THREADS.with(|c| c.replace(Some(self.threads))),
        };
        let out = op();
        drop(guard);
        out
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (oper_a(), oper_b());
    }
    thread::scope(|s| {
        let b = s.spawn(oper_b);
        let ra = oper_a();
        let rb = b.join().expect("rayon::join closure panicked");
        (ra, rb)
    })
}

pub mod iter {
    //! Parallel iterator subset: `into_par_iter`/`par_iter` over ranges,
    //! vectors, and slices; `map`, `for_each`, and order-preserving
    //! `collect`.

    use super::current_num_threads;
    use std::thread;

    /// Runs `f` over `items`, one contiguous chunk per thread, and
    /// returns the results in input order.
    fn chunked_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let threads = current_num_threads().clamp(1, n.max(1));
        if threads <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk_len = n.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut items = items.into_iter();
        loop {
            let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let mut slots: Vec<Vec<R>> = Vec::new();
        thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                slots.push(h.join().expect("parallel iterator closure panicked"));
            }
        });
        slots.into_iter().flatten().collect()
    }

    /// An eager parallel iterator over already-collected items.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Maps every item through `f` (lazily; the map runs at
        /// [`collect`](ParMap::collect) / [`for_each`](ParMap::for_each)).
        pub fn map<R, F>(self, f: F) -> ParMap<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Runs `f` on every item in parallel.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(T) + Sync,
        {
            chunked_map(self.items, &|t| f(t));
        }
    }

    /// A mapped parallel iterator: the driving adapters live here.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, R, F> ParMap<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Runs the pipeline and collects results **in input order**.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            chunked_map(self.items, &self.f).into_iter().collect()
        }

        /// Runs the pipeline for its side effects.
        pub fn for_each<G>(self, g: G)
        where
            G: Fn(R) + Sync,
        {
            let f = &self.f;
            chunked_map(self.items, &|t| g(f(t)));
        }
    }

    /// Conversion into a parallel iterator by value.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// Converts `self`.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    /// Conversion into a borrowing parallel iterator (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed element type.
        type Item: Send;
        /// Parallel-iterates over references into `self`.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        fn par_iter(&'a self) -> ParIter<&'a T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }
}

pub mod prelude {
    //! Traits to import for `par_iter` / `into_par_iter`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_order() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| (0..1000).into_par_iter().map(|i| i * 2).collect());
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<u32> = (0..100).collect();
        let s: u32 = v
            .par_iter()
            .map(|&x| x + 1)
            .collect::<Vec<u32>>()
            .iter()
            .sum();
        assert_eq!(s, (1..=100).sum::<u32>());
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let r: Result<Vec<usize>, &'static str> = (0..10)
            .into_par_iter()
            .map(|i| if i == 5 { Err("boom") } else { Ok(i) })
            .collect();
        assert_eq!(r, Err("boom"));
    }

    #[test]
    fn install_scopes_thread_count() {
        assert!(current_num_threads() >= 1);
        let pool = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 7));
        let nested = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            nested.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 7);
        });
    }

    #[test]
    fn join_returns_both() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| join(|| 1 + 1, || "two"));
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn empty_and_single_item_iterators() {
        let out: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let out: Vec<u32> = vec![9].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            (0..100usize).into_par_iter().for_each(|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            })
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }
}
