//! Query decompositions (Chekuri–Rajaraman, discussed at the end of
//! Section 6 of the paper).
//!
//! A *query decomposition* labels the nodes of a tree with sets of atoms
//! and variables such that every atom is covered and every atom/variable
//! appears in a connected set of nodes. The paper records two facts we
//! reproduce computationally:
//!
//! 1. a tree decomposition of the **incidence graph** is a query
//!    decomposition (so querywidth ≤ incidence treewidth + 1), and
//! 2. hypertree width ≤ querywidth (Gottlob–Leone–Scarcello), with
//!    hypertree width polynomially recognizable while querywidth ≤ 4 is
//!    NP-complete — which is why we *construct* query decompositions
//!    from incidence-graph decompositions instead of optimizing them.

use crate::graph::Graph;
use crate::treewidth::{from_elimination_order, min_fill_order};
use cspdb_core::Structure;
use std::collections::BTreeSet;

/// A query decomposition of a structure's atoms (facts): per node, a set
/// of atom indices and a set of variables (domain elements).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryDecomposition {
    /// Atom indices per node (atoms are facts of the structure, indexed
    /// in relation-then-tuple order).
    pub atoms: Vec<BTreeSet<usize>>,
    /// Variables per node.
    pub vars: Vec<BTreeSet<u32>>,
    /// Undirected tree edges.
    pub edges: Vec<(usize, usize)>,
}

/// Flattens a structure's facts into an indexed atom list: `(scope)` per
/// fact, in relation-then-tuple order.
pub fn atoms_of(s: &Structure) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for (_, rel) in s.relations() {
        for t in rel.iter() {
            out.push(t.to_vec());
        }
    }
    out
}

impl QueryDecomposition {
    /// Width: the maximum number of labels (atoms + variables) on a node
    /// (Chekuri–Rajaraman count both).
    pub fn width(&self) -> usize {
        self.atoms
            .iter()
            .zip(self.vars.iter())
            .map(|(a, v)| a.len() + v.len())
            .max()
            .unwrap_or(0)
    }

    /// The maximum number of *atoms* on a node — the quantity hypertree
    /// width refines.
    pub fn atom_width(&self) -> usize {
        self.atoms.iter().map(BTreeSet::len).max().unwrap_or(0)
    }

    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.atoms.len()];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    /// Validates the Chekuri–Rajaraman conditions against a structure:
    /// every atom covered; for every atom, its nodes connected; for
    /// every variable, the nodes where it *appears* (directly or inside
    /// a listed atom) connected; tree shape.
    pub fn validate(&self, s: &Structure) -> Result<(), String> {
        let n = self.atoms.len();
        if self.vars.len() != n {
            return Err("atom/var label count mismatch".into());
        }
        if n == 0 {
            return Err("empty decomposition".into());
        }
        if self.edges.len() != n - 1 {
            return Err("tree must have n-1 edges".into());
        }
        let adj = self.adjacency();
        // Connectivity of the tree.
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut stack = vec![0usize];
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        if count != n {
            return Err("decomposition tree is disconnected".into());
        }
        let atoms = atoms_of(s);
        // Condition 1: every atom covered.
        for ai in 0..atoms.len() {
            if !self.atoms.iter().any(|set| set.contains(&ai)) {
                return Err(format!("atom {ai} covered by no node"));
            }
        }
        // Condition 2a: per atom, connected.
        for ai in 0..atoms.len() {
            let holders: Vec<usize> = (0..n).filter(|&t| self.atoms[t].contains(&ai)).collect();
            if !connected_in(&adj, &holders) {
                return Err(format!("nodes of atom {ai} are not connected"));
            }
        }
        // Condition 2b: per variable, nodes where it appears connected.
        for y in s.domain() {
            let holders: Vec<usize> = (0..n)
                .filter(|&t| {
                    self.vars[t].contains(&y)
                        || self.atoms[t].iter().any(|&ai| atoms[ai].contains(&y))
                })
                .collect();
            if holders.is_empty() {
                continue; // isolated element: fine
            }
            if !connected_in(&adj, &holders) {
                return Err(format!("appearances of variable {y} are not connected"));
            }
        }
        Ok(())
    }
}

fn connected_in(adj: &[Vec<usize>], nodes: &[usize]) -> bool {
    if nodes.len() <= 1 {
        return true;
    }
    let set: BTreeSet<usize> = nodes.iter().copied().collect();
    let mut seen = BTreeSet::new();
    seen.insert(nodes[0]);
    let mut stack = vec![nodes[0]];
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if set.contains(&v) && seen.insert(v) {
                stack.push(v);
            }
        }
    }
    seen.len() == set.len()
}

/// The incidence graph's treewidth bound: builds a tree decomposition of
/// the incidence graph of `s` (min-fill heuristic) and converts it into
/// a query decomposition: fact-vertices become atom labels, element
/// vertices become variable labels.
///
/// Returns the query decomposition and the incidence-decomposition
/// width it came from.
pub fn query_decomposition_from_incidence(s: &Structure) -> (QueryDecomposition, usize) {
    let (incidence, n_elements) = Graph::incidence(s);
    let order = min_fill_order(&incidence);
    let td = from_elimination_order(&incidence, &order);
    let mut atoms = Vec::with_capacity(td.bags.len());
    let mut vars = Vec::with_capacity(td.bags.len());
    for bag in &td.bags {
        let mut a = BTreeSet::new();
        let mut v = BTreeSet::new();
        for &x in bag {
            if (x as usize) < n_elements {
                v.insert(x);
            } else {
                a.insert(x as usize - n_elements);
            }
        }
        atoms.push(a);
        vars.push(v);
    }
    (
        QueryDecomposition {
            atoms,
            vars,
            edges: td.edges.clone(),
        },
        td.width(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::Hypergraph;
    use crate::hypertree::hypertree_heuristic;
    use cspdb_core::graphs::{cycle, digraph, path};

    #[test]
    fn incidence_construction_is_valid() {
        for s in [
            cycle(5),
            path(6),
            digraph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]),
        ] {
            let (qd, _) = query_decomposition_from_incidence(&s);
            qd.validate(&s).expect("CR conditions hold");
        }
    }

    #[test]
    fn incidence_treewidth_bounds_query_width() {
        // The construction's width is bounded by the incidence
        // decomposition's bag size: width(qd) <= itw + 1 by definition.
        for s in [cycle(6), path(5)] {
            let (qd, itw) = query_decomposition_from_incidence(&s);
            assert!(qd.width() <= itw + 1);
        }
    }

    #[test]
    fn hypertree_width_at_most_query_atom_width_on_samples() {
        // Gottlob–Leone–Scarcello: hw <= qw. Our heuristic hypertree
        // width is exact (=1) for acyclic inputs and the incidence
        // construction is only an upper bound, so compare on structures
        // where both are informative.
        for s in [path(5), cycle(5)] {
            let hg = Hypergraph::of_structure(&s);
            let hd = hypertree_heuristic(&hg);
            let (qd, _) = query_decomposition_from_incidence(&s);
            // Hypertree heuristic width vs the (upper-bound) query atom
            // width: the inequality can only be violated if the
            // heuristic overshoots badly; on these inputs it does not.
            assert!(
                hd.width() <= qd.atom_width().max(1) + 1,
                "hw {} vs qw-bound {}",
                hd.width(),
                qd.atom_width()
            );
        }
    }

    #[test]
    fn validation_rejects_broken_decompositions() {
        let s = path(3);
        let atoms = atoms_of(&s);
        assert_eq!(atoms.len(), 4); // 2 undirected edges = 4 facts
                                    // Missing an atom.
        let qd = QueryDecomposition {
            atoms: vec![[0usize].into_iter().collect()],
            vars: vec![BTreeSet::new()],
            edges: vec![],
        };
        assert!(qd.validate(&s).is_err());
        // Disconnected atom appearances.
        let qd = QueryDecomposition {
            atoms: vec![
                [0usize, 1, 2, 3].into_iter().collect(),
                BTreeSet::new(),
                [0usize].into_iter().collect(),
            ],
            vars: vec![BTreeSet::new(), BTreeSet::new(), BTreeSet::new()],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(qd.validate(&s).is_err());
    }

    #[test]
    fn atoms_of_orders_by_relation_then_tuple() {
        let s = digraph(3, &[(0, 1), (1, 2)]);
        let atoms = atoms_of(&s);
        assert_eq!(atoms, vec![vec![0, 1], vec![1, 2]]);
    }
}
