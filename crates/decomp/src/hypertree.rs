//! Generalized hypertree decompositions (Gottlob–Leone–Scarcello, cited
//! in Section 6 of the paper).
//!
//! A (generalized) hypertree decomposition of a hypergraph pairs every
//! node of a tree with a *bag* `χ` of vertices and a *guard* `λ` — a set
//! of hyperedges whose union covers the bag. Its width is the maximum
//! guard size; acyclic hypergraphs are exactly those of hypertree width 1
//! (the join tree is the decomposition). The paper notes hypertree width
//! is bounded by querywidth and that `CSP(H(k), F)` is tractable; the
//! solving route (join the guard relations per node, then run Yannakakis
//! on the resulting acyclic instance) lives in `cspdb-relalg`.

use crate::hypergraph::{Hypergraph, JoinTree};
use crate::treewidth::TreeDecomposition;
use std::collections::BTreeSet;

/// A generalized hypertree decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypertreeDecomposition {
    /// `χ`: vertex bag per node, sorted.
    pub bags: Vec<Vec<u32>>,
    /// `λ`: guard per node — indices of hyperedges whose union covers
    /// the bag.
    pub guards: Vec<Vec<usize>>,
    /// Undirected tree edges between node indices.
    pub edges: Vec<(usize, usize)>,
}

impl HypertreeDecomposition {
    /// Width: maximum guard size (0 for the empty decomposition).
    pub fn width(&self) -> usize {
        self.guards.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Neighbor lists of the decomposition tree.
    fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.bags.len()];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    /// Validates the generalized-hypertree conditions against `h`:
    ///
    /// 1. every hyperedge is contained in some bag;
    /// 2. for every vertex, the nodes whose bag contains it form a
    ///    connected subtree;
    /// 3. every bag is covered by the union of its guard's hyperedges;
    /// 4. the tree is a tree.
    pub fn validate(&self, h: &Hypergraph) -> Result<(), String> {
        let nb = self.bags.len();
        if self.guards.len() != nb {
            return Err("one guard per bag required".into());
        }
        if nb > 0 && self.edges.len() != nb - 1 {
            return Err("decomposition tree must have n-1 edges".into());
        }
        // Tree connectivity.
        if nb > 0 {
            let adj = self.adjacency();
            let mut seen = vec![false; nb];
            seen[0] = true;
            let mut stack = vec![0usize];
            let mut count = 1;
            while let Some(u) = stack.pop() {
                for &v in &adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        count += 1;
                        stack.push(v);
                    }
                }
            }
            if count != nb {
                return Err("decomposition tree is disconnected".into());
            }
        }
        // 1. Edge coverage.
        for (ei, e) in h.edges().iter().enumerate() {
            let covered = self
                .bags
                .iter()
                .any(|bag| e.iter().all(|v| bag.binary_search(v).is_ok()));
            if !covered {
                return Err(format!("hyperedge {ei} covered by no bag"));
            }
        }
        // 2. Connected subtrees per vertex.
        let adj = self.adjacency();
        for v in 0..h.num_vertices() as u32 {
            let holders: Vec<usize> = (0..nb)
                .filter(|&i| self.bags[i].binary_search(&v).is_ok())
                .collect();
            if holders.len() <= 1 {
                continue;
            }
            let set: BTreeSet<usize> = holders.iter().copied().collect();
            let mut seen = BTreeSet::new();
            seen.insert(holders[0]);
            let mut stack = vec![holders[0]];
            while let Some(u) = stack.pop() {
                for &w in &adj[u] {
                    if set.contains(&w) && seen.insert(w) {
                        stack.push(w);
                    }
                }
            }
            if seen.len() != set.len() {
                return Err(format!("bags of vertex {v} are not connected"));
            }
        }
        // 3. Guard coverage.
        for (i, bag) in self.bags.iter().enumerate() {
            let mut covered: BTreeSet<u32> = BTreeSet::new();
            for &g in &self.guards[i] {
                if g >= h.num_edges() {
                    return Err(format!("guard of node {i} references edge {g}"));
                }
                covered.extend(h.edges()[g].iter().copied());
            }
            for &v in bag {
                if !covered.contains(&v) {
                    return Err(format!("bag vertex {v} of node {i} not guarded"));
                }
            }
        }
        Ok(())
    }

    /// Builds the width-1 decomposition of an acyclic hypergraph from its
    /// join tree: one node per hyperedge, bag = the hyperedge, guard =
    /// itself.
    pub fn from_join_tree(h: &Hypergraph, jt: &JoinTree) -> Self {
        let m = h.num_edges();
        let bags: Vec<Vec<u32>> = h
            .edges()
            .iter()
            .map(|e| e.iter().copied().collect())
            .collect();
        let guards: Vec<Vec<usize>> = (0..m).map(|i| vec![i]).collect();
        let mut edges: Vec<(usize, usize)> = jt
            .parent
            .iter()
            .enumerate()
            .filter_map(|(e, p)| p.map(|p| (e, p)))
            .collect();
        // Join several roots (disconnected hypergraph) into one tree.
        let roots = jt.roots();
        for w in roots.windows(2) {
            edges.push((w[0], w[1]));
        }
        HypertreeDecomposition {
            bags,
            guards,
            edges,
        }
    }

    /// Derives a generalized hypertree decomposition from a tree
    /// decomposition of the hypergraph's primal graph, covering every
    /// bag greedily with hyperedges (classic `set-cover` heuristic).
    /// Vertices that occur in no hyperedge are dropped from bags (they
    /// are unconstrained).
    pub fn from_tree_decomposition(h: &Hypergraph, td: &TreeDecomposition) -> Self {
        let mut bags = Vec::with_capacity(td.bags.len());
        let mut guards = Vec::with_capacity(td.bags.len());
        // Which vertices occur in some hyperedge?
        let mut occurs = vec![false; h.num_vertices()];
        for e in h.edges() {
            for &v in e {
                occurs[v as usize] = true;
            }
        }
        for bag in &td.bags {
            let mut need: BTreeSet<u32> = bag
                .iter()
                .copied()
                .filter(|&v| occurs[v as usize])
                .collect();
            let kept: Vec<u32> = need.iter().copied().collect();
            let mut guard = Vec::new();
            while !need.is_empty() {
                // Greedy: hyperedge covering the most remaining vertices.
                let (best, gain) = (0..h.num_edges())
                    .map(|ei| {
                        (
                            ei,
                            h.edges()[ei].iter().filter(|v| need.contains(v)).count(),
                        )
                    })
                    .max_by_key(|&(ei, gain)| (gain, usize::MAX - ei))
                    .expect("hypergraph has edges if need is nonempty");
                debug_assert!(gain > 0, "every occurring vertex is in some edge");
                guard.push(best);
                for v in h.edges()[best].iter() {
                    need.remove(v);
                }
            }
            bags.push(kept);
            guards.push(guard);
        }
        HypertreeDecomposition {
            bags,
            guards,
            edges: td.edges.clone(),
        }
    }
}

/// Heuristic generalized hypertree width: via the primal graph's min-fill
/// tree decomposition plus greedy bag covers. Returns the decomposition;
/// its [`HypertreeDecomposition::width`] upper-bounds the true
/// (generalized) hypertree width.
pub fn hypertree_heuristic(h: &Hypergraph) -> HypertreeDecomposition {
    // Acyclic hypergraphs get the exact width-1 decomposition.
    if let Some(jt) = h.gyo() {
        return HypertreeDecomposition::from_join_tree(h, &jt);
    }
    let mut primal = crate::graph::Graph::new(h.num_vertices());
    for e in h.edges() {
        let vs: Vec<u32> = e.iter().copied().collect();
        for (i, &a) in vs.iter().enumerate() {
            for &b in &vs[i + 1..] {
                primal.add_edge(a, b);
            }
        }
    }
    let order = crate::treewidth::min_fill_order(&primal);
    let td = from_order_for_hypergraph(&primal, &order);
    HypertreeDecomposition::from_tree_decomposition(h, &td)
}

fn from_order_for_hypergraph(g: &crate::graph::Graph, order: &[u32]) -> TreeDecomposition {
    crate::treewidth::from_elimination_order(g, order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_hypergraph_has_width_one() {
        let h = Hypergraph::from_edges(4, [vec![0, 1], vec![1, 2], vec![2, 3]]);
        let hd = hypertree_heuristic(&h);
        hd.validate(&h).expect("valid decomposition");
        assert_eq!(hd.width(), 1);
    }

    #[test]
    fn triangle_hypergraph_width_two_or_less_heuristic() {
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2], vec![0, 2]]);
        let hd = hypertree_heuristic(&h);
        hd.validate(&h).expect("valid decomposition");
        assert!(hd.width() >= 2, "cyclic needs width >= 2");
        assert!(
            hd.width() <= 2,
            "greedy should cover a triangle bag with 2 edges"
        );
    }

    #[test]
    fn big_covering_edge_gives_width_one() {
        // Cyclic triangle + covering edge is α-acyclic: width 1.
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2], vec![0, 2], vec![0, 1, 2]]);
        let hd = hypertree_heuristic(&h);
        hd.validate(&h).expect("valid");
        assert_eq!(hd.width(), 1);
    }

    #[test]
    fn validation_catches_missing_guard() {
        let h = Hypergraph::from_edges(2, [vec![0, 1]]);
        let hd = HypertreeDecomposition {
            bags: vec![vec![0, 1]],
            guards: vec![vec![]],
            edges: vec![],
        };
        assert!(hd.validate(&h).is_err());
    }

    #[test]
    fn validation_catches_uncovered_hyperedge() {
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2]]);
        let hd = HypertreeDecomposition {
            bags: vec![vec![0, 1]],
            guards: vec![vec![0]],
            edges: vec![],
        };
        assert!(hd.validate(&h).is_err());
    }

    #[test]
    fn grid_like_hypergraph_small_width() {
        // 2x3 grid as binary edges: treewidth 2, so heuristic hypertree
        // width <= 3 (each bag of <=3 vertices covered by <=3 edges);
        // cyclic, so width >= 2.
        let h = Hypergraph::from_edges(
            6,
            [
                vec![0, 1],
                vec![1, 2],
                vec![3, 4],
                vec![4, 5],
                vec![0, 3],
                vec![1, 4],
                vec![2, 5],
            ],
        );
        let hd = hypertree_heuristic(&h);
        hd.validate(&h).expect("valid");
        assert!((2..=3).contains(&hd.width()), "width = {}", hd.width());
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new(0);
        let hd = hypertree_heuristic(&h);
        hd.validate(&h).expect("empty valid");
        assert_eq!(hd.width(), 0);
    }
}
