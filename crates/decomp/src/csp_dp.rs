//! Bounded-treewidth CSP solving by dynamic programming over a tree
//! decomposition (Theorem 6.2 of the paper).
//!
//! The paper proves tractability of `CSP(A(k), F)` by compiling the
//! canonical conjunctive query `φ_A` into a bounded-variable formula
//! (`∃FO^{k+1}`, Proposition 6.1) and evaluating it on **B**. Dynamic
//! programming over a tree decomposition *is* that evaluation, performed
//! bag-by-bag: a bag with `k+1` variables corresponds to the `k+1`
//! variables of the formula, and joining child tables implements the
//! variable re-use that the bounded-variable fragment affords. The
//! per-node cost is `O(|B|^{k+1})`, so the whole run is polynomial for
//! fixed `k` — this is the claim Experiment E9 measures.

use crate::graph::Graph;
use crate::treewidth::{from_elimination_order, min_fill_order_metered, TreeDecomposition};
use cspdb_core::budget::{Budget, ExhaustionReason, Metering, SharedMeter};
use cspdb_core::trace::TraceEvent;
use cspdb_core::{RelId, Structure};
use rayon::prelude::*;
use std::collections::HashMap;

/// Error from the budgeted decomposition DP: either the decomposition
/// does not cover **A**, or the budget ran out (inconclusive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompSolveError {
    /// The supplied decomposition is invalid for the structure.
    Invalid(String),
    /// The budget was exhausted before the DP finished.
    Exhausted(ExhaustionReason),
}

impl std::fmt::Display for DecompSolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompSolveError::Invalid(msg) => write!(f, "invalid decomposition: {msg}"),
            DecompSolveError::Exhausted(r) => write!(f, "budget exhausted: {r}"),
        }
    }
}

impl std::error::Error for DecompSolveError {}

impl From<ExhaustionReason> for DecompSolveError {
    fn from(r: ExhaustionReason) -> Self {
        DecompSolveError::Exhausted(r)
    }
}

/// Overflow-safe bound on the DP table of one bag: `d^|bag|`, or `None`
/// if the bound itself overflows `u64` (which any realistic tuple cap
/// should treat as "too big").
pub fn bag_table_bound(domain_size: u64, bag_size: usize) -> Option<u64> {
    u32::try_from(bag_size)
        .ok()
        .and_then(|e| domain_size.checked_pow(e))
}

/// Solves the homomorphism problem `A -> B` using a tree decomposition of
/// **A**. Returns a homomorphism or `None`.
///
/// # Errors
///
/// Returns an error string if the decomposition is invalid for **A**.
pub fn solve_with_decomposition(
    a: &Structure,
    b: &Structure,
    td: &TreeDecomposition,
) -> Result<Option<Vec<u32>>, String> {
    let mut meter = Budget::unlimited().meter();
    solve_with_decomposition_metered(a, b, td, &mut meter).map_err(|e| match e {
        DecompSolveError::Invalid(msg) => msg,
        DecompSolveError::Exhausted(_) => unreachable!("unlimited budget cannot exhaust"),
    })
}

/// [`solve_with_decomposition`] under a [`Budget`]: one step per bag
/// assignment enumerated, one tuple charged per surviving table row, so
/// both time and memory are governed.
pub fn solve_with_decomposition_budgeted(
    a: &Structure,
    b: &Structure,
    td: &TreeDecomposition,
    budget: &Budget,
) -> Result<Option<Vec<u32>>, DecompSolveError> {
    let mut meter = budget.meter();
    solve_with_decomposition_metered(a, b, td, &mut meter)
}

/// The decomposition tree rooted at bag 0, plus each fact of **A**
/// assigned to one covering bag — everything the DP needs besides the
/// tables themselves.
struct DpSetup {
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// DFS preorder: parents before children.
    order: Vec<usize>,
    /// `depth[i]` = distance from bag `i` to the root.
    depth: Vec<usize>,
    bag_facts: Vec<Vec<(RelId, Vec<u32>)>>,
}

fn dp_setup(a: &Structure, td: &TreeDecomposition) -> DpSetup {
    // Assign each fact of A to one bag that covers it.
    let mut bag_facts: Vec<Vec<(RelId, Vec<u32>)>> = vec![Vec::new(); td.bags.len()];
    for (id, rel) in a.relations() {
        'fact: for t in rel.iter() {
            for (bi, bag) in td.bags.iter().enumerate() {
                if t.iter().all(|x| bag.binary_search(x).is_ok()) {
                    bag_facts[bi].push((id, t.to_vec()));
                    continue 'fact;
                }
            }
            unreachable!("validate_structure guarantees coverage");
        }
    }
    // Root the decomposition tree at 0 and compute a preorder.
    let adj = td.adjacency();
    let nb = td.bags.len();
    let mut parent: Vec<Option<usize>> = vec![None; nb];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); nb];
    let mut depth = vec![0usize; nb];
    let mut order: Vec<usize> = Vec::with_capacity(nb);
    let mut stack = vec![0usize];
    let mut visited = vec![false; nb];
    visited[0] = true;
    while let Some(u) = stack.pop() {
        order.push(u);
        for &v in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                parent[v] = Some(u);
                children[u].push(v);
                depth[v] = depth[u] + 1;
                stack.push(v);
            }
        }
    }
    debug_assert_eq!(order.len(), nb, "decomposition tree is connected");
    DpSetup {
        parent,
        children,
        order,
        depth,
        bag_facts,
    }
}

/// Computes the table of surviving assignments for one bag, given its
/// children's (final) tables. One step is ticked per assignment
/// enumerated, one tuple charged per surviving row. This is the single
/// DP kernel the sequential and parallel solvers share.
fn compute_bag_table<M: Metering>(
    b: &Structure,
    td: &TreeDecomposition,
    setup: &DpSetup,
    node: usize,
    tables: &[Vec<Vec<u32>>],
    meter: &mut M,
) -> Result<Vec<Vec<u32>>, ExhaustionReason> {
    let bag = &td.bags[node];
    // Pre-index child tables by the shared-variable projection:
    // (positions of shared vars in this bag, projection set).
    type ChildIndex = (Vec<usize>, HashMap<Vec<u32>, bool>);
    let mut child_index: Vec<ChildIndex> = Vec::new();
    for &c in &setup.children[node] {
        let shared_pos: Vec<usize> = td.bags[c]
            .iter()
            .enumerate()
            .filter(|(_, v)| bag.binary_search(v).is_ok())
            .map(|(i, _)| i)
            .collect();
        let mut index: HashMap<Vec<u32>, bool> = HashMap::new();
        for row in &tables[c] {
            let key: Vec<u32> = shared_pos.iter().map(|&i| row[i]).collect();
            index.insert(key, true);
        }
        // Positions of the shared variables inside *this* bag, in the
        // same order as shared_pos enumerates the child's bag.
        let shared_vars: Vec<u32> = shared_pos.iter().map(|&i| td.bags[c][i]).collect();
        let my_pos: Vec<usize> = shared_vars
            .iter()
            .map(|v| bag.binary_search(v).expect("shared var in bag"))
            .collect();
        child_index.push((my_pos, index));
    }
    // Enumerate assignments of the bag.
    let d = b.domain_size() as u32;
    let k = bag.len();
    let mut assignment = vec![0u32; k];
    let mut image = Vec::new();
    let mut table = Vec::new();
    'assignments: loop {
        meter.tick()?;
        // Check facts assigned to this bag.
        let ok_facts = setup.bag_facts[node].iter().all(|(id, t)| {
            image.clear();
            for x in t {
                let pos = bag.binary_search(x).expect("fact inside bag");
                image.push(assignment[pos]);
            }
            b.relation(*id).contains(&image)
        });
        if ok_facts {
            // Check each child has a compatible surviving row.
            let ok_children = child_index.iter().all(|(my_pos, index)| {
                let key: Vec<u32> = my_pos.iter().map(|&i| assignment[i]).collect();
                index.contains_key(&key)
            });
            if ok_children {
                meter.charge_tuples(1)?;
                table.push(assignment.clone());
            }
        }
        // Odometer.
        let mut i = k;
        loop {
            if i == 0 {
                break 'assignments;
            }
            i -= 1;
            assignment[i] += 1;
            if assignment[i] < d {
                break;
            }
            assignment[i] = 0;
        }
    }
    meter.tracer().emit_with(|| TraceEvent::DpTable {
        bag: node,
        bag_size: k,
        rows: table.len() as u64,
    });
    Ok(table)
}

/// Top-down witness extraction from the completed bag tables.
fn extract_witness<M: Metering>(
    a: &Structure,
    td: &TreeDecomposition,
    setup: &DpSetup,
    tables: &[Vec<Vec<u32>>],
    meter: &mut M,
) -> Result<Vec<u32>, ExhaustionReason> {
    let n = a.domain_size();
    let nb = td.bags.len();
    let mut h: Vec<Option<u32>> = vec![None; n];
    let mut chosen: Vec<Option<Vec<u32>>> = vec![None; nb];
    for &node in &setup.order {
        meter.tick()?;
        let bag = &td.bags[node];
        let row = match setup.parent[node] {
            None => tables[node][0].clone(),
            Some(p) => {
                let pbag = &td.bags[p];
                let prow = chosen[p].as_ref().expect("parent processed first");
                tables[node]
                    .iter()
                    .find(|row| {
                        bag.iter()
                            .enumerate()
                            .all(|(i, v)| match pbag.binary_search(v) {
                                Ok(j) => row[i] == prow[j],
                                Err(_) => true,
                            })
                    })
                    .expect("survival implies a compatible row")
                    .clone()
            }
        };
        for (i, &v) in bag.iter().enumerate() {
            debug_assert!(h[v as usize].is_none() || h[v as usize] == Some(row[i]));
            h[v as usize] = Some(row[i]);
        }
        chosen[node] = Some(row);
    }
    Ok(h.into_iter()
        .map(|x| x.expect("every element in some bag"))
        .collect())
}

/// Trivial-case screening shared by the sequential and parallel DP
/// drivers: `Err` for an invalid decomposition, `Ok(Some(verdict))`
/// when no DP is needed, `Ok(None)` to proceed.
#[allow(clippy::type_complexity)]
fn dp_precheck(
    a: &Structure,
    b: &Structure,
    td: &TreeDecomposition,
) -> Result<Option<Option<Vec<u32>>>, DecompSolveError> {
    if a.vocabulary() != b.vocabulary() {
        return Err(DecompSolveError::Invalid("vocabulary mismatch".into()));
    }
    td.validate_structure(a)
        .map_err(DecompSolveError::Invalid)?;
    if a.domain_size() == 0 {
        return Ok(Some(Some(vec![])));
    }
    if b.domain_size() == 0 {
        return Ok(Some(None));
    }
    Ok(None)
}

/// Emits the one-per-run [`TraceEvent::Decomposition`] summary shared
/// by the sequential and parallel DP drivers.
fn emit_decomposition<M: Metering>(td: &TreeDecomposition, meter: &mut M) {
    meter.tracer().emit_with(|| TraceEvent::Decomposition {
        width: td.width(),
        bags: td.bags.len(),
        largest_bag: td.bags.iter().map(|b| b.len()).max().unwrap_or(0),
    });
}

/// [`solve_with_decomposition`] under any [`Metering`] enforcer: same
/// contract as [`solve_with_decomposition_budgeted`], but the caller
/// keeps the meter, so resource usage (and the tracer it carries) stays
/// readable afterwards. Emits one [`TraceEvent::Decomposition`] summary
/// and one [`TraceEvent::DpTable`] per bag table materialised.
pub fn solve_with_decomposition_metered<M: Metering>(
    a: &Structure,
    b: &Structure,
    td: &TreeDecomposition,
    meter: &mut M,
) -> Result<Option<Vec<u32>>, DecompSolveError> {
    if let Some(verdict) = dp_precheck(a, b, td)? {
        return Ok(verdict);
    }
    emit_decomposition(td, meter);
    let setup = dp_setup(a, td);
    // Bottom-up: table of surviving bag assignments per node.
    let nb = td.bags.len();
    let mut tables: Vec<Vec<Vec<u32>>> = vec![Vec::new(); nb];
    for &node in setup.order.iter().rev() {
        tables[node] = compute_bag_table(b, td, &setup, node, &tables, meter)?;
        if tables[node].is_empty() {
            return Ok(None);
        }
    }
    let witness = extract_witness(a, td, &setup, &tables, meter)?;
    debug_assert!(cspdb_core::is_homomorphism(&witness, a, b));
    Ok(Some(witness))
}

/// [`solve_with_decomposition_budgeted`] with independent subtrees
/// computed in parallel under a thread-shared budget: bag tables at the
/// same depth depend only on tables one level deeper, so each level's
/// bags run on [`rayon`] workers charging the one [`SharedMeter`]. The
/// verdict and witness are identical to the sequential DP's.
///
/// # Errors
///
/// [`DecompSolveError::Invalid`] if the decomposition does not cover
/// **A**, [`DecompSolveError::Exhausted`] if the shared budget ran out
/// or was cancelled.
pub fn solve_with_decomposition_shared(
    a: &Structure,
    b: &Structure,
    td: &TreeDecomposition,
    meter: &SharedMeter,
) -> Result<Option<Vec<u32>>, DecompSolveError> {
    if let Some(verdict) = dp_precheck(a, b, td)? {
        return Ok(verdict);
    }
    emit_decomposition(td, &mut meter.clone());
    let setup = dp_setup(a, td);
    let nb = td.bags.len();
    let max_depth = setup.depth.iter().copied().max().unwrap_or(0);
    let mut tables: Vec<Vec<Vec<u32>>> = vec![Vec::new(); nb];
    // Bottom-up, level by level (deepest first); bags within a level are
    // independent and parallelise.
    for level in (0..=max_depth).rev() {
        let nodes: Vec<usize> = setup
            .order
            .iter()
            .copied()
            .filter(|&n| setup.depth[n] == level)
            .collect();
        let tables_ref = &tables;
        let setup_ref = &setup;
        let computed: Vec<(usize, Vec<Vec<u32>>)> = nodes
            .into_par_iter()
            .map(move |node| {
                let table =
                    compute_bag_table(b, td, setup_ref, node, tables_ref, &mut meter.clone())?;
                Ok((node, table))
            })
            .collect::<Result<_, ExhaustionReason>>()
            .map_err(DecompSolveError::Exhausted)?;
        let mut any_empty = false;
        for (node, table) in computed {
            any_empty |= table.is_empty();
            tables[node] = table;
        }
        if any_empty {
            return Ok(None);
        }
    }
    let witness = extract_witness(a, td, &setup, &tables, &mut meter.clone())
        .map_err(DecompSolveError::Exhausted)?;
    debug_assert!(cspdb_core::is_homomorphism(&witness, a, b));
    Ok(Some(witness))
}

/// End-to-end bounded-treewidth solve: build the Gaifman graph of **A**,
/// pick a min-fill elimination order, and run the DP. Returns the
/// decomposition width used and the result.
pub fn solve_by_treewidth(a: &Structure, b: &Structure) -> (usize, Option<Vec<u32>>) {
    solve_by_treewidth_budgeted(a, b, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`solve_by_treewidth`] under a [`Budget`]. Planning (min-fill order)
/// and the DP itself draw from one meter, so the budget governs the
/// whole pipeline — important because on large instances the quadratic
/// min-fill pass alone can dwarf a small deadline.
pub fn solve_by_treewidth_budgeted(
    a: &Structure,
    b: &Structure,
    budget: &Budget,
) -> Result<(usize, Option<Vec<u32>>), ExhaustionReason> {
    solve_by_treewidth_metered(a, b, &mut budget.meter())
}

/// [`solve_by_treewidth`] under any [`Metering`] enforcer: same contract
/// as [`solve_by_treewidth_budgeted`], but the caller keeps the meter,
/// so resource usage (and the tracer it carries) stays readable
/// afterwards.
pub fn solve_by_treewidth_metered<M: Metering>(
    a: &Structure,
    b: &Structure,
    meter: &mut M,
) -> Result<(usize, Option<Vec<u32>>), ExhaustionReason> {
    let g = Graph::gaifman(a);
    let order = min_fill_order_metered(&g, meter)?;
    let td = from_elimination_order(&g, &order);
    let res = match solve_with_decomposition_metered(a, b, &td, meter) {
        Ok(res) => res,
        Err(DecompSolveError::Exhausted(r)) => return Err(r),
        Err(DecompSolveError::Invalid(msg)) => {
            unreachable!("constructed decomposition is valid: {msg}")
        }
    };
    Ok((td.width(), res))
}

/// [`solve_by_treewidth_budgeted`] with the DP parallelised per
/// decomposition level under a thread-shared budget (see
/// [`solve_with_decomposition_shared`]). Planning (min-fill order) and
/// the DP draw from the same shared meter.
pub fn solve_by_treewidth_shared(
    a: &Structure,
    b: &Structure,
    meter: &SharedMeter,
) -> Result<(usize, Option<Vec<u32>>), ExhaustionReason> {
    let g = Graph::gaifman(a);
    let order = min_fill_order_metered(&g, &mut meter.clone())?;
    let td = from_elimination_order(&g, &order);
    let res = match solve_with_decomposition_shared(a, b, &td, meter) {
        Ok(res) => res,
        Err(DecompSolveError::Exhausted(r)) => return Err(r),
        Err(DecompSolveError::Invalid(msg)) => {
            unreachable!("constructed decomposition is valid: {msg}")
        }
    };
    Ok((td.width(), res))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{clique, cycle, path};
    use cspdb_core::is_homomorphism;

    #[test]
    fn dp_agrees_on_coloring_problems() {
        // (A, B, expected solvable)
        let cases = [
            (cycle(5), clique(3), true),
            (cycle(5), clique(2), false),
            (cycle(6), clique(2), true),
            (path(7), clique(2), true),
            (cycle(3), clique(3), true),
            (cycle(3), clique(2), false),
        ];
        for (a, b, expected) in cases {
            let (w, res) = solve_by_treewidth(&a, &b);
            assert!(w <= 2, "cycles/paths have treewidth <= 2");
            assert_eq!(res.is_some(), expected, "failed on {a}");
            if let Some(h) = res {
                assert!(is_homomorphism(&h, &a, &b));
            }
        }
    }

    #[test]
    fn dp_handles_isolated_vertices() {
        let voc = cspdb_core::graphs::graph_vocabulary();
        let mut a = cspdb_core::Structure::new(voc, 4);
        a.insert_by_name("E", &[0, 1]).unwrap();
        // Vertices 2 and 3 are isolated.
        let b = clique(2);
        let (_, res) = solve_by_treewidth(&a, &b);
        let h = res.expect("solvable");
        assert!(is_homomorphism(&h, &a, &b));
    }

    #[test]
    fn dp_on_empty_structures() {
        let voc = cspdb_core::graphs::graph_vocabulary();
        let empty = cspdb_core::Structure::new(voc.clone(), 0);
        let (_, res) = solve_by_treewidth(&empty, &clique(2));
        assert_eq!(res, Some(vec![]));
        let a = path(2);
        let empty_b = cspdb_core::Structure::new(voc, 0);
        let (_, res) = solve_by_treewidth(&a, &empty_b);
        assert!(res.is_none());
    }

    #[test]
    fn invalid_decomposition_rejected() {
        let a = cycle(4);
        let b = clique(2);
        let td = TreeDecomposition {
            bags: vec![vec![0, 1]],
            edges: vec![],
        };
        assert!(solve_with_decomposition(&a, &b, &td).is_err());
    }

    #[test]
    fn dp_with_ternary_relations() {
        // One-in-three style structure: T(x,y,z) with B encoding the
        // allowed combinations.
        let voc = cspdb_core::Vocabulary::new([("T", 3)]).unwrap();
        let mut a = cspdb_core::Structure::new(voc.clone(), 5);
        a.insert_by_name("T", &[0, 1, 2]).unwrap();
        a.insert_by_name("T", &[2, 3, 4]).unwrap();
        let mut b = cspdb_core::Structure::new(voc, 2);
        for t in [[1u32, 0, 0], [0, 1, 0], [0, 0, 1]] {
            b.insert_by_name("T", &t).unwrap();
        }
        let (w, res) = solve_by_treewidth(&a, &b);
        assert!(w <= 2);
        let h = res.expect("satisfiable");
        assert!(is_homomorphism(&h, &a, &b));
    }

    #[test]
    fn shared_dp_agrees_with_sequential() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let cases = [
            (cycle(5), clique(3), true),
            (cycle(5), clique(2), false),
            (cycle(6), clique(2), true),
            (path(7), clique(2), true),
        ];
        for (a, b, expected) in cases {
            let (seq_w, seq_res) = solve_by_treewidth(&a, &b);
            let meter = Budget::unlimited().shared_meter();
            let (par_w, par_res) = pool
                .install(|| solve_by_treewidth_shared(&a, &b, &meter))
                .unwrap();
            assert_eq!(par_w, seq_w);
            assert_eq!(par_res.is_some(), expected, "on {a}");
            // The parallel DP is deterministic and must match exactly.
            assert_eq!(par_res, seq_res, "on {a}");
        }
    }

    #[test]
    fn shared_dp_observes_step_limit() {
        let a = cycle(6);
        let b = clique(3);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let meter = Budget::unlimited().with_step_limit(10).shared_meter();
        assert_eq!(
            pool.install(|| solve_by_treewidth_shared(&a, &b, &meter)),
            Err(ExhaustionReason::StepLimitExceeded)
        );
    }

    #[test]
    fn dp_matches_brute_force_on_random_partial_2trees() {
        // Build small series-parallel-ish structures and compare with the
        // core brute-force oracle through the CSP view.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..20 {
            let n = 4 + (next() % 4) as usize;
            let voc = cspdb_core::graphs::graph_vocabulary();
            let mut a = cspdb_core::Structure::new(voc, n);
            // Random partial 2-tree-ish: attach each vertex i >= 2 to two
            // random earlier vertices.
            for i in 2..n as u32 {
                let u = (next() % i as u64) as u32;
                let mut v = (next() % i as u64) as u32;
                if v == u {
                    v = (v + 1) % i;
                }
                a.insert_by_name("E", &[i, u]).unwrap();
                a.insert_by_name("E", &[u, i]).unwrap();
                if next() % 2 == 0 {
                    a.insert_by_name("E", &[i, v]).unwrap();
                    a.insert_by_name("E", &[v, i]).unwrap();
                }
            }
            for b in [clique(2), clique(3)] {
                let (_, res) = solve_by_treewidth(&a, &b);
                let csp = cspdb_core::CspInstance::from_homomorphism(&a, &b).unwrap();
                assert_eq!(res.is_some(), csp.solve_brute_force().is_some());
                if let Some(h) = res {
                    assert!(is_homomorphism(&h, &a, &b));
                }
            }
        }
    }
}
