//! Tree decompositions and treewidth: heuristics and exact computation.
//!
//! The paper (Section 6) defines tree decompositions of relational
//! structures and uses bounded treewidth to obtain tractable CSP classes
//! (Theorem 6.2). The paper cites Bodlaender's linear-time recognition
//! algorithm for fixed `k`; that algorithm is impractical, so — per the
//! substitution table in DESIGN.md — we provide:
//!
//! * elimination-order heuristics (min-degree, min-fill) that produce
//!   *valid* decompositions whose width upper-bounds the treewidth, and
//! * an exact branch-and-bound over elimination orders (with memoization
//!   on eliminated-vertex bitmasks) for graphs with at most 64 vertices,
//!
//! both returning certificates that [`TreeDecomposition::validate`]
//! checks independently.

use crate::graph::Graph;
use cspdb_core::budget::{Budget, ExhaustionReason, Meter, Metering, SharedMeter};
use cspdb_core::Structure;
use std::collections::{BTreeSet, HashSet};

/// A tree decomposition: bags of vertices connected by tree edges.
///
/// Condition numbering follows the paper: (1) bags are subsets of the
/// domain, (2) every fact/edge is covered by some bag, (3) the bags
/// containing any vertex form a connected subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeDecomposition {
    /// Vertex sets, sorted ascending.
    pub bags: Vec<Vec<u32>>,
    /// Undirected tree edges between bag indices.
    pub edges: Vec<(usize, usize)>,
}

impl TreeDecomposition {
    /// Width: maximum bag size minus one (−1 conventionally for an empty
    /// decomposition, reported as 0-size saturating).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Neighbor lists of the decomposition tree.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.bags.len()];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        adj
    }

    /// Validates the decomposition against a graph:
    /// the tree is a tree (connected, acyclic, when nonempty), every
    /// vertex appears in a bag, every edge is covered by a bag, and each
    /// vertex's bags form a subtree.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        let nb = self.bags.len();
        // Tree shape.
        if nb > 0 {
            if self.edges.len() != nb - 1 {
                return Err(format!(
                    "tree must have {} edges, found {}",
                    nb - 1,
                    self.edges.len()
                ));
            }
            // Connectivity of the bag tree.
            let adj = self.adjacency();
            let mut seen = vec![false; nb];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut count = 1;
            while let Some(u) = stack.pop() {
                for &v in &adj[u] {
                    if !seen[v] {
                        seen[v] = true;
                        count += 1;
                        stack.push(v);
                    }
                }
            }
            if count != nb {
                return Err("bag tree is disconnected".into());
            }
        }
        let n = g.num_vertices();
        // Condition 1 + vertex coverage.
        let mut holder: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, bag) in self.bags.iter().enumerate() {
            for &v in bag {
                if v as usize >= n {
                    return Err(format!("bag {i} mentions vertex {v} out of range"));
                }
                holder[v as usize].push(i);
            }
        }
        for (v, bags_of_v) in holder.iter().enumerate() {
            if bags_of_v.is_empty() {
                return Err(format!("vertex {v} is in no bag"));
            }
        }
        // Condition 2: edge coverage.
        for (u, v) in g.edges() {
            let covered = self
                .bags
                .iter()
                .any(|bag| bag.binary_search(&u).is_ok() && bag.binary_search(&v).is_ok());
            if !covered {
                return Err(format!("edge ({u},{v}) covered by no bag"));
            }
        }
        // Condition 3: connected subtrees.
        let adj = self.adjacency();
        for (v, bags_of_v) in holder.iter().enumerate() {
            let mine: HashSet<usize> = bags_of_v.iter().copied().collect();
            let start = bags_of_v[0];
            let mut seen = HashSet::new();
            seen.insert(start);
            let mut stack = vec![start];
            while let Some(b) = stack.pop() {
                for &c in &adj[b] {
                    if mine.contains(&c) && seen.insert(c) {
                        stack.push(c);
                    }
                }
            }
            if seen.len() != mine.len() {
                return Err(format!("bags of vertex {v} are not connected"));
            }
        }
        Ok(())
    }

    /// Validates against a relational structure per the paper's
    /// definition: every tuple of every relation must be contained in some
    /// bag, every element in some bag, subtrees connected. (Uses the
    /// Gaifman graph for conditions 1 and 3 and checks tuple coverage
    /// directly.)
    pub fn validate_structure(&self, s: &Structure) -> Result<(), String> {
        self.validate(&Graph::gaifman(s))?;
        for (_, rel) in s.relations() {
            for t in rel.iter() {
                let covered = self
                    .bags
                    .iter()
                    .any(|bag| t.iter().all(|x| bag.binary_search(x).is_ok()));
                if !covered {
                    return Err(format!("tuple {t:?} covered by no bag"));
                }
            }
        }
        Ok(())
    }
}

/// Builds a tree decomposition from an elimination order by simulating
/// the elimination game: eliminating `v` creates the bag
/// `{v} ∪ N_current(v)` and turns `N_current(v)` into a clique.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the vertices.
pub fn from_elimination_order(g: &Graph, order: &[u32]) -> TreeDecomposition {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order must cover all vertices");
    let mut position = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        assert!(
            position[v as usize] == usize::MAX,
            "repeated vertex in order"
        );
        position[v as usize] = i;
    }
    if n == 0 {
        return TreeDecomposition {
            bags: vec![],
            edges: vec![],
        };
    }
    let mut adj: Vec<BTreeSet<u32>> = (0..n as u32).map(|v| g.neighbors(v).collect()).collect();
    let mut bags: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut bag_of_vertex = vec![usize::MAX; n]; // bag created when vertex eliminated
    for (step, &v) in order.iter().enumerate() {
        let neighbors: Vec<u32> = adj[v as usize].iter().copied().collect();
        let mut bag = neighbors.clone();
        bag.push(v);
        bag.sort_unstable();
        bag_of_vertex[v as usize] = step;
        bags.push(bag);
        // Make neighbors a clique and remove v.
        for (i, &a) in neighbors.iter().enumerate() {
            adj[a as usize].remove(&v);
            for &b in &neighbors[i + 1..] {
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        }
    }
    // Connect each bag to the bag of the earliest-eliminated later
    // neighbor; bags with no later neighbor attach to the final bag.
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for (step, &v) in order.iter().enumerate() {
        let bag = &bags[step];
        let next = bag
            .iter()
            .filter(|&&u| u != v)
            .map(|&u| position[u as usize])
            .min();
        match next {
            Some(p) => edges.push((step, p)),
            None => {
                if step + 1 < n {
                    edges.push((step, n - 1));
                }
            }
        }
    }
    TreeDecomposition { bags, edges }
}

/// Min-degree elimination order heuristic.
pub fn min_degree_order(g: &Graph) -> Vec<u32> {
    elimination_heuristic(g, |adj, v| adj[v as usize].len())
}

/// Min-fill elimination order heuristic (number of missing edges among
/// current neighbors).
pub fn min_fill_order(g: &Graph) -> Vec<u32> {
    min_fill_order_budgeted(g, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// [`min_fill_order`] under a [`Budget`]: even *planning* a
/// decomposition is quadratic-plus in the vertex count, so tiered
/// strategies budget it like any other phase. One step is ticked per
/// candidate score evaluation.
pub fn min_fill_order_budgeted(g: &Graph, budget: &Budget) -> Result<Vec<u32>, ExhaustionReason> {
    let mut meter = budget.meter();
    min_fill_order_metered(g, &mut meter)
}

/// [`min_fill_order`] charging a thread-shared [`SharedMeter`]: used
/// when decomposition planning runs inside a parallel portfolio under
/// one global budget.
pub fn min_fill_order_shared(g: &Graph, meter: &SharedMeter) -> Result<Vec<u32>, ExhaustionReason> {
    min_fill_order_metered(g, &mut meter.clone())
}

/// Generic-meter core of [`min_fill_order_budgeted`]: charges the
/// supplied [`Metering`] implementation instead of owning a fresh meter,
/// so callers can pool planning with downstream DP on one budget slice.
pub fn min_fill_order_metered<M: Metering>(
    g: &Graph,
    meter: &mut M,
) -> Result<Vec<u32>, ExhaustionReason> {
    elimination_heuristic_budgeted(g, meter, fill_score)
}

/// Min-fill score: missing edges among the current neighbors of `v`.
fn fill_score(adj: &[BTreeSet<u32>], v: u32) -> usize {
    let ns: Vec<u32> = adj[v as usize].iter().copied().collect();
    let mut fill = 0usize;
    for (i, &a) in ns.iter().enumerate() {
        for &b in &ns[i + 1..] {
            if !adj[a as usize].contains(&b) {
                fill += 1;
            }
        }
    }
    fill
}

fn elimination_heuristic(g: &Graph, score: impl Fn(&[BTreeSet<u32>], u32) -> usize) -> Vec<u32> {
    elimination_heuristic_budgeted(g, &mut Budget::unlimited().meter(), score)
        .expect("unlimited budget cannot exhaust")
}

fn elimination_heuristic_budgeted<M: Metering>(
    g: &Graph,
    meter: &mut M,
    score: impl Fn(&[BTreeSet<u32>], u32) -> usize,
) -> Result<Vec<u32>, ExhaustionReason> {
    let n = g.num_vertices();
    let mut adj: Vec<BTreeSet<u32>> = (0..n as u32).map(|v| g.neighbors(v).collect()).collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best: Option<(usize, u32)> = None;
        for v in (0..n as u32).filter(|&v| alive[v as usize]) {
            meter.tick()?;
            let key = (score(&adj, v), v);
            if best.map(|b| key < b).unwrap_or(true) {
                best = Some(key);
            }
        }
        let (_, v) = best.expect("some vertex alive");
        order.push(v);
        alive[v as usize] = false;
        let ns: Vec<u32> = adj[v as usize].iter().copied().collect();
        for (i, &a) in ns.iter().enumerate() {
            adj[a as usize].remove(&v);
            for &b in &ns[i + 1..] {
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        }
        adj[v as usize].clear();
    }
    Ok(order)
}

/// Width of the decomposition induced by an elimination order, without
/// materializing the decomposition.
pub fn order_width(g: &Graph, order: &[u32]) -> usize {
    let n = g.num_vertices();
    let mut adj: Vec<BTreeSet<u32>> = (0..n as u32).map(|v| g.neighbors(v).collect()).collect();
    let mut width = 0usize;
    for &v in order {
        let ns: Vec<u32> = adj[v as usize].iter().copied().collect();
        width = width.max(ns.len());
        for (i, &a) in ns.iter().enumerate() {
            adj[a as usize].remove(&v);
            for &b in &ns[i + 1..] {
                adj[a as usize].insert(b);
                adj[b as usize].insert(a);
            }
        }
        adj[v as usize].clear();
    }
    width
}

/// Heuristic treewidth upper bound: the better of min-degree and
/// min-fill, returned with its decomposition.
pub fn heuristic_decomposition(g: &Graph) -> TreeDecomposition {
    heuristic_decomposition_budgeted(g, &Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// [`heuristic_decomposition`] under a [`Budget`]. Both elimination
/// heuristics draw from the same meter, so the budget bounds the whole
/// planning phase rather than each heuristic separately.
pub fn heuristic_decomposition_budgeted(
    g: &Graph,
    budget: &Budget,
) -> Result<TreeDecomposition, ExhaustionReason> {
    let mut meter = budget.meter();
    let o1 = elimination_heuristic_budgeted(g, &mut meter, |adj, v| adj[v as usize].len())?;
    let o2 = elimination_heuristic_budgeted(g, &mut meter, fill_score)?;
    let order = if order_width(g, &o1) <= order_width(g, &o2) {
        o1
    } else {
        o2
    };
    Ok(from_elimination_order(g, &order))
}

/// Exact treewidth by iterative deepening over elimination orders with
/// memoization on the set of eliminated vertices. Only supports graphs
/// with at most 64 vertices.
///
/// Returns `(treewidth, witness elimination order)`.
///
/// # Panics
///
/// Panics if the graph has more than 64 vertices.
pub fn exact_treewidth(g: &Graph) -> (usize, Vec<u32>) {
    exact_treewidth_budgeted(g, &Budget::unlimited()).expect("unlimited budget cannot exhaust")
}

/// [`exact_treewidth`] under a [`Budget`]: the branch-and-bound over
/// elimination orders is worst-case exponential, so one step is ticked
/// per candidate elimination attempt and the deadline is honored at
/// amortized checkpoints. `Err` means inconclusive — no bound on the
/// treewidth was established before the budget ran out.
///
/// # Panics
///
/// Panics if the graph has more than 64 vertices.
pub fn exact_treewidth_budgeted(
    g: &Graph,
    budget: &Budget,
) -> Result<(usize, Vec<u32>), ExhaustionReason> {
    let n = g.num_vertices();
    assert!(n <= 64, "exact treewidth limited to 64 vertices");
    if n == 0 {
        return Ok((0, vec![]));
    }
    let mut meter = budget.meter();
    let ub_order = elimination_heuristic_budgeted(g, &mut meter, fill_score)?;
    let ub = order_width(g, &ub_order);
    // Lower bound: maximum over subgraph minimum degrees (degeneracy).
    let lb = degeneracy(g);
    for k in lb..=ub {
        let mut failed: HashSet<u64> = HashSet::new();
        let mut order = Vec::with_capacity(n);
        if feasible(g, k, 0u64, &mut order, &mut failed, &mut meter)? {
            return Ok((k, order));
        }
    }
    Ok((ub, ub_order))
}

/// Degeneracy: a classical treewidth lower bound.
fn degeneracy(g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut alive: Vec<bool> = vec![true; n];
    let mut degree: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    let mut best = 0usize;
    for _ in 0..n {
        let v = (0..n)
            .filter(|&v| alive[v])
            .min_by_key(|&v| degree[v])
            .expect("some vertex alive");
        best = best.max(degree[v]);
        alive[v] = false;
        for u in g.neighbors(v as u32) {
            if alive[u as usize] {
                degree[u as usize] -= 1;
            }
        }
    }
    best
}

/// Current neighborhood of `v` given the eliminated-set mask: the
/// non-eliminated vertices reachable from `v` through eliminated ones.
fn current_neighbors(g: &Graph, v: u32, eliminated: u64) -> Vec<u32> {
    let mut out = Vec::new();
    let mut seen = 1u64 << v;
    let mut stack = vec![v];
    while let Some(u) = stack.pop() {
        for w in g.neighbors(u) {
            if seen & (1 << w) != 0 {
                continue;
            }
            seen |= 1 << w;
            if eliminated & (1 << w) != 0 {
                stack.push(w);
            } else {
                out.push(w);
            }
        }
    }
    out
}

fn feasible(
    g: &Graph,
    k: usize,
    eliminated: u64,
    order: &mut Vec<u32>,
    failed: &mut HashSet<u64>,
    meter: &mut Meter,
) -> Result<bool, ExhaustionReason> {
    let n = g.num_vertices();
    let remaining = n - eliminated.count_ones() as usize;
    if remaining <= k + 1 {
        // Eliminate the rest in any order: bags have size <= k+1.
        for v in 0..n as u32 {
            if eliminated & (1 << v) == 0 {
                order.push(v);
            }
        }
        return Ok(true);
    }
    if failed.contains(&eliminated) {
        return Ok(false);
    }
    for v in 0..n as u32 {
        if eliminated & (1 << v) != 0 {
            continue;
        }
        meter.tick()?;
        let ns = current_neighbors(g, v, eliminated);
        if ns.len() <= k {
            order.push(v);
            if feasible(g, k, eliminated | (1 << v), order, failed, meter)? {
                return Ok(true);
            }
            order.pop();
        }
    }
    failed.insert(eliminated);
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32).map(|i| (i, (i + 1) % n as u32)))
    }

    fn complete_graph(n: usize) -> Graph {
        Graph::from_edges(
            n,
            (0..n as u32).flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j))),
        )
    }

    fn grid_graph(rows: usize, cols: usize) -> Graph {
        let mut edges = Vec::new();
        let at = |r: usize, c: usize| (r * cols + c) as u32;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((at(r, c), at(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((at(r, c), at(r + 1, c)));
                }
            }
        }
        Graph::from_edges(rows * cols, edges)
    }

    #[test]
    fn elimination_order_yields_valid_decomposition() {
        for g in [cycle_graph(6), complete_graph(4), grid_graph(3, 3)] {
            for order in [min_degree_order(&g), min_fill_order(&g)] {
                let td = from_elimination_order(&g, &order);
                td.validate(&g).expect("valid decomposition");
                assert_eq!(order_width(&g, &order), td.width());
            }
        }
    }

    #[test]
    fn known_treewidths_exact() {
        assert_eq!(exact_treewidth(&Graph::new(1)).0, 0);
        assert_eq!(exact_treewidth(&Graph::from_edges(2, [(0, 1)])).0, 1);
        assert_eq!(exact_treewidth(&cycle_graph(5)).0, 2);
        assert_eq!(exact_treewidth(&complete_graph(5)).0, 4);
        assert_eq!(exact_treewidth(&grid_graph(3, 3)).0, 3);
        assert_eq!(exact_treewidth(&grid_graph(2, 5)).0, 2);
        // Trees have treewidth 1.
        let tree = Graph::from_edges(6, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        assert_eq!(exact_treewidth(&tree).0, 1);
    }

    #[test]
    fn exact_witness_is_consistent() {
        for g in [cycle_graph(7), grid_graph(3, 4), complete_graph(4)] {
            let (w, order) = exact_treewidth(&g);
            assert_eq!(order_width(&g, &order), w);
            let td = from_elimination_order(&g, &order);
            td.validate(&g).expect("exact witness validates");
            assert_eq!(td.width(), w);
        }
    }

    #[test]
    fn heuristics_upper_bound_exact() {
        for g in [cycle_graph(8), grid_graph(3, 3), complete_graph(5)] {
            let td = heuristic_decomposition(&g);
            td.validate(&g).expect("heuristic decomposition validates");
            let (w, _) = exact_treewidth(&g);
            assert!(td.width() >= w);
        }
    }

    #[test]
    fn validate_structure_checks_tuples() {
        let voc = cspdb_core::Vocabulary::new([("T", 3)]).unwrap();
        let mut s = cspdb_core::Structure::new(voc, 3);
        s.insert_by_name("T", &[0, 1, 2]).unwrap();
        let good = TreeDecomposition {
            bags: vec![vec![0, 1, 2]],
            edges: vec![],
        };
        good.validate_structure(&s).expect("covers the tuple");
        let bad = TreeDecomposition {
            bags: vec![vec![0, 1], vec![1, 2], vec![0, 2]],
            edges: vec![(0, 1), (1, 2)],
        };
        // Pairwise covered (so Gaifman validation passes) but the ternary
        // tuple is not inside any single bag... except the Gaifman
        // subtree condition fails first for vertex 0. Either way: error.
        assert!(bad.validate_structure(&s).is_err());
    }

    #[test]
    fn validation_rejects_broken_decompositions() {
        let g = cycle_graph(4);
        // Missing vertex.
        let td = TreeDecomposition {
            bags: vec![vec![0, 1], vec![1, 2]],
            edges: vec![(0, 1)],
        };
        assert!(td.validate(&g).is_err());
        // Uncovered edge.
        let td = TreeDecomposition {
            bags: vec![vec![0, 1], vec![1, 2], vec![2, 3]],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(td.validate(&g).is_err()); // edge (3,0) uncovered
                                           // Disconnected vertex subtree.
        let g2 = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let td = TreeDecomposition {
            bags: vec![vec![0, 1], vec![1, 2], vec![0]],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(td.validate(&g2).is_err());
    }

    #[test]
    fn empty_graph_decomposition() {
        let g = Graph::new(0);
        let td = from_elimination_order(&g, &[]);
        td.validate(&g).expect("empty is valid");
        assert_eq!(td.width(), 0);
    }

    #[test]
    fn disconnected_graph_still_forms_tree() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let order = min_degree_order(&g);
        let td = from_elimination_order(&g, &order);
        td.validate(&g)
            .expect("decomposition tree must be connected");
    }
}
