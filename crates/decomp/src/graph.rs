//! Simple undirected graphs and the Gaifman / incidence graphs of
//! relational structures.
//!
//! Treewidth is a property of graphs; the paper lifts it to relational
//! structures (Section 6) through the *Gaifman graph* (also "primal
//! graph"): vertices are the domain elements, with an edge between two
//! elements whenever they co-occur in some fact. The *incidence graph* is
//! the bipartite graph between facts and the elements they mention, used
//! by Chekuri–Rajaraman's querywidth bound discussed in Section 6.

use cspdb_core::Structure;
use std::collections::BTreeSet;

/// A simple undirected graph on vertices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<BTreeSet<u32>>,
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![BTreeSet::new(); n],
        }
    }

    /// Builds a graph from an edge list (loops ignored, duplicates ok).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Adds an undirected edge; loops are silently ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "endpoint out of range"
        );
        if u == v {
            return;
        }
        self.adj[u as usize].insert(v);
        self.adj[v as usize].insert(u);
    }

    /// True if `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].contains(&v)
    }

    /// Neighbors of `v` in increasing order.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.adj[v as usize].iter().copied()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// All edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, ns)| {
            ns.iter()
                .copied()
                .filter(move |&v| (u as u32) < v)
                .map(move |v| (u as u32, v))
        })
    }

    /// True if `vertices` induces a clique.
    pub fn is_clique(&self, vertices: &[u32]) -> bool {
        vertices.iter().enumerate().all(|(i, &u)| {
            vertices[i + 1..]
                .iter()
                .all(|&v| u == v || self.has_edge(u, v))
        })
    }

    /// The Gaifman (primal) graph of a structure: elements are adjacent
    /// iff they co-occur in a fact.
    pub fn gaifman(s: &Structure) -> Graph {
        let mut g = Graph::new(s.domain_size());
        for (_, rel) in s.relations() {
            for t in rel.iter() {
                for i in 0..t.len() {
                    for j in (i + 1)..t.len() {
                        g.add_edge(t[i], t[j]);
                    }
                }
            }
        }
        g
    }

    /// The incidence graph of a structure: vertices `0..n` are the domain
    /// elements and vertices `n..n+m` are the facts; a fact is adjacent to
    /// every element it mentions. Returns the graph and the number of
    /// element vertices `n`.
    pub fn incidence(s: &Structure) -> (Graph, usize) {
        let n = s.domain_size();
        let m: usize = s.fact_count();
        let mut g = Graph::new(n + m);
        let mut fact_idx = n as u32;
        for (_, rel) in s.relations() {
            for t in rel.iter() {
                for &x in t {
                    g.add_edge(x, fact_idx);
                }
                fact_idx += 1;
            }
        }
        (g, n)
    }

    /// Connected components as vertex lists.
    pub fn components(&self) -> Vec<Vec<u32>> {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n as u32 {
            if seen[start as usize] {
                continue;
            }
            let mut comp = vec![start];
            seen[start as usize] = true;
            let mut stack = vec![start];
            while let Some(u) = stack.pop() {
                for v in self.neighbors(u) {
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        comp.push(v);
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{cycle, digraph};
    use cspdb_core::{Structure, Vocabulary};

    #[test]
    fn basic_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (1, 2), (3, 3)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn gaifman_of_ternary_fact_is_triangle() {
        let voc = Vocabulary::new([("T", 3)]).unwrap();
        let mut s = Structure::new(voc, 4);
        s.insert_by_name("T", &[0, 1, 2]).unwrap();
        let g = Graph::gaifman(&s);
        assert!(g.is_clique(&[0, 1, 2]));
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn gaifman_of_cycle_is_cycle() {
        let g = Graph::gaifman(&cycle(5));
        assert_eq!(g.num_edges(), 5);
        for v in 0..5 {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn incidence_graph_shape() {
        let s = digraph(3, &[(0, 1), (1, 2)]);
        let (g, n) = Graph::incidence(&s);
        assert_eq!(n, 3);
        assert_eq!(g.num_vertices(), 5);
        // Each fact vertex has degree 2 (its two endpoints).
        assert_eq!(g.degree(3), 2);
        assert_eq!(g.degree(4), 2);
    }

    #[test]
    fn components_found() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
        let comps = g.components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn clique_check() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2)]);
        assert!(g.is_clique(&[0, 1, 2]));
        assert!(!g.is_clique(&[0, 1, 3]));
        assert!(g.is_clique(&[2]));
        assert!(g.is_clique(&[]));
    }
}
