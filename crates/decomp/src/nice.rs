//! Nice tree decompositions.
//!
//! A *nice* tree decomposition normalizes an arbitrary rooted tree
//! decomposition into nodes of four shapes — Leaf (empty bag), Introduce
//! (adds one vertex), Forget (removes one vertex), Join (two children
//! with identical bags) — the form in which dynamic programs over
//! decompositions (Theorem 6.2) are usually stated and proved. The
//! transformation preserves width.

use crate::treewidth::TreeDecomposition;
use cspdb_core::Structure;

/// The shape of a nice-decomposition node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NiceNode {
    /// A leaf with an empty bag.
    Leaf,
    /// Introduces `vertex` over the single child.
    Introduce {
        /// The added vertex.
        vertex: u32,
        /// Child node index.
        child: usize,
    },
    /// Forgets `vertex` from the single child.
    Forget {
        /// The removed vertex.
        vertex: u32,
        /// Child node index.
        child: usize,
    },
    /// Joins two children with identical bags.
    Join {
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
    },
}

/// A nice tree decomposition: nodes in post-order-compatible indexing
/// (children have smaller indices than parents), with the root last.
#[derive(Debug, Clone)]
pub struct NiceDecomposition {
    /// The node shapes.
    pub nodes: Vec<NiceNode>,
    /// The bag of each node (sorted).
    pub bags: Vec<Vec<u32>>,
}

impl NiceDecomposition {
    /// The root node index (always the last node).
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Width (max bag size − 1).
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Structural validation: shapes consistent with bags, children
    /// precede parents, root bag empty (fully forgotten), and every
    /// vertex of `0..n` introduced somewhere iff it appears.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.len() != self.bags.len() {
            return Err("node/bag count mismatch".into());
        }
        if self.nodes.is_empty() {
            return Err("empty nice decomposition".into());
        }
        let mut used_as_child = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                NiceNode::Leaf => {
                    if !self.bags[i].is_empty() {
                        return Err(format!("leaf {i} has a nonempty bag"));
                    }
                }
                NiceNode::Introduce { vertex, child } => {
                    if *child >= i {
                        return Err(format!("node {i}: child {child} not before parent"));
                    }
                    let mut expect = self.bags[*child].clone();
                    expect.push(*vertex);
                    expect.sort_unstable();
                    if expect != self.bags[i] || self.bags[*child].binary_search(vertex).is_ok() {
                        return Err(format!("node {i}: bad introduce of {vertex}"));
                    }
                    used_as_child[*child] = true;
                }
                NiceNode::Forget { vertex, child } => {
                    if *child >= i {
                        return Err(format!("node {i}: child {child} not before parent"));
                    }
                    let mut expect = self.bags[i].clone();
                    expect.push(*vertex);
                    expect.sort_unstable();
                    if expect != self.bags[*child] || self.bags[i].binary_search(vertex).is_ok() {
                        return Err(format!("node {i}: bad forget of {vertex}"));
                    }
                    used_as_child[*child] = true;
                }
                NiceNode::Join { left, right } => {
                    if *left >= i || *right >= i || left == right {
                        return Err(format!("node {i}: bad join children"));
                    }
                    if self.bags[*left] != self.bags[i] || self.bags[*right] != self.bags[i] {
                        return Err(format!("node {i}: join bags differ"));
                    }
                    used_as_child[*left] = true;
                    used_as_child[*right] = true;
                }
            }
        }
        // Exactly one root (the last node), everything else consumed.
        for (i, used) in used_as_child.iter().enumerate() {
            if i != self.nodes.len() - 1 && !used {
                return Err(format!("node {i} is not reachable from the root"));
            }
        }
        if used_as_child[self.nodes.len() - 1] {
            return Err("root used as a child".into());
        }
        if !self.bags[self.root()].is_empty() {
            return Err("root bag must be empty".into());
        }
        Ok(())
    }
}

/// Converts a tree decomposition into a nice one of the same width.
///
/// The construction roots the tree at bag 0, joins multi-child nodes
/// pairwise, and interpolates Introduce/Forget chains between adjacent
/// bags; a final Forget chain empties the root.
///
/// # Panics
///
/// Panics if `td` has no bags (use a single empty leaf for empty
/// graphs: `TreeDecomposition { bags: vec![vec![]], edges: vec![] }`).
pub fn make_nice(td: &TreeDecomposition) -> NiceDecomposition {
    assert!(!td.bags.is_empty(), "need at least one bag");
    let adj = td.adjacency();
    let mut out = NiceDecomposition {
        nodes: Vec::new(),
        bags: Vec::new(),
    };
    let top = build_nice(td, &adj, 0, usize::MAX, &mut out);
    // Forget everything remaining in bag 0 to reach an empty root.
    let mut current = top;
    let mut bag = out.bags[current].clone();
    while let Some(&v) = bag.last() {
        bag.pop();
        out.nodes.push(NiceNode::Forget {
            vertex: v,
            child: current,
        });
        out.bags.push(bag.clone());
        current = out.nodes.len() - 1;
    }
    debug_assert!(out.validate().is_ok(), "{:?}", out.validate());
    out
}

/// Recursively emits a nice subtree for `node` and returns the index of
/// the emitted node whose bag equals `td.bags[node]`.
fn build_nice(
    td: &TreeDecomposition,
    adj: &[Vec<usize>],
    node: usize,
    parent: usize,
    out: &mut NiceDecomposition,
) -> usize {
    let my_bag = &td.bags[node];
    let children: Vec<usize> = adj[node].iter().copied().filter(|&c| c != parent).collect();
    // Each child subtree is morphed to have bag = my_bag via a
    // Forget/Introduce chain; then children are joined pairwise.
    let mut arms: Vec<usize> = Vec::new();
    for c in children {
        let c_top = build_nice(td, adj, c, node, out);
        let morphed = morph(out, c_top, my_bag);
        arms.push(morphed);
    }
    match arms.len() {
        0 => {
            // Build my bag from a fresh leaf by introduces.
            out.nodes.push(NiceNode::Leaf);
            out.bags.push(vec![]);
            let mut current = out.nodes.len() - 1;
            let mut bag: Vec<u32> = Vec::new();
            for &v in my_bag {
                bag.push(v);
                bag.sort_unstable();
                out.nodes.push(NiceNode::Introduce {
                    vertex: v,
                    child: current,
                });
                out.bags.push(bag.clone());
                current = out.nodes.len() - 1;
            }
            current
        }
        1 => arms[0],
        _ => {
            let mut current = arms[0];
            for &arm in &arms[1..] {
                out.nodes.push(NiceNode::Join {
                    left: current,
                    right: arm,
                });
                out.bags.push(my_bag.clone());
                current = out.nodes.len() - 1;
            }
            current
        }
    }
}

/// Emits a Forget/Introduce chain from the node `from` (with its bag)
/// to a node whose bag is exactly `target`; returns its index.
fn morph(out: &mut NiceDecomposition, from: usize, target: &[u32]) -> usize {
    let mut current = from;
    let mut bag = out.bags[from].clone();
    // Forget extras first (keeps bags small: width never exceeded).
    let extras: Vec<u32> = bag
        .iter()
        .copied()
        .filter(|v| target.binary_search(v).is_err())
        .collect();
    for v in extras {
        bag.retain(|&x| x != v);
        out.nodes.push(NiceNode::Forget {
            vertex: v,
            child: current,
        });
        out.bags.push(bag.clone());
        current = out.nodes.len() - 1;
    }
    // Introduce what is missing.
    let missing: Vec<u32> = target
        .iter()
        .copied()
        .filter(|v| bag.binary_search(v).is_err())
        .collect();
    for v in missing {
        bag.push(v);
        bag.sort_unstable();
        out.nodes.push(NiceNode::Introduce {
            vertex: v,
            child: current,
        });
        out.bags.push(bag.clone());
        current = out.nodes.len() - 1;
    }
    current
}

/// Checks the three tree-decomposition conditions of the paper against a
/// structure, for a nice decomposition (delegates through the flat
/// form).
pub fn nice_validate_structure(nice: &NiceDecomposition, s: &Structure) -> Result<(), String> {
    nice.validate()?;
    // Convert to a flat TreeDecomposition and reuse its validator.
    let mut edges = Vec::new();
    for (i, node) in nice.nodes.iter().enumerate() {
        match node {
            NiceNode::Leaf => {}
            NiceNode::Introduce { child, .. } | NiceNode::Forget { child, .. } => {
                edges.push((i, *child));
            }
            NiceNode::Join { left, right } => {
                edges.push((i, *left));
                edges.push((i, *right));
            }
        }
    }
    let flat = TreeDecomposition {
        bags: nice.bags.clone(),
        edges,
    };
    flat.validate_structure(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::treewidth::{from_elimination_order, min_fill_order};
    use cspdb_core::graphs::{cycle, path};

    fn nice_of(s: &cspdb_core::Structure) -> NiceDecomposition {
        let g = Graph::gaifman(s);
        let order = min_fill_order(&g);
        let td = from_elimination_order(&g, &order);
        make_nice(&td)
    }

    #[test]
    fn nice_decomposition_validates_and_keeps_width() {
        for s in [cycle(5), cycle(8), path(6)] {
            let g = Graph::gaifman(&s);
            let order = min_fill_order(&g);
            let td = from_elimination_order(&g, &order);
            let nice = make_nice(&td);
            nice.validate().expect("structurally valid");
            assert_eq!(nice.width(), td.width(), "width preserved");
            nice_validate_structure(&nice, &s).expect("covers the structure");
        }
    }

    #[test]
    fn shapes_are_exhaustive_and_root_empty() {
        let nice = nice_of(&cycle(6));
        assert!(nice.bags[nice.root()].is_empty());
        let mut joins = 0;
        let mut leaves = 0;
        for n in &nice.nodes {
            match n {
                NiceNode::Join { .. } => joins += 1,
                NiceNode::Leaf => leaves += 1,
                _ => {}
            }
        }
        assert_eq!(leaves, joins + 1, "binary-tree leaf/join balance");
    }

    #[test]
    fn single_bag_decomposition() {
        let td = TreeDecomposition {
            bags: vec![vec![0, 1, 2]],
            edges: vec![],
        };
        let nice = make_nice(&td);
        nice.validate().expect("valid");
        assert_eq!(nice.width(), 2);
        // Leaf + 3 introduces + 3 forgets = 7 nodes.
        assert_eq!(nice.nodes.len(), 7);
    }

    #[test]
    fn empty_bag_decomposition() {
        let td = TreeDecomposition {
            bags: vec![vec![]],
            edges: vec![],
        };
        let nice = make_nice(&td);
        nice.validate().expect("valid");
        assert_eq!(nice.nodes.len(), 1);
        assert!(matches!(nice.nodes[0], NiceNode::Leaf));
    }

    #[test]
    fn validation_rejects_malformed() {
        // Introduce of an already-present vertex.
        let bad = NiceDecomposition {
            nodes: vec![
                NiceNode::Leaf,
                NiceNode::Introduce {
                    vertex: 0,
                    child: 0,
                },
                NiceNode::Introduce {
                    vertex: 0,
                    child: 1,
                },
            ],
            bags: vec![vec![], vec![0], vec![0]],
        };
        assert!(bad.validate().is_err());
        // Join with mismatched bags.
        let bad = NiceDecomposition {
            nodes: vec![
                NiceNode::Leaf,
                NiceNode::Leaf,
                NiceNode::Join { left: 0, right: 1 },
            ],
            bags: vec![vec![], vec![], vec![0]],
        };
        assert!(bad.validate().is_err());
    }
}
