//! # cspdb-decomp
//!
//! Structural decompositions for *constraint-db* (Section 6 of the paper):
//!
//! * [`Graph`] — simple graphs, Gaifman (primal) and incidence graphs of
//!   structures;
//! * [`Hypergraph`] / [`JoinTree`] — hypergraphs of structures/queries,
//!   the GYO ear-removal reduction, α-acyclicity, join trees;
//! * [`TreeDecomposition`] — tree decompositions with independent
//!   validation, min-degree/min-fill heuristics, and exact treewidth by
//!   branch-and-bound over elimination orders (the practical stand-in for
//!   Bodlaender's galactic linear-time recognition — see DESIGN.md);
//! * [`solve_with_decomposition`] / [`solve_by_treewidth`] — the
//!   Theorem 6.2 algorithm: homomorphism testing in time `O(n · |B|^{k+1})`
//!   for structures of treewidth `k`, by dynamic programming over bags
//!   (equivalently: evaluation of the `∃FO^{k+1}` form of the canonical
//!   query `φ_A`, cf. Proposition 6.1 implemented in `cspdb-cq`);
//! * [`HypertreeDecomposition`] — generalized hypertree decompositions
//!   with a greedy heuristic; acyclic hypergraphs get exact width 1;
//! * [`NiceDecomposition`] / [`make_nice`] — nice tree decompositions
//!   (Leaf/Introduce/Forget/Join) of the same width;
//! * [`count_by_treewidth`] — the counting strengthening of Theorem 6.2
//!   by DP over a nice decomposition;
//! * [`QueryDecomposition`] — Chekuri–Rajaraman query decompositions,
//!   constructed from incidence-graph tree decompositions (the paper's
//!   "incidence treewidth bounds querywidth" remark).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counting;
mod csp_dp;
mod graph;
mod hypergraph;
mod hypertree;
mod nice;
mod querydecomp;
mod treewidth;

pub use counting::{count_by_treewidth, count_with_decomposition};
pub use csp_dp::{
    bag_table_bound, solve_by_treewidth, solve_by_treewidth_budgeted, solve_by_treewidth_metered,
    solve_by_treewidth_shared, solve_with_decomposition, solve_with_decomposition_budgeted,
    solve_with_decomposition_metered, solve_with_decomposition_shared, DecompSolveError,
};
pub use graph::Graph;
pub use hypergraph::{Hypergraph, JoinTree};
pub use hypertree::{hypertree_heuristic, HypertreeDecomposition};
pub use nice::{make_nice, nice_validate_structure, NiceDecomposition, NiceNode};
pub use querydecomp::{atoms_of, query_decomposition_from_incidence, QueryDecomposition};
pub use treewidth::{
    exact_treewidth, exact_treewidth_budgeted, from_elimination_order, heuristic_decomposition,
    heuristic_decomposition_budgeted, min_degree_order, min_fill_order, min_fill_order_budgeted,
    min_fill_order_metered, min_fill_order_shared, order_width, TreeDecomposition,
};
