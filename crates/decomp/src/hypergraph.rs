//! Hypergraphs, the GYO reduction, acyclicity, and join trees.
//!
//! Section 6 of the paper traces the "topology of queries" line of work
//! back to acyclic joins. The hypergraph of a structure (or of a
//! conjunctive query) has one hyperedge per fact/atom — the set of
//! elements/variables it mentions. α-acyclicity is recognized by the
//! Graham/Yu–Özsoyoğlu (GYO) ear-removal procedure, which also produces a
//! *join tree*: a tree over the hyperedges such that for every vertex the
//! hyperedges containing it form a subtree. Yannakakis' algorithm
//! (`cspdb-relalg`) evaluates acyclic joins along a join tree in
//! polynomial time.

use cspdb_core::Structure;
use std::collections::BTreeSet;

/// A hypergraph on vertices `0..n` with a list of hyperedges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    num_vertices: usize,
    edges: Vec<BTreeSet<u32>>,
}

/// A join tree over the hyperedges of a [`Hypergraph`]: `parent[i]` is
/// the parent of hyperedge `i`, or `None` for the root. The defining
/// property ("connectedness"): for every vertex, the set of hyperedges
/// containing it induces a connected subtree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinTree {
    /// Parent index per hyperedge (`None` for roots; a forest when the
    /// hypergraph is disconnected).
    pub parent: Vec<Option<usize>>,
}

impl Hypergraph {
    /// Creates a hypergraph with no hyperedges.
    pub fn new(num_vertices: usize) -> Self {
        Hypergraph {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Builds a hypergraph from explicit edges.
    ///
    /// # Panics
    ///
    /// Panics if a vertex is `>= num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: impl IntoIterator<Item = Vec<u32>>) -> Self {
        let mut h = Hypergraph::new(num_vertices);
        for e in edges {
            h.add_edge(e);
        }
        h
    }

    /// The hypergraph of a structure: one hyperedge per fact (the set of
    /// elements the fact mentions).
    pub fn of_structure(s: &Structure) -> Self {
        let mut h = Hypergraph::new(s.domain_size());
        for (_, rel) in s.relations() {
            for t in rel.iter() {
                h.add_edge(t.to_vec());
            }
        }
        h
    }

    /// Adds a hyperedge (vertex multiset collapses to a set).
    ///
    /// # Panics
    ///
    /// Panics if a vertex is out of range.
    pub fn add_edge(&mut self, vertices: impl IntoIterator<Item = u32>) {
        let set: BTreeSet<u32> = vertices.into_iter().collect();
        assert!(
            set.iter().all(|&v| (v as usize) < self.num_vertices),
            "vertex out of range"
        );
        self.edges.push(set);
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of hyperedges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[BTreeSet<u32>] {
        &self.edges
    }

    /// Runs the GYO ear-removal reduction. Returns a [`JoinTree`] if the
    /// hypergraph is α-acyclic, `None` otherwise.
    ///
    /// An *ear* is a hyperedge `e` such that some other hyperedge `f`
    /// contains every vertex of `e` that is shared with any other edge
    /// (`f` is the *witness*, and becomes `e`'s parent). Empty hyperedges
    /// and duplicate hyperedges are ears with any witness.
    pub fn gyo(&self) -> Option<JoinTree> {
        let m = self.edges.len();
        if m == 0 {
            return Some(JoinTree { parent: vec![] });
        }
        let mut alive: Vec<bool> = vec![true; m];
        let mut parent: Vec<Option<usize>> = vec![None; m];
        let mut remaining = m;
        loop {
            let mut removed_any = false;
            for e in 0..m {
                if !alive[e] || remaining == 1 {
                    continue;
                }
                // Vertices of e shared with some other live edge.
                let shared: BTreeSet<u32> = self.edges[e]
                    .iter()
                    .copied()
                    .filter(|v| (0..m).any(|f| f != e && alive[f] && self.edges[f].contains(v)))
                    .collect();
                // Find a witness f covering all shared vertices.
                let witness =
                    (0..m).find(|&f| f != e && alive[f] && shared.is_subset(&self.edges[f]));
                if let Some(f) = witness {
                    alive[e] = false;
                    parent[e] = Some(f);
                    remaining -= 1;
                    removed_any = true;
                }
            }
            if remaining == 1 {
                return Some(JoinTree { parent });
            }
            if !removed_any {
                // Disconnected acyclic hypergraphs stall with several
                // independent live edges: check that live edges are
                // pairwise disjoint; if so they are forest roots.
                let live: Vec<usize> = (0..m).filter(|&e| alive[e]).collect();
                let disjoint = live.iter().enumerate().all(|(i, &e)| {
                    live[i + 1..]
                        .iter()
                        .all(|&f| self.edges[e].is_disjoint(&self.edges[f]))
                });
                return if disjoint {
                    Some(JoinTree { parent })
                } else {
                    None
                };
            }
        }
    }

    /// True if the hypergraph is α-acyclic (GYO succeeds).
    pub fn is_acyclic(&self) -> bool {
        self.gyo().is_some()
    }
}

impl JoinTree {
    /// Checks the join-tree property against a hypergraph: for every
    /// vertex, the hyperedges containing it form a connected subtree.
    pub fn is_valid_for(&self, h: &Hypergraph) -> bool {
        let m = h.num_edges();
        if self.parent.len() != m {
            return false;
        }
        // No cycles in parent pointers, and parents in range.
        for start in 0..m {
            let mut seen = vec![false; m];
            let mut cur = start;
            loop {
                if seen[cur] {
                    return false; // cycle
                }
                seen[cur] = true;
                match self.parent[cur] {
                    Some(p) if p < m => cur = p,
                    Some(_) => return false,
                    None => break,
                }
            }
        }
        // Connectedness per vertex: among the edges containing v, each
        // one's parent-path must reach another such edge without leaving
        // the set... equivalently: the edges containing v, viewed in the
        // forest, must induce a connected subtree. We check: for every
        // vertex v, at most one edge containing v has a parent that does
        // NOT contain v (the "top" of the subtree) — and if an edge's
        // parent does not contain v, no ancestor may contain v again.
        for v in 0..h.num_vertices() as u32 {
            let holders: Vec<usize> = (0..m).filter(|&e| h.edges()[e].contains(&v)).collect();
            for &e in &holders {
                // Walk up from e; once we leave the holder set we must
                // never re-enter it.
                let mut cur = e;
                let mut left = false;
                while let Some(p) = self.parent[cur] {
                    let inside = h.edges()[p].contains(&v);
                    if left && inside {
                        return false;
                    }
                    if !inside {
                        left = true;
                    }
                    cur = p;
                }
            }
            // All holders must share a single "top" (connectivity across
            // components): find each holder's highest ancestor within the
            // holder set; they must coincide.
            let mut top: Option<usize> = None;
            for &e in &holders {
                let mut cur = e;
                let mut highest = e;
                while let Some(p) = self.parent[cur] {
                    if h.edges()[p].contains(&v) {
                        highest = p;
                    }
                    cur = p;
                }
                match top {
                    None => top = Some(highest),
                    Some(t) if t == highest => {}
                    Some(_) => return false,
                }
            }
        }
        true
    }

    /// Children lists derived from the parent array.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.parent.len()];
        for (e, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                out[*p].push(e);
            }
        }
        out
    }

    /// Root indices (edges with no parent).
    pub fn roots(&self) -> Vec<usize> {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(e, p)| p.is_none().then_some(e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_acyclic_with_valid_join_tree() {
        // R(a,b), S(b,c), T(c,d): a chain, classically acyclic.
        let h = Hypergraph::from_edges(4, [vec![0, 1], vec![1, 2], vec![2, 3]]);
        let jt = h.gyo().expect("chain is acyclic");
        assert!(jt.is_valid_for(&h));
    }

    #[test]
    fn triangle_hypergraph_is_cyclic() {
        // R(a,b), S(b,c), T(a,c): the classic cyclic join.
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert!(!h.is_acyclic());
    }

    #[test]
    fn triangle_plus_covering_edge_is_acyclic() {
        // Adding the full edge {a,b,c} makes it acyclic (α-acyclicity is
        // not monotone!).
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2], vec![0, 2], vec![0, 1, 2]]);
        let jt = h.gyo().expect("covered triangle is acyclic");
        assert!(jt.is_valid_for(&h));
    }

    #[test]
    fn star_is_acyclic() {
        let h = Hypergraph::from_edges(5, [vec![0, 1], vec![0, 2], vec![0, 3], vec![0, 4]]);
        let jt = h.gyo().expect("star is acyclic");
        assert!(jt.is_valid_for(&h));
    }

    #[test]
    fn disconnected_acyclic_forest() {
        let h = Hypergraph::from_edges(4, [vec![0, 1], vec![2, 3]]);
        let jt = h.gyo().expect("two disjoint edges are acyclic");
        // Disjoint edges share no vertices, so GYO may attach one to the
        // other (the shared set is empty); either a forest or a single
        // tree is a valid join tree here.
        assert!(jt.is_valid_for(&h));
        assert!(!jt.roots().is_empty());
    }

    #[test]
    fn empty_and_single_edge() {
        assert!(Hypergraph::new(0).is_acyclic());
        let h = Hypergraph::from_edges(3, [vec![0, 1, 2]]);
        let jt = h.gyo().unwrap();
        assert_eq!(jt.parent, vec![None]);
        assert!(jt.is_valid_for(&h));
    }

    #[test]
    fn duplicate_edges_are_ears() {
        let h = Hypergraph::from_edges(2, [vec![0, 1], vec![0, 1]]);
        let jt = h.gyo().expect("duplicates reduce");
        assert!(jt.is_valid_for(&h));
    }

    #[test]
    fn cycle_of_length_four_is_cyclic() {
        let h = Hypergraph::from_edges(4, [vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 0]]);
        assert!(!h.is_acyclic());
    }

    #[test]
    fn structure_hypergraph() {
        let s = cspdb_core::graphs::cycle(3);
        let h = Hypergraph::of_structure(&s);
        // 6 directed facts -> 6 hyperedges (3 distinct vertex sets, with
        // duplicates).
        assert_eq!(h.num_edges(), 6);
        assert!(!h.is_acyclic()); // triangle
    }

    #[test]
    fn invalid_join_tree_rejected() {
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2], vec![0, 2]]);
        // Any parent array over a cyclic hypergraph must fail validation.
        let jt = JoinTree {
            parent: vec![Some(1), Some(2), None],
        };
        assert!(!jt.is_valid_for(&h));
        // Wrong length fails too.
        let jt = JoinTree { parent: vec![None] };
        assert!(!jt.is_valid_for(&h));
        // Parent cycle fails.
        let h2 = Hypergraph::from_edges(2, [vec![0], vec![1]]);
        let jt = JoinTree {
            parent: vec![Some(1), Some(0)],
        };
        assert!(!jt.is_valid_for(&h2));
    }
}
