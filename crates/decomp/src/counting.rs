//! Counting homomorphisms by dynamic programming over a *nice* tree
//! decomposition — the counting strengthening of Theorem 6.2: for
//! structures of treewidth `k`, `|hom(A, B)|` is computable in time
//! `O(n · |B|^{k+1})`, not just the decision problem.
//!
//! Tables map bag assignments to the number of consistent extensions to
//! the forgotten vertices. Each fact of **A** is filtered exactly once,
//! at the *top* node of the (connected) region of bags containing all
//! its elements, so no solution is dropped or double-counted.

use crate::nice::{make_nice, NiceDecomposition, NiceNode};
use crate::treewidth::TreeDecomposition;
use cspdb_core::{RelId, Structure};
use std::collections::HashMap;

/// Counts homomorphisms `A -> B` using a tree decomposition of **A**.
///
/// # Errors
///
/// Returns an error if the decomposition is invalid for **A**.
pub fn count_with_decomposition(
    a: &Structure,
    b: &Structure,
    td: &TreeDecomposition,
) -> Result<u64, String> {
    if a.vocabulary() != b.vocabulary() {
        return Err("vocabulary mismatch".into());
    }
    td.validate_structure(a)?;
    if a.domain_size() == 0 {
        return Ok(1);
    }
    if b.domain_size() == 0 {
        return Ok(0);
    }
    let nice = make_nice(td);
    Ok(count_with_nice(a, b, &nice))
}

/// End-to-end: min-fill decomposition then counting DP.
pub fn count_by_treewidth(a: &Structure, b: &Structure) -> u64 {
    if a.domain_size() == 0 {
        return 1;
    }
    if b.domain_size() == 0 {
        return 0;
    }
    let g = crate::graph::Graph::gaifman(a);
    let order = crate::treewidth::min_fill_order(&g);
    let td = crate::treewidth::from_elimination_order(&g, &order);
    let nice = make_nice(&td);
    count_with_nice(a, b, &nice)
}

fn count_with_nice(a: &Structure, b: &Structure, nice: &NiceDecomposition) -> u64 {
    let d = b.domain_size() as u32;
    // Assign every fact of A to the top node of the region of bags
    // containing all its elements.
    let mut node_facts: Vec<Vec<(RelId, Vec<u32>)>> = vec![Vec::new(); nice.nodes.len()];
    // Parent pointers (children precede parents; the root is last).
    let mut parent = vec![usize::MAX; nice.nodes.len()];
    for (i, node) in nice.nodes.iter().enumerate() {
        match node {
            NiceNode::Leaf => {}
            NiceNode::Introduce { child, .. } | NiceNode::Forget { child, .. } => {
                parent[*child] = i;
            }
            NiceNode::Join { left, right } => {
                parent[*left] = i;
                parent[*right] = i;
            }
        }
    }
    let contains =
        |i: usize, t: &[u32]| -> bool { t.iter().all(|x| nice.bags[i].binary_search(x).is_ok()) };
    for (id, rel) in a.relations() {
        for t in rel.iter() {
            // Find any node containing the fact, then climb to the top
            // of its region.
            let mut at = (0..nice.nodes.len())
                .find(|&i| contains(i, t))
                .expect("validated decomposition covers every fact");
            while parent[at] != usize::MAX && contains(parent[at], t) {
                at = parent[at];
            }
            node_facts[at].push((id, t.to_vec()));
        }
    }

    // Bottom-up tables: bag assignment -> extension count.
    let mut tables: Vec<HashMap<Vec<u32>, u64>> = Vec::with_capacity(nice.nodes.len());
    let mut image = Vec::new();
    for (i, node) in nice.nodes.iter().enumerate() {
        let bag = &nice.bags[i];
        let mut table: HashMap<Vec<u32>, u64> = match node {
            NiceNode::Leaf => std::iter::once((vec![], 1u64)).collect(),
            NiceNode::Introduce { vertex, child } => {
                let pos = bag.binary_search(vertex).expect("introduced into bag");
                let mut out = HashMap::new();
                for (row, &count) in &tables[*child] {
                    for value in 0..d {
                        let mut new_row = row.clone();
                        new_row.insert(pos, value);
                        *out.entry(new_row).or_insert(0) += count;
                    }
                }
                out
            }
            NiceNode::Forget { vertex, child } => {
                let child_bag = &nice.bags[*child];
                let pos = child_bag
                    .binary_search(vertex)
                    .expect("forgotten from child");
                let mut out = HashMap::new();
                for (row, &count) in &tables[*child] {
                    let mut new_row = row.clone();
                    new_row.remove(pos);
                    *out.entry(new_row).or_insert(0) += count;
                }
                out
            }
            NiceNode::Join { left, right } => {
                let (small, large) = if tables[*left].len() <= tables[*right].len() {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                let mut out = HashMap::new();
                for (row, &cl) in &tables[small] {
                    if let Some(&cr) = tables[large].get(row) {
                        out.insert(row.clone(), cl * cr);
                    }
                }
                out
            }
        };
        // Filter by the facts assigned to this node.
        if !node_facts[i].is_empty() {
            table.retain(|row, _| {
                node_facts[i].iter().all(|(id, t)| {
                    image.clear();
                    for x in t {
                        let pos = bag.binary_search(x).expect("fact inside bag");
                        image.push(row[pos]);
                    }
                    b.relation(*id).contains(&image)
                })
            });
        }
        tables.push(table);
    }
    tables[nice.root()].get(&vec![]).copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{clique, cycle, path};

    #[test]
    fn counts_match_known_chromatic_values() {
        // hom(C5, K3) = proper 3-colorings of C5 = 30.
        assert_eq!(count_by_treewidth(&cycle(5), &clique(3)), 30);
        // hom(C4, K2) = 2; hom(C5, K2) = 0.
        assert_eq!(count_by_treewidth(&cycle(4), &clique(2)), 2);
        assert_eq!(count_by_treewidth(&cycle(5), &clique(2)), 0);
        // Paths: hom(P_n, K_q) = q (q-1)^{n-1}.
        assert_eq!(count_by_treewidth(&path(4), &clique(3)), 3 * 2 * 2 * 2);
        // hom(C_n, K_q) = (q-1)^n + (-1)^n (q-1).
        assert_eq!(count_by_treewidth(&cycle(6), &clique(3)), 64 + 2);
        assert_eq!(count_by_treewidth(&cycle(7), &clique(3)), 128 - 2);
    }

    #[test]
    fn counts_match_search_on_random_sparse_graphs() {
        let mut state = 0x0F1E2D3C4B5A6978u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..12 {
            let n = 4 + (next() % 4) as usize;
            let voc = cspdb_core::graphs::graph_vocabulary();
            let mut a = cspdb_core::Structure::new(voc, n);
            for i in 1..n as u32 {
                let u = (next() % i as u64) as u32;
                a.insert_by_name("E", &[i, u]).unwrap();
                a.insert_by_name("E", &[u, i]).unwrap();
                if next() % 2 == 0 {
                    let w = (next() % i as u64) as u32;
                    if w != i {
                        a.insert_by_name("E", &[i, w]).unwrap();
                        a.insert_by_name("E", &[w, i]).unwrap();
                    }
                }
            }
            for b in [clique(2), clique(3)] {
                assert_eq!(
                    count_by_treewidth(&a, &b),
                    cspdb_solver::count_homomorphisms(&a, &b),
                    "on {a}"
                );
            }
        }
    }

    #[test]
    fn counting_with_isolated_vertices_multiplies_by_domain() {
        let voc = cspdb_core::graphs::graph_vocabulary();
        let mut a = cspdb_core::Structure::new(voc, 3);
        a.insert_by_name("E", &[0, 1]).unwrap();
        // Vertex 2 is free: counts multiply by |B|.
        let b = clique(3);
        // Directed edge into K3: 6 homs for the edge × 3 for the free
        // vertex.
        assert_eq!(count_by_treewidth(&a, &b), 18);
    }

    #[test]
    fn empty_structures() {
        let voc = cspdb_core::graphs::graph_vocabulary();
        let empty = cspdb_core::Structure::new(voc.clone(), 0);
        assert_eq!(count_by_treewidth(&empty, &clique(3)), 1);
        let a = path(2);
        let empty_b = cspdb_core::Structure::new(voc, 0);
        assert_eq!(count_by_treewidth(&a, &empty_b), 0);
    }

    #[test]
    fn counting_with_ternary_relations() {
        let voc = cspdb_core::Vocabulary::new([("T", 3)]).unwrap();
        let mut a = cspdb_core::Structure::new(voc.clone(), 4);
        a.insert_by_name("T", &[0, 1, 2]).unwrap();
        a.insert_by_name("T", &[1, 2, 3]).unwrap();
        let mut b = cspdb_core::Structure::new(voc, 2);
        for t in [[0u32, 0, 1], [0, 1, 0], [1, 0, 0], [1, 1, 1]] {
            b.insert_by_name("T", &t).unwrap();
        }
        let csp = cspdb_core::CspInstance::from_homomorphism(&a, &b).unwrap();
        assert_eq!(
            count_by_treewidth(&a, &b),
            csp.count_solutions_brute_force()
        );
    }

    #[test]
    fn explicit_decomposition_counting() {
        let a = cycle(4);
        let td = TreeDecomposition {
            bags: vec![vec![0, 1, 3], vec![1, 2, 3]],
            edges: vec![(0, 1)],
        };
        assert_eq!(count_with_decomposition(&a, &clique(3), &td).unwrap(), 18);
        // Invalid decomposition rejected.
        let bad = TreeDecomposition {
            bags: vec![vec![0, 1]],
            edges: vec![],
        };
        assert!(count_with_decomposition(&a, &clique(3), &bad).is_err());
    }
}
