//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of proptest that the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range and tuple strategies, `prop::collection::vec`,
//!   [`Strategy::prop_map`], and `any::<T>()` for a few primitives.
//!
//! Failing cases are reported with their case index and the fixed
//! per-test seed so runs are reproducible; there is **no shrinking** —
//! generators here keep instances small enough that raw counterexamples
//! are readable.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Strategies: deterministic samplers of test values.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (((rng.next_u64() as u128 * span as u128) >> 64) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo == <$t>::MIN && hi == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (hi - lo) as u64 + 1;
                    lo + (((rng.next_u64() as u128 * span as u128) >> 64) as u64) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// A strategy that always yields clones of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// A boolean strategy (fair coin).
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    //! The runner: configuration, RNG, and failure plumbing.

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property case (message carrying the assertion text).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic test RNG (SplitMix64). Seeded from the test name so
    /// every property gets an independent, reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<E::Value>` with length drawn from `size`.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len =
                self.size.lo + (((rng.next_u64() as u128 * span as u128) >> 64) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop::` module path used by idiomatic proptest code.
pub mod prop {
    pub use crate::collection;
}

/// `any::<T>()` for a few primitive types.
pub mod arbitrary {
    use crate::strategy::{AnyBool, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-range integer strategy.
    pub struct FullRange<T>(PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange(PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> Self::Strategy {
            AnyBool
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current
/// case (with source location) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "{} at {}:{}",
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed on case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        concat!($("\n  ", stringify!($arg), " in ", stringify!($strat)),*)
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..10u32, y in 0..=4usize) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0..5u32, 2..=6)) {
            prop_assert!((2..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn prop_map_applies(s in (0..10u32, 0..10u32).prop_map(|(a, b)| a + b)) {
            prop_assert!(s <= 18);
        }
    }

    #[test]
    fn failures_carry_case_info() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn always_fails(x in 0..3u32) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("always_fails"), "got: {message}");
        assert!(message.contains("x was"), "got: {message}");
    }
}
