//! Conjunctive-query containment via homomorphisms — Proposition 2.2
//! (Chandra–Merlin).
//!
//! `Q1 ⊆ Q2` iff there is a homomorphism `D^{Q2} → D^{Q1}` mapping
//! distinguished variables to the corresponding distinguished variables —
//! equivalently, iff the head tuple of `Q1` is in `Q2(D^{Q1})`. Both
//! formulations are implemented; tests confirm they coincide and agree
//! with a semantic oracle on small databases.

use crate::canonical::canonical_database;
use crate::eval::evaluate_by_search;
use crate::query::ConjunctiveQuery;
use cspdb_core::{PartialHom, Structure, VocabularyBuilder};

/// Checks `Q1 ⊆ Q2` by searching for a homomorphism
/// `D^{Q2} → D^{Q1}` that fixes the distinguished tuple.
///
/// # Errors
///
/// Returns a message if the queries have different numbers of
/// distinguished variables or incompatible predicate arities.
pub fn is_contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> Result<bool, String> {
    if q1.distinguished.len() != q2.distinguished.len() {
        return Err("queries have different head arities".into());
    }
    let c1 = canonical_database(q1, false);
    let c2 = canonical_database(q2, false);
    // Shared vocabulary: union of both queries' predicates.
    let mut builder = VocabularyBuilder::new();
    for a in q1.atoms.iter().chain(q2.atoms.iter()) {
        builder
            .add_or_get(&a.predicate, a.args.len())
            .map_err(|e| e.to_string())?;
    }
    let voc = builder.finish();
    let from = retype_onto(&c2.structure, &voc)?;
    let to = retype_onto(&c1.structure, &voc)?;
    // Fix distinguished: element of X_i in D^{Q2} -> element in D^{Q1}.
    let fixed = PartialHom::from_pairs(
        q2.distinguished
            .iter()
            .zip(q1.distinguished.iter())
            .map(|(v2, v1)| (c2.element_of_var[v2], c1.element_of_var[v1])),
    )
    .ok_or("inconsistent distinguished variable mapping")?;
    Ok(cspdb_solver::find_extension(&from, &to, &fixed)
        .map_err(|e| e.to_string())?
        .is_some())
}

/// Checks `Q1 ⊆ Q2` by the evaluation formulation: the head tuple of
/// `Q1` must appear in `Q2(D^{Q1})`.
///
/// # Errors
///
/// As for [`is_contained_in`].
pub fn is_contained_in_by_eval(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
) -> Result<bool, String> {
    if q1.distinguished.len() != q2.distinguished.len() {
        return Err("queries have different head arities".into());
    }
    let c1 = canonical_database(q1, false);
    // Evaluate Q2 on D^{Q1}: Q2's predicates must exist there; absent
    // predicates mean empty relations, hence non-containment (unless Q2
    // never fires... which is the same thing).
    let mut builder = VocabularyBuilder::new();
    for a in q1.atoms.iter().chain(q2.atoms.iter()) {
        builder
            .add_or_get(&a.predicate, a.args.len())
            .map_err(|e| e.to_string())?;
    }
    let voc = builder.finish();
    let db = retype_onto(&c1.structure, &voc)?;
    let answers = evaluate_by_search(q2, &db)?;
    let head: Vec<u32> = q1
        .distinguished
        .iter()
        .map(|v| c1.element_of_var[v])
        .collect();
    Ok(answers.contains(&head))
}

/// Checks query equivalence (`⊆` both ways).
///
/// # Errors
///
/// As for [`is_contained_in`].
pub fn are_equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> Result<bool, String> {
    Ok(is_contained_in(q1, q2)? && is_contained_in(q2, q1)?)
}

fn retype_onto(
    a: &Structure,
    voc: &std::sync::Arc<cspdb_core::Vocabulary>,
) -> Result<Structure, String> {
    let mut out = Structure::new(voc.clone(), a.domain_size());
    for (id, rel) in a.relations() {
        let name = a.vocabulary().name(id);
        let new_id = voc.id(name).map_err(|e| e.to_string())?;
        for t in rel.iter() {
            out.insert(new_id, t).map_err(|e| e.to_string())?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_by_join;
    use cspdb_core::graphs::digraph;

    fn q(src: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(src).unwrap()
    }

    #[test]
    fn longer_paths_are_contained_in_shorter() {
        // "There is a path of length 3 from X to nothing-in-particular"
        // is contained in "there is an edge from X": NO — containment is
        // about implication of answers. Q1(X) := path3 from X implies
        // Q2(X) := edge from X. Every db where X starts a 3-path also
        // has X starting an edge: yes, contained.
        let q1 = q("Q(X) :- E(X,Y), E(Y,Z), E(Z,W)");
        let q2 = q("Q(X) :- E(X,Y)");
        assert!(is_contained_in(&q1, &q2).unwrap());
        assert!(!is_contained_in(&q2, &q1).unwrap());
    }

    #[test]
    fn cycle_queries() {
        // Having a triangle implies having a (homomorphic) 6-cycle
        // pattern; the 6-cycle query contains... careful: Boolean Q1 ⊆
        // Q2 iff hom D^{Q2} -> D^{Q1}. C6 maps onto C3 (wrap twice):
        // so triangle-query ⊆ hexagon-query.
        let tri = q("Q :- E(X,Y), E(Y,Z), E(Z,X)");
        let hex = q("Q :- E(A,B), E(B,C), E(C,D), E(D,F), E(F,G), E(G,A)");
        assert!(is_contained_in(&tri, &hex).unwrap());
        assert!(!is_contained_in(&hex, &tri).unwrap());
    }

    #[test]
    fn both_formulations_agree() {
        let pairs = [
            ("Q(X) :- E(X,Y), E(Y,Z)", "Q(X) :- E(X,Y)"),
            ("Q(X) :- E(X,Y)", "Q(X) :- E(X,Y), E(Y,Z)"),
            ("Q :- E(X,Y), E(Y,X)", "Q :- E(X,X)"),
            ("Q :- E(X,X)", "Q :- E(X,Y), E(Y,X)"),
            ("Q(X,Y) :- E(X,Y)", "Q(X,Y) :- E(X,Z), E(Z,Y)"),
        ];
        for (s1, s2) in pairs {
            let (q1, q2) = (q(s1), q(s2));
            assert_eq!(
                is_contained_in(&q1, &q2).unwrap(),
                is_contained_in_by_eval(&q1, &q2).unwrap(),
                "{s1} vs {s2}"
            );
        }
    }

    #[test]
    fn containment_is_sound_semantically() {
        // If Q1 ⊆ Q2 according to the hom test, then on every sample
        // database Q1's answers are a subset of Q2's.
        let q1 = q("Q(X) :- E(X,Y), E(Y,Z)");
        let q2 = q("Q(X) :- E(X,Y)");
        assert!(is_contained_in(&q1, &q2).unwrap());
        let mut state = 0x0123456789ABCDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 3 + (next() % 4) as usize;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    if next() % 3 == 0 {
                        edges.push((u, v));
                    }
                }
            }
            let db = digraph(n, &edges);
            let a1 = evaluate_by_join(&q1, &db).unwrap();
            let a2 = evaluate_by_join(&q2, &db).unwrap();
            assert!(a1.is_subset_of(&a2));
        }
    }

    #[test]
    fn equivalence_of_renamed_queries() {
        let q1 = q("Q(X) :- E(X,Y), E(Y,X)");
        let q2 = q("Q(A) :- E(A,B), E(B,A)");
        assert!(are_equivalent(&q1, &q2).unwrap());
    }

    #[test]
    fn equivalence_with_redundant_atoms() {
        // Redundant atom folds away: equivalent.
        let q1 = q("Q(X) :- E(X,Y)");
        let q2 = q("Q(X) :- E(X,Y), E(X,Z)");
        assert!(are_equivalent(&q1, &q2).unwrap());
    }

    #[test]
    fn head_arity_mismatch_is_error() {
        assert!(is_contained_in(&q("Q(X) :- E(X,Y)"), &q("Q :- E(X,Y)")).is_err());
    }

    #[test]
    fn different_vocabularies() {
        let q1 = q("Q :- R(X,Y)");
        let q2 = q("Q :- S(X,Y)");
        assert!(!is_contained_in(&q1, &q2).unwrap());
        assert!(!is_contained_in(&q2, &q1).unwrap());
    }
}
