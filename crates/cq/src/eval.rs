//! Conjunctive-query evaluation — two independent engines.
//!
//! Evaluating `Q` on a database `D` is the same problem as enumerating
//! homomorphisms `D^Q → D` projected to the distinguished variables
//! (Proposition 2.2), and also the same as joining the body atoms and
//! projecting (Proposition 2.1's view). Both routes are implemented and
//! cross-checked: [`evaluate_by_search`] goes through the backtracking
//! homomorphism solver, [`evaluate_by_join`] through the relational
//! algebra.

use crate::canonical::canonical_database;
use crate::query::ConjunctiveQuery;
use cspdb_core::budget::{Budget, ExhaustionReason};
use cspdb_core::{Relation, Structure};
use cspdb_relalg::NamedRelation;
use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

/// Why a budget-governed evaluation produced no answer relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CqEvalError {
    /// The query does not fit the database (missing predicate, arity
    /// mismatch) — evaluation cannot start.
    Invalid(String),
    /// The budget ran out mid-evaluation — inconclusive.
    Exhausted(ExhaustionReason),
}

impl std::fmt::Display for CqEvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CqEvalError::Invalid(m) => f.write_str(m),
            CqEvalError::Exhausted(r) => write!(f, "budget exhausted: {r}"),
        }
    }
}

impl std::error::Error for CqEvalError {}

/// Evaluates `Q` on `db` by homomorphism search from the canonical
/// database: returns the answer relation over the distinguished
/// variables (for Boolean queries: nonempty = true).
///
/// # Errors
///
/// Returns a message if a query predicate is missing from `db` or used
/// with the wrong arity.
pub fn evaluate_by_search(q: &ConjunctiveQuery, db: &Structure) -> Result<Relation, String> {
    evaluate_by_search_budgeted(q, db, &Budget::unlimited()).map_err(|e| e.to_string())
}

/// [`evaluate_by_search`] under a [`Budget`]. The search enumerates
/// homomorphisms, but never more than the answer needs: a Boolean query
/// (no distinguished variables) stops at the first witness, and a
/// non-Boolean query tracks the projected tuples already seen in a
/// `HashSet` so a high-multiplicity database cannot make it buffer
/// exponentially many duplicates.
///
/// # Errors
///
/// [`CqEvalError::Invalid`] if the query does not fit the database,
/// [`CqEvalError::Exhausted`] if the budget ran out (inconclusive).
pub fn evaluate_by_search_budgeted(
    q: &ConjunctiveQuery,
    db: &Structure,
    budget: &Budget,
) -> Result<Relation, CqEvalError> {
    let canon = canonical_database(q, false);
    check_compatible(q, db).map_err(CqEvalError::Invalid)?;
    // Rebuild the canonical structure over db's vocabulary so the solver
    // sees one shared signature.
    let a = retype(&canon.structure, db).map_err(CqEvalError::Invalid)?;
    let dist_elems: Vec<u32> = q
        .distinguished
        .iter()
        .map(|v| canon.element_of_var[v])
        .collect();
    let problem = cspdb_solver::Problem::from_structures(&a, db);
    let mut search =
        cspdb_solver::Search::with_budget(&problem, cspdb_solver::Config::default(), budget);
    let boolean = q.is_boolean();
    let mut answers: HashSet<Vec<u32>> = HashSet::new();
    let outcome = search.run(None, |h| {
        answers.insert(dist_elems.iter().map(|&e| h[e as usize]).collect());
        if boolean {
            // One witness decides a Boolean query; enumerating the rest
            // of the homomorphisms would be pure waste.
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    if let cspdb_solver::Outcome::BudgetExhausted(reason) = outcome {
        return Err(CqEvalError::Exhausted(reason));
    }
    Relation::from_tuples_named(&q.name, dist_elems.len(), answers.iter())
        .map_err(|e| CqEvalError::Invalid(e.to_string()))
}

/// Evaluates `Q` on `db` through the relational algebra: one
/// [`NamedRelation`] per atom (repeated variables filtered), naturally
/// joined, projected to the distinguished variables.
///
/// # Errors
///
/// Returns a message if a query predicate is missing from `db` or used
/// with the wrong arity, or if a Boolean query's empty projection is
/// requested on an empty join (handled: returns the empty relation).
pub fn evaluate_by_join(q: &ConjunctiveQuery, db: &Structure) -> Result<Relation, String> {
    evaluate_by_join_budgeted(q, db, &Budget::unlimited()).map_err(|e| e.to_string())
}

/// [`evaluate_by_join`] under a [`Budget`]: the atom relations run
/// through the planner-ordered, index-backed join pipeline
/// ([`cspdb_relalg::join_all_metered`]), charging every intermediate row
/// against the tuple cap. Attach a trace sink to the budget to observe
/// the chosen join order
/// ([`TraceEvent::PlanChosen`](cspdb_core::trace::TraceEvent)) and the
/// per-operator cardinalities — this is what `cspdb cq --explain`
/// surfaces.
///
/// # Errors
///
/// [`CqEvalError::Invalid`] if the query does not fit the database,
/// [`CqEvalError::Exhausted`] if the budget ran out (inconclusive).
pub fn evaluate_by_join_budgeted(
    q: &ConjunctiveQuery,
    db: &Structure,
    budget: &Budget,
) -> Result<Relation, CqEvalError> {
    check_compatible(q, db).map_err(CqEvalError::Invalid)?;
    let vars = q.variables();
    let var_index: HashMap<&str, u32> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut relations = Vec::new();
    for atom in &q.atoms {
        let rel = db
            .relation_by_name(&atom.predicate)
            .map_err(|e| CqEvalError::Invalid(e.to_string()))?;
        // Distinct attributes: positions of the first occurrence of each
        // variable; rows must agree on repeated positions.
        let mut schema: Vec<u32> = Vec::new();
        let mut first_position: Vec<usize> = Vec::new();
        for (i, v) in atom.args.iter().enumerate() {
            let attr = var_index[v.as_str()];
            if !schema.contains(&attr) {
                schema.push(attr);
                first_position.push(i);
            }
        }
        let rows: Vec<Vec<u32>> = rel
            .iter()
            .filter_map(|t| {
                // Check repeated-variable agreement.
                for (i, v) in atom.args.iter().enumerate() {
                    let attr = var_index[v.as_str()];
                    let fp = first_position[schema.iter().position(|&a| a == attr).unwrap()];
                    if t[fp] != t[i] {
                        return None;
                    }
                }
                Some(first_position.iter().map(|&i| t[i]).collect::<Vec<u32>>())
            })
            .collect();
        relations.push(NamedRelation::new(schema, rows));
    }
    let mut meter = budget.meter();
    let joined =
        cspdb_relalg::join_all_metered(&relations, &mut meter).map_err(CqEvalError::Exhausted)?;
    let dist_attrs: Vec<u32> = q
        .distinguished
        .iter()
        .map(|v| var_index[v.as_str()])
        .collect();
    if joined.is_empty() {
        return Ok(Relation::empty(dist_attrs.len()));
    }
    let projected = joined.project(&dist_attrs);
    Relation::from_tuples_named(&q.name, dist_attrs.len(), projected.rows().iter())
        .map_err(|e| CqEvalError::Invalid(e.to_string()))
}

/// True if the Boolean query holds on `db` (via the join engine).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn boolean_holds(q: &ConjunctiveQuery, db: &Structure) -> Result<bool, String> {
    Ok(!evaluate_by_join(q, db)?.is_empty())
}

fn check_compatible(q: &ConjunctiveQuery, db: &Structure) -> Result<(), String> {
    for a in &q.atoms {
        let rel = db
            .relation_by_name(&a.predicate)
            .map_err(|_| format!("predicate {} missing from database", a.predicate))?;
        if rel.arity() != a.args.len() {
            return Err(format!(
                "predicate {}: query arity {}, database arity {}",
                a.predicate,
                a.args.len(),
                rel.arity()
            ));
        }
    }
    Ok(())
}

/// Rebuilds `a` over `db`'s vocabulary (matching predicates by name) so
/// the homomorphism solver can run on a shared signature.
fn retype(a: &Structure, db: &Structure) -> Result<Structure, String> {
    let voc = db.vocabulary().clone();
    let mut out = Structure::new(voc.clone(), a.domain_size());
    for (id, rel) in a.relations() {
        let name = a.vocabulary().name(id);
        let new_id = voc.id(name).map_err(|e| e.to_string())?;
        for t in rel.iter() {
            out.insert(new_id, t).map_err(|e| e.to_string())?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{cycle, digraph, directed_path};

    #[test]
    fn path_query_on_directed_path() {
        // Q(X,Y) :- E(X,Z), E(Z,Y): pairs at distance 2.
        let q = ConjunctiveQuery::parse("Q(X,Y) :- E(X,Z), E(Z,Y)").unwrap();
        let db = directed_path(4);
        let by_search = evaluate_by_search(&q, &db).unwrap();
        let by_join = evaluate_by_join(&q, &db).unwrap();
        assert_eq!(by_search, by_join);
        assert_eq!(by_search.len(), 2);
        assert!(by_search.contains(&[0, 2]));
        assert!(by_search.contains(&[1, 3]));
    }

    #[test]
    fn boolean_triangle_query() {
        let q = ConjunctiveQuery::parse("Q :- E(X,Y), E(Y,Z), E(Z,X)").unwrap();
        assert!(boolean_holds(&q, &cycle(3)).unwrap());
        // Directed 3-cycle needed in a directed graph.
        assert!(!boolean_holds(&q, &directed_path(5)).unwrap());
        assert!(boolean_holds(&q, &digraph(3, &[(0, 1), (1, 2), (2, 0)])).unwrap());
    }

    #[test]
    fn engines_agree_on_pseudorandom_inputs() {
        let mut state = 0xC0FFEE123456789u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let queries = [
            "Q(X) :- E(X,Y), E(Y,X)",
            "Q(X,Y) :- E(X,Z), E(Z,W), E(W,Y)",
            "Q :- E(X,Y), E(Y,Z), E(X,Z)",
            "Q(X) :- E(X,X)",
        ];
        for qsrc in queries {
            let q = ConjunctiveQuery::parse(qsrc).unwrap();
            for _ in 0..8 {
                let n = 3 + (next() % 4) as usize;
                let mut edges = Vec::new();
                for u in 0..n as u32 {
                    for v in 0..n as u32 {
                        if next() % 3 == 0 {
                            edges.push((u, v));
                        }
                    }
                }
                let db = digraph(n, &edges);
                assert_eq!(
                    evaluate_by_search(&q, &db).unwrap(),
                    evaluate_by_join(&q, &db).unwrap(),
                    "query {qsrc}"
                );
            }
        }
    }

    #[test]
    fn repeated_variable_atom() {
        let q = ConjunctiveQuery::parse("Q(X) :- E(X,X)").unwrap();
        let db = digraph(3, &[(0, 0), (1, 2)]);
        let ans = evaluate_by_join(&q, &db).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&[0]));
    }

    #[test]
    fn missing_predicate_is_error() {
        let q = ConjunctiveQuery::parse("Q :- F(X,Y)").unwrap();
        assert!(evaluate_by_join(&q, &cycle(3)).is_err());
        assert!(evaluate_by_search(&q, &cycle(3)).is_err());
    }

    /// The complete digraph on `n` vertices (all n² edges): every
    /// variable assignment is a homomorphism, the worst case for an
    /// enumerate-everything search.
    fn complete_digraph(n: u32) -> cspdb_core::Structure {
        let edges: Vec<(u32, u32)> = (0..n).flat_map(|u| (0..n).map(move |v| (u, v))).collect();
        digraph(n as usize, &edges)
    }

    #[test]
    fn boolean_search_stops_at_first_witness() {
        use cspdb_core::trace::{Recorder, TraceEvent};
        use std::sync::Arc;

        // On K12 every one of the 12³ = 1728 assignments of {X,Y,Z} is a
        // homomorphism; a search that enumerates them all expands at
        // least that many nodes. The Boolean early exit must stop after
        // the first witness.
        let db = complete_digraph(12);
        let q = ConjunctiveQuery::parse("Q :- E(X,Y), E(Y,Z)").unwrap();
        let rec = Arc::new(Recorder::new());
        let budget = Budget::unlimited().with_trace(rec.clone());
        let ans = evaluate_by_search_budgeted(&q, &db, &budget).unwrap();
        assert!(!ans.is_empty(), "K12 satisfies the query");
        let nodes = rec
            .events()
            .iter()
            .find_map(|e| match e {
                TraceEvent::Search { nodes, .. } => Some(*nodes),
                _ => None,
            })
            .expect("search emits its stats");
        assert!(
            nodes < 100,
            "Boolean query must stop at the first witness, expanded {nodes} nodes"
        );
    }

    #[test]
    fn high_multiplicity_projection_deduplicates() {
        // Q(X) :- E(X,Y) on K9: every X has 9 matching Y's; the search
        // engine must not buffer the duplicates, and both engines agree.
        let db = complete_digraph(9);
        let q = ConjunctiveQuery::parse("Q(X) :- E(X,Y)").unwrap();
        let by_search = evaluate_by_search(&q, &db).unwrap();
        let by_join = evaluate_by_join(&q, &db).unwrap();
        assert_eq!(by_search, by_join);
        assert_eq!(by_search.len(), 9);
    }

    #[test]
    fn budgeted_join_eval_reports_exhaustion() {
        let db = complete_digraph(10);
        let q = ConjunctiveQuery::parse("Q(X,Y) :- E(X,Z), E(Z,Y)").unwrap();
        let tiny = Budget::unlimited().with_tuple_limit(5);
        match evaluate_by_join_budgeted(&q, &db, &tiny) {
            Err(CqEvalError::Exhausted(ExhaustionReason::TupleLimitExceeded)) => {}
            other => panic!("expected tuple exhaustion, got {other:?}"),
        }
    }
}
