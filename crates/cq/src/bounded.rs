//! Bounded-variable formulas: Proposition 6.1 and the proof of
//! Theorem 6.2 as code.
//!
//! If **A** has treewidth `k`, its canonical query `φ_A` is expressible
//! in `∃FO^{k+1}_{∧,+}` — the conjunctive fragment with at most `k + 1`
//! *variable names* ("registers"), re-used under nested quantification.
//! This module constructs that formula from a tree decomposition (the
//! paper's "parse trees") and evaluates it on a structure **B** with
//! memoization, realizing the polynomial combined complexity of bounded-
//! variable evaluation that Theorem 6.2's proof invokes. The dynamic
//! program in `cspdb-decomp` computes the same thing from the other
//! direction; tests confirm they agree.

use cspdb_core::{RelId, Structure};
use cspdb_decomp::{from_elimination_order, min_fill_order, Graph, TreeDecomposition};
use std::collections::HashMap;

/// A formula of `∃FO^{r}_{∧,+}` over register indices `0..r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedFormula {
    /// An atom `R(regs...)`.
    Atom {
        /// Relation symbol (of the shared vocabulary).
        rel: RelId,
        /// Register indices, one per column.
        regs: Vec<u8>,
    },
    /// Conjunction.
    And(Vec<BoundedFormula>),
    /// Existential quantification over one register.
    Exists {
        /// The quantified register.
        reg: u8,
        /// The body.
        body: Box<BoundedFormula>,
    },
    /// The true formula.
    True,
}

impl BoundedFormula {
    /// Number of distinct registers mentioned (bound or free) — the
    /// "k+1" of Proposition 6.1.
    pub fn register_count(&self) -> usize {
        let mut used = std::collections::BTreeSet::new();
        self.collect_registers(&mut used);
        used.len()
    }

    fn collect_registers(&self, used: &mut std::collections::BTreeSet<u8>) {
        match self {
            BoundedFormula::Atom { regs, .. } => used.extend(regs.iter().copied()),
            BoundedFormula::And(fs) => {
                for f in fs {
                    f.collect_registers(used);
                }
            }
            BoundedFormula::Exists { reg, body } => {
                used.insert(*reg);
                body.collect_registers(used);
            }
            BoundedFormula::True => {}
        }
    }

    /// Free registers of the formula.
    pub fn free_registers(&self) -> Vec<u8> {
        let mut free = std::collections::BTreeSet::new();
        self.collect_free(&mut free, &mut Vec::new());
        free.into_iter().collect()
    }

    fn collect_free(&self, free: &mut std::collections::BTreeSet<u8>, bound: &mut Vec<u8>) {
        match self {
            BoundedFormula::Atom { regs, .. } => {
                for r in regs {
                    if !bound.contains(r) {
                        free.insert(*r);
                    }
                }
            }
            BoundedFormula::And(fs) => {
                for f in fs {
                    f.collect_free(free, bound);
                }
            }
            BoundedFormula::Exists { reg, body } => {
                bound.push(*reg);
                body.collect_free(free, bound);
                bound.pop();
            }
            BoundedFormula::True => {}
        }
    }
}

/// Builds the `∃FO^{w+1}` sentence equivalent to `φ_A` from a tree
/// decomposition of **A** of width `w`, assigning domain elements to
/// registers scope-locally so that at most `w + 1` registers exist.
///
/// # Errors
///
/// Returns a message if the decomposition is invalid for **A**.
pub fn sentence_from_decomposition(
    a: &Structure,
    td: &TreeDecomposition,
) -> Result<BoundedFormula, String> {
    td.validate_structure(a)?;
    if a.domain_size() == 0 {
        return Ok(BoundedFormula::True);
    }
    let width_plus_1 = td.bags.iter().map(Vec::len).max().unwrap_or(1);
    // Assign each fact of A to one covering bag.
    let mut bag_facts: Vec<Vec<(RelId, Vec<u32>)>> = vec![Vec::new(); td.bags.len()];
    for (id, rel) in a.relations() {
        'fact: for t in rel.iter() {
            for (bi, bag) in td.bags.iter().enumerate() {
                if t.iter().all(|x| bag.binary_search(x).is_ok()) {
                    bag_facts[bi].push((id, t.to_vec()));
                    continue 'fact;
                }
            }
            unreachable!("validated coverage");
        }
    }
    // Root at 0; DFS to build the formula.
    let adj = td.adjacency();
    let nb = td.bags.len();
    let mut visited = vec![false; nb];
    visited[0] = true;
    // Register allocation: per recursion, elements of the current bag
    // hold registers; a child's fresh elements grab registers unused by
    // the shared (bag ∩ child-bag) elements.
    let root_regs: HashMap<u32, u8> = td.bags[0]
        .iter()
        .enumerate()
        .map(|(i, &e)| (e, i as u8))
        .collect();
    let body = build_node(
        a,
        td,
        &adj,
        &bag_facts,
        0,
        &root_regs,
        &mut visited,
        width_plus_1 as u8,
    );
    // Quantify the root bag's registers.
    let mut formula = body;
    for (_, &r) in root_regs.iter() {
        formula = BoundedFormula::Exists {
            reg: r,
            body: Box::new(formula),
        };
    }
    debug_assert!(formula.register_count() <= width_plus_1);
    debug_assert!(formula.free_registers().is_empty());
    Ok(formula)
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn build_node(
    a: &Structure,
    td: &TreeDecomposition,
    adj: &[Vec<usize>],
    bag_facts: &[Vec<(RelId, Vec<u32>)>],
    node: usize,
    regs: &HashMap<u32, u8>,
    visited: &mut Vec<bool>,
    num_regs: u8,
) -> BoundedFormula {
    let mut conjuncts = Vec::new();
    for (rel, t) in &bag_facts[node] {
        conjuncts.push(BoundedFormula::Atom {
            rel: *rel,
            regs: t.iter().map(|e| regs[e]).collect(),
        });
    }
    let children: Vec<usize> = adj[node].iter().copied().filter(|&c| !visited[c]).collect();
    for c in children {
        visited[c] = true;
        // Shared elements keep their registers; fresh elements get
        // registers not used by shared ones.
        let shared: Vec<u32> = td.bags[c]
            .iter()
            .copied()
            .filter(|e| regs.contains_key(e) && td.bags[node].binary_search(e).is_ok())
            .collect();
        let mut child_regs: HashMap<u32, u8> = shared.iter().map(|e| (*e, regs[e])).collect();
        let taken: std::collections::BTreeSet<u8> = child_regs.values().copied().collect();
        let mut free_regs = (0..num_regs).filter(|r| !taken.contains(r));
        let mut fresh: Vec<u8> = Vec::new();
        for &e in &td.bags[c] {
            if let std::collections::hash_map::Entry::Vacant(e) = child_regs.entry(e) {
                let r = free_regs.next().expect("bag size <= num_regs");
                e.insert(r);
                fresh.push(r);
            }
        }
        let mut sub = build_node(a, td, adj, bag_facts, c, &child_regs, visited, num_regs);
        for r in fresh {
            sub = BoundedFormula::Exists {
                reg: r,
                body: Box::new(sub),
            };
        }
        conjuncts.push(sub);
    }
    match conjuncts.len() {
        0 => BoundedFormula::True,
        1 => conjuncts.pop().expect("len 1"),
        _ => BoundedFormula::And(conjuncts),
    }
}

/// Memo table: (subformula identity, live-register environment) -> value.
type EvalMemo = HashMap<(usize, Vec<(u8, u32)>), bool>;

/// Evaluates a bounded-variable *sentence* (no free registers) on **B**
/// with memoization on `(subformula, live-register environment)` — the
/// polynomial-time combined-complexity evaluation of `∃FO^k` cited from
/// [58] in the proof of Theorem 6.2.
pub fn evaluate_sentence(formula: &BoundedFormula, b: &Structure) -> bool {
    let mut env: Vec<Option<u32>> = vec![None; 256];
    let mut memo: EvalMemo = HashMap::new();
    eval(formula, b, &mut env, &mut memo)
}

fn eval(
    f: &BoundedFormula,
    b: &Structure,
    env: &mut Vec<Option<u32>>,
    memo: &mut EvalMemo,
) -> bool {
    match f {
        BoundedFormula::True => true,
        BoundedFormula::Atom { rel, regs } => {
            let tuple: Vec<u32> = regs
                .iter()
                .map(|&r| env[r as usize].expect("atom registers are in scope"))
                .collect();
            b.relation(*rel).contains(&tuple)
        }
        BoundedFormula::And(fs) => fs.iter().all(|g| eval(g, b, env, memo)),
        BoundedFormula::Exists { reg, body } => {
            // Memo key: identity of this subformula + restriction of the
            // environment to its free registers.
            let key_regs: Vec<(u8, u32)> = f
                .free_registers()
                .iter()
                .map(|&r| (r, env[r as usize].expect("free register in scope")))
                .collect();
            let key = (f as *const BoundedFormula as usize, key_regs);
            if let Some(&v) = memo.get(&key) {
                return v;
            }
            let saved = env[*reg as usize];
            let mut result = false;
            for value in 0..b.domain_size() as u32 {
                env[*reg as usize] = Some(value);
                if eval(body, b, env, memo) {
                    result = true;
                    break;
                }
            }
            env[*reg as usize] = saved;
            memo.insert(key, result);
            result
        }
    }
}

/// End-to-end Theorem 6.2 pipeline: decompose **A** (min-fill), build the
/// `∃FO^{w+1}` sentence, evaluate it on **B**. Returns
/// `(registers used, answer)`.
pub fn theorem_6_2_decide(a: &Structure, b: &Structure) -> (usize, bool) {
    if a.domain_size() == 0 {
        return (0, true);
    }
    if b.domain_size() == 0 {
        return (0, false);
    }
    let g = Graph::gaifman(a);
    let order = min_fill_order(&g);
    let td = from_elimination_order(&g, &order);
    let sentence = sentence_from_decomposition(a, &td).expect("constructed decomposition");
    let regs = sentence.register_count();
    (regs, evaluate_sentence(&sentence, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{clique, cycle, path};

    #[test]
    fn proposition_6_1_register_bound() {
        // Cycles have treewidth 2: 3 registers suffice.
        let a = cycle(7);
        let (regs, _) = theorem_6_2_decide(&a, &clique(3));
        assert!(regs <= 3, "used {regs} registers");
        // Paths have treewidth 1: 2 registers.
        let p = path(6);
        let (regs, _) = theorem_6_2_decide(&p, &clique(2));
        assert!(regs <= 2, "used {regs} registers");
    }

    #[test]
    fn theorem_6_2_agrees_with_semantics() {
        let cases = [
            (cycle(5), clique(3), true),
            (cycle(5), clique(2), false),
            (cycle(6), clique(2), true),
            (cycle(3), clique(3), true),
            (cycle(3), clique(2), false),
            (path(5), clique(2), true),
        ];
        for (a, b, expected) in cases {
            let (_, ans) = theorem_6_2_decide(&a, &b);
            assert_eq!(ans, expected, "on {a}");
        }
    }

    #[test]
    fn agrees_with_decomposition_dp() {
        let mut state = 0xFACEB00C12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..10 {
            let n = 4 + (next() % 4) as usize;
            let voc = cspdb_core::graphs::graph_vocabulary();
            let mut a = cspdb_core::Structure::new(voc, n);
            for i in 1..n as u32 {
                let u = (next() % i as u64) as u32;
                a.insert_by_name("E", &[i, u]).unwrap();
                a.insert_by_name("E", &[u, i]).unwrap();
                if next() % 2 == 0 && i >= 2 {
                    let w = (next() % i as u64) as u32;
                    a.insert_by_name("E", &[i, w]).unwrap();
                    a.insert_by_name("E", &[w, i]).unwrap();
                }
            }
            for b in [clique(2), clique(3)] {
                let (_, via_formula) = theorem_6_2_decide(&a, &b);
                let (_, via_dp) = cspdb_decomp::solve_by_treewidth(&a, &b);
                assert_eq!(via_formula, via_dp.is_some());
            }
        }
    }

    #[test]
    fn empty_structures() {
        let voc = cspdb_core::graphs::graph_vocabulary();
        let empty = cspdb_core::Structure::new(voc.clone(), 0);
        assert!(theorem_6_2_decide(&empty, &clique(2)).1);
        let a = path(2);
        let empty_b = cspdb_core::Structure::new(voc, 0);
        assert!(!theorem_6_2_decide(&a, &empty_b).1);
    }

    #[test]
    fn formula_structure_is_well_formed() {
        let a = path(4);
        let g = Graph::gaifman(&a);
        let order = min_fill_order(&g);
        let td = from_elimination_order(&g, &order);
        let f = sentence_from_decomposition(&a, &td).unwrap();
        assert!(f.free_registers().is_empty());
        assert!(f.register_count() <= 2);
    }

    #[test]
    fn invalid_decomposition_rejected() {
        let a = cycle(4);
        let td = TreeDecomposition {
            bags: vec![vec![0, 1]],
            edges: vec![],
        };
        assert!(sentence_from_decomposition(&a, &td).is_err());
    }
}
