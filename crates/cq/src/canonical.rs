//! Canonical databases and canonical queries — the two directions of the
//! Chandra–Merlin correspondence (Propositions 2.2 and 2.3).
//!
//! * [`canonical_database`] turns a query `Q` into the structure `D^Q`:
//!   variables become domain elements, body atoms become facts, and each
//!   distinguished variable `X_i` gets a fresh unary marker `P_i`.
//! * [`canonical_query`] turns a structure **A** into the Boolean query
//!   `φ_A` whose body conjoins all facts of **A** — the bridge used by
//!   Proposition 2.3 (`hom(A,B)` iff `φ_A` true in **B** iff
//!   `φ_B ⊆ φ_A`).

use crate::query::{ConjunctiveQuery, QueryAtom};
use cspdb_core::{Structure, VocabularyBuilder};
use std::collections::HashMap;

/// The canonical database of a query: the structure `D^Q` plus the
/// element index of each variable.
#[derive(Debug, Clone)]
pub struct CanonicalDatabase {
    /// The structure `D^Q`. Its vocabulary is the query's predicates
    /// plus one unary marker `@dist{i}` per distinguished variable.
    pub structure: Structure,
    /// Maps variable names to domain elements.
    pub element_of_var: HashMap<String, u32>,
}

/// Builds `D^Q` (Proposition 2.2's construction). When
/// `with_markers` is set, distinguished variables receive their unary
/// marker predicates `@dist0, @dist1, ...`; without markers you get the
/// plain body structure (useful for evaluation, where distinguished
/// variables are handled by fixing them instead).
pub fn canonical_database(q: &ConjunctiveQuery, with_markers: bool) -> CanonicalDatabase {
    let vars = q.variables();
    let element_of_var: HashMap<String, u32> = vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v.to_string(), i as u32))
        .collect();
    let mut builder = VocabularyBuilder::new();
    // Predicates in first-use order.
    for a in &q.atoms {
        builder
            .add_or_get(&a.predicate, a.args.len())
            .expect("arity validated by ConjunctiveQuery::new");
    }
    if with_markers {
        for i in 0..q.distinguished.len() {
            builder.add(format!("@dist{i}"), 1).expect("fresh name");
        }
    }
    let voc = builder.finish();
    let mut s = Structure::new(voc.clone(), vars.len());
    let mut tuple = Vec::new();
    for a in &q.atoms {
        let id = voc.id(&a.predicate).expect("declared above");
        tuple.clear();
        tuple.extend(a.args.iter().map(|v| element_of_var[v]));
        s.insert(id, &tuple).expect("in range");
    }
    if with_markers {
        for (i, v) in q.distinguished.iter().enumerate() {
            let id = voc.id(&format!("@dist{i}")).expect("declared above");
            s.insert(id, &[element_of_var[v]]).expect("in range");
        }
    }
    CanonicalDatabase {
        structure: s,
        element_of_var,
    }
}

/// Builds the canonical Boolean query `φ_A` of a structure: one variable
/// `x{e}` per domain element, one atom per fact (Proposition 2.3).
pub fn canonical_query(a: &Structure) -> ConjunctiveQuery {
    let mut atoms = Vec::new();
    for (id, rel) in a.relations() {
        let pred = a.vocabulary().name(id).to_owned();
        for t in rel.iter() {
            atoms.push(QueryAtom {
                predicate: pred.clone(),
                args: t.iter().map(|e| format!("x{e}")).collect(),
            });
        }
    }
    // Elements that appear in no fact still exist; they translate to
    // variables constrained by nothing, which conjunctive queries cannot
    // mention without an atom — and semantically they do not affect
    // homomorphism existence into nonempty structures, matching the
    // paper's φ_A over the *facts* of A.
    ConjunctiveQuery::new("PhiA", vec![], atoms).expect("facts are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_canonical_database_example() {
        // D^Q for Q(X1,X2) :- P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2) has facts
        // P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2), P1(X1), P2(X2).
        let q = ConjunctiveQuery::parse("Q(X1,X2) :- P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2)").unwrap();
        let db = canonical_database(&q, true);
        let s = &db.structure;
        assert_eq!(s.domain_size(), 5);
        assert_eq!(s.relation_by_name("P").unwrap().len(), 1);
        assert_eq!(s.relation_by_name("R").unwrap().len(), 2);
        assert_eq!(s.relation_by_name("@dist0").unwrap().len(), 1);
        assert_eq!(s.relation_by_name("@dist1").unwrap().len(), 1);
        let x1 = db.element_of_var["X1"];
        assert!(s.relation_by_name("@dist0").unwrap().contains(&[x1]));
    }

    #[test]
    fn without_markers_no_dist_predicates() {
        let q = ConjunctiveQuery::parse("Q(X) :- E(X,Y)").unwrap();
        let db = canonical_database(&q, false);
        assert!(db.structure.relation_by_name("@dist0").is_err());
        assert_eq!(db.structure.vocabulary().len(), 1);
    }

    #[test]
    fn canonical_query_of_structure_roundtrips() {
        let a = cspdb_core::graphs::cycle(3);
        let q = canonical_query(&a);
        assert!(q.is_boolean());
        assert_eq!(q.atoms.len(), 6);
        // Its canonical database is isomorphic to A (same facts).
        let db = canonical_database(&q, false);
        assert_eq!(db.structure.domain_size(), 3);
        assert_eq!(db.structure.fact_count(), 6);
    }

    #[test]
    fn repeated_variables_in_atoms() {
        let q = ConjunctiveQuery::parse("Q :- E(X,X)").unwrap();
        let db = canonical_database(&q, false);
        assert_eq!(db.structure.domain_size(), 1);
        assert!(db
            .structure
            .relation_by_name("E")
            .unwrap()
            .contains(&[0, 0]));
    }
}
