//! # cspdb-cq
//!
//! Conjunctive queries and the Chandra–Merlin correspondence — the
//! database side of Section 2 of the paper, plus the bounded-variable
//! machinery of Section 6.
//!
//! * [`ConjunctiveQuery`] — rule-form queries with a parser;
//! * [`canonical_database`] / [`canonical_query`] — `D^Q` and `φ_A`,
//!   the two translations of Propositions 2.2 and 2.3;
//! * [`evaluate_by_search`] / [`evaluate_by_join`] — two independent
//!   evaluation engines (homomorphism enumeration vs relational joins);
//! * [`is_contained_in`] / [`is_contained_in_by_eval`] /
//!   [`are_equivalent`] — containment both ways of Proposition 2.2;
//! * [`minimize`] / [`core_retract`] — query cores;
//! * [`BoundedFormula`] / [`sentence_from_decomposition`] /
//!   [`theorem_6_2_decide`] — Proposition 6.1's `∃FO^{k+1}` compilation
//!   of bounded-treewidth canonical queries and its memoized polynomial
//!   evaluation (the literal proof of Theorem 6.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounded;
mod canonical;
mod containment;
mod core_query;
mod eval;
mod query;

pub use bounded::{
    evaluate_sentence, sentence_from_decomposition, theorem_6_2_decide, BoundedFormula,
};
pub use canonical::{canonical_database, canonical_query, CanonicalDatabase};
pub use containment::{are_equivalent, is_contained_in, is_contained_in_by_eval};
pub use core_query::{are_hom_equivalent, core_retract, minimize, structure_core};
pub use eval::{
    boolean_holds, evaluate_by_join, evaluate_by_join_budgeted, evaluate_by_search,
    evaluate_by_search_budgeted, CqEvalError,
};
pub use query::{ConjunctiveQuery, QueryAtom};
