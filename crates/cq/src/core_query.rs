//! Query minimization: cores of conjunctive queries (Chandra–Merlin).
//!
//! Every conjunctive query has a unique (up to isomorphism) minimal
//! equivalent query — its *core* — obtained by folding the canonical
//! database onto itself while fixing the distinguished variables. This is
//! the classical optimization behind Proposition 2.2: redundant atoms are
//! exactly those removed by a retraction.

use crate::canonical::canonical_database;
use crate::query::{ConjunctiveQuery, QueryAtom};
use cspdb_core::Structure;

/// Computes the core of a structure relative to a set of fixed elements:
/// repeatedly fold (retract) the structure onto a proper substructure
/// until no fold exists. Returns the retained elements (sorted) and the
/// final folding map from original elements to retained elements.
pub fn core_retract(a: &Structure, fixed: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let n = a.domain_size();
    let mut fold: Vec<u32> = (0..n as u32).collect();
    let mut alive: Vec<bool> = vec![true; n];
    'outer: loop {
        let alive_elems: Vec<u32> = (0..n as u32).filter(|&e| alive[e as usize]).collect();
        for &victim in &alive_elems {
            if fixed.contains(&victim) {
                continue;
            }
            // Try hom from the current retract to itself avoiding
            // `victim`, fixing the fixed elements and keeping all other
            // alive elements within the alive set.
            let current = a.induced_facts(&alive_elems);
            let allowed: Vec<u32> = alive_elems
                .iter()
                .copied()
                .filter(|&e| e != victim)
                .collect();
            if allowed.is_empty() {
                // A single remaining element cannot fold away (an empty
                // list would read as "unrestricted" downstream).
                continue;
            }
            let mut restrictions: Vec<Vec<u32>> = vec![vec![]; n];
            for &e in &alive_elems {
                restrictions[e as usize] = if fixed.contains(&e) {
                    vec![e]
                } else {
                    allowed.clone()
                };
            }
            // Dead elements are unconstrained (their facts are gone);
            // pin them anywhere valid, e.g. to themselves.
            for e in 0..n as u32 {
                if !alive[e as usize] {
                    restrictions[e as usize] = vec![fold[e as usize]];
                }
            }
            // Invariant: `restrictions` was built with one entry per
            // element of `current`, so the arity check cannot fail.
            if let Some(h) = cspdb_solver::find_restricted(&current, &current, &restrictions)
                .expect("one restriction list per element")
            {
                // Fold through h: victim (and possibly others) retract.
                for e in 0..n {
                    fold[e] = h[fold[e] as usize];
                }
                // Elements mapped away die; the new alive set is the
                // image of the old one under h.
                let mut in_image = vec![false; n];
                for &e in &alive_elems {
                    in_image[h[e as usize] as usize] = true;
                }
                alive.copy_from_slice(&in_image);
                continue 'outer;
            }
        }
        break;
    }
    let retained: Vec<u32> = (0..n as u32).filter(|&e| alive[e as usize]).collect();
    (retained, fold)
}

/// Minimizes a conjunctive query to its core: the returned query is
/// equivalent to the input and has no redundant atoms.
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let canon = canonical_database(q, false);
    let fixed: Vec<u32> = q
        .distinguished
        .iter()
        .map(|v| canon.element_of_var[v])
        .collect();
    let (retained, fold) = core_retract(&canon.structure, &fixed);
    // Names for retained elements: reuse original variable names.
    let vars = q.variables();
    let name_of = |e: u32| -> String { vars[e as usize].to_owned() };
    let _ = &retained;
    // Rebuild atoms from the folded structure: fold each original atom
    // and deduplicate.
    let mut atoms: Vec<QueryAtom> = Vec::new();
    for a in &q.atoms {
        let folded = QueryAtom {
            predicate: a.predicate.clone(),
            args: a
                .args
                .iter()
                .map(|v| name_of(fold[canon.element_of_var[v] as usize]))
                .collect(),
        };
        if !atoms.contains(&folded) {
            atoms.push(folded);
        }
    }
    ConjunctiveQuery::new(q.name.clone(), q.distinguished.clone(), atoms)
        .expect("folding fixes distinguished variables")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::are_equivalent;

    fn q(src: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(src).unwrap()
    }

    #[test]
    fn redundant_atom_removed() {
        let original = q("Q(X) :- E(X,Y), E(X,Z)");
        let m = minimize(&original);
        assert_eq!(m.atoms.len(), 1);
        assert!(are_equivalent(&original, &m).unwrap());
    }

    #[test]
    fn non_redundant_query_unchanged() {
        let original = q("Q(X,Y) :- E(X,Y)");
        let m = minimize(&original);
        assert_eq!(m.atoms.len(), 1);
        let tri = q("Q :- E(X,Y), E(Y,Z), E(Z,X)");
        let m = minimize(&tri);
        assert_eq!(m.atoms.len(), 3, "a triangle is a core");
    }

    #[test]
    fn directed_even_cycle_is_a_core() {
        // The *directed* 4-cycle has no 2-cycle to fold onto: its only
        // endomorphisms are rotations, so it is a core.
        let c4 = q("Q :- E(A,B), E(B,C), E(C,D), E(D,A)");
        let m = minimize(&c4);
        assert_eq!(m.atoms.len(), 4);
    }

    #[test]
    fn undirected_even_cycle_folds_to_an_edge() {
        // The *undirected* 4-cycle (both directions per edge) is
        // homomorphically equivalent to a single undirected edge (K2).
        let c4 = q("Q :- E(A,B), E(B,A), E(B,C), E(C,B), E(C,D), E(D,C), E(D,A), E(A,D)");
        let m = minimize(&c4);
        assert_eq!(m.atoms.len(), 2, "undirected C4 folds to K2: {m}");
        assert!(are_equivalent(&c4, &m).unwrap());
    }

    #[test]
    fn odd_cycle_query_is_core() {
        let c5 = q("Q :- E(A,B), E(B,C), E(C,D), E(D,F), E(F,A)");
        let m = minimize(&c5);
        assert_eq!(m.atoms.len(), 5, "odd cycles are cores");
    }

    #[test]
    fn distinguished_variables_are_never_folded() {
        // X and Y both start edges into Z-chains; without distinguished
        // status they would fold; with it they must both stay.
        let original = q("Q(X,Y) :- E(X,Z), E(Y,Z)");
        let m = minimize(&original);
        assert!(are_equivalent(&original, &m).unwrap());
        assert!(m.distinguished == vec!["X", "Y"]);
        // Both distinguished variables still appear.
        let vars: std::collections::BTreeSet<&str> = m
            .atoms
            .iter()
            .flat_map(|a| a.args.iter().map(String::as_str))
            .collect();
        assert!(vars.contains("X") && vars.contains("Y"));
    }

    #[test]
    fn minimization_is_idempotent() {
        for src in [
            "Q(X) :- E(X,Y), E(X,Z), E(Z,W)",
            "Q :- E(A,B), E(B,C), E(C,D), E(D,A)",
            "Q(X) :- E(X,X)",
        ] {
            let once = minimize(&q(src));
            let twice = minimize(&once);
            assert_eq!(once.atoms.len(), twice.atoms.len(), "{src}");
            assert!(are_equivalent(&once, &twice).unwrap());
        }
    }

    #[test]
    fn path_with_pendant_folds() {
        // Q(X) :- E(X,Y), E(Y,Z), E(Y,W): W and Z fold together.
        let original = q("Q(X) :- E(X,Y), E(Y,Z), E(Y,W)");
        let m = minimize(&original);
        assert_eq!(m.atoms.len(), 2);
        assert!(are_equivalent(&original, &m).unwrap());
    }
}

/// True if two structures are homomorphically equivalent (homomorphisms
/// both ways) — e.g. every bipartite graph with an edge is equivalent to
/// K2. Homomorphic equivalence is the right notion of "same template"
/// for non-uniform CSP: `CSP(B)` and `CSP(B')` coincide iff `B ~ B'`.
pub fn are_hom_equivalent(a: &Structure, b: &Structure) -> bool {
    cspdb_solver::homomorphism_exists(a, b) && cspdb_solver::homomorphism_exists(b, a)
}

/// Computes the core of a structure (no distinguished elements): the
/// unique (up to isomorphism) minimal induced substructure that the
/// structure retracts onto. Returns the core as a standalone structure
/// with a dense domain.
pub fn structure_core(a: &Structure) -> Structure {
    let (retained, fold) = core_retract(a, &[]);
    // Rename retained elements densely.
    let mut rename = vec![0u32; a.domain_size()];
    for (new, &old) in retained.iter().enumerate() {
        rename[old as usize] = new as u32;
    }
    let full_map: Vec<u32> = (0..a.domain_size())
        .map(|e| rename[fold[e] as usize])
        .collect();
    a.map_domain(&full_map, retained.len())
        .expect("fold image is in range")
}

#[cfg(test)]
mod structure_core_tests {
    use super::*;
    use cspdb_core::graphs::{clique, complete_bipartite, cycle, path};

    #[test]
    fn bipartite_graphs_core_to_k2() {
        for g in [cycle(4), cycle(6), complete_bipartite(2, 3), path(4)] {
            let core = structure_core(&g);
            assert_eq!(core.domain_size(), 2, "core of bipartite-with-edge is K2");
            assert!(are_hom_equivalent(&g, &core));
            assert!(are_hom_equivalent(&core, &clique(2)));
        }
    }

    #[test]
    fn odd_cycles_are_their_own_cores() {
        for n in [3usize, 5, 7] {
            let g = cycle(n);
            let core = structure_core(&g);
            assert_eq!(core.domain_size(), n);
        }
    }

    #[test]
    fn cliques_are_cores() {
        for k in 2..=4usize {
            assert_eq!(structure_core(&clique(k)).domain_size(), k);
        }
    }

    #[test]
    fn hom_equivalence_examples() {
        assert!(are_hom_equivalent(&cycle(4), &clique(2)));
        assert!(!are_hom_equivalent(&cycle(5), &clique(2)));
        assert!(!are_hom_equivalent(&clique(3), &clique(2)));
        // C5 and C7 are NOT hom-equivalent: C7 -> C5 exists? Odd girth:
        // hom(C_m, C_n) for odd cycles exists iff n <= m. So C7 -> C5
        // yes, C5 -> C7 no.
        assert!(cspdb_solver::homomorphism_exists(&cycle(7), &cycle(5)));
        assert!(!cspdb_solver::homomorphism_exists(&cycle(5), &cycle(7)));
        assert!(!are_hom_equivalent(&cycle(5), &cycle(7)));
    }

    #[test]
    fn core_is_idempotent() {
        for g in [cycle(6), complete_bipartite(3, 3), clique(3)] {
            let once = structure_core(&g);
            let twice = structure_core(&once);
            assert_eq!(once.domain_size(), twice.domain_size());
        }
    }

    #[test]
    fn empty_and_edgeless_structures() {
        let voc = cspdb_core::graphs::graph_vocabulary();
        let empty = Structure::new(voc.clone(), 0);
        assert_eq!(structure_core(&empty).domain_size(), 0);
        // Edgeless nonempty graph cores to a single vertex.
        let edgeless = Structure::new(voc, 3);
        assert_eq!(structure_core(&edgeless).domain_size(), 1);
    }
}
