//! Conjunctive queries in rule form.
//!
//! A conjunctive query (Section 2 of the paper) is a positive existential
//! conjunctive formula, written as a rule: the head lists the
//! distinguished (free) variables, the body is a conjunction of atoms.
//!
//! ```text
//! Q(X1,X2) :- P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2)
//! ```

use std::collections::BTreeSet;
use std::fmt;

/// An atom `P(v1, ..., vn)` over variable names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryAtom {
    /// Predicate name.
    pub predicate: String,
    /// Argument variables.
    pub args: Vec<String>,
}

/// A conjunctive query in rule form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Head name (cosmetic).
    pub name: String,
    /// Distinguished variables, in head order.
    pub distinguished: Vec<String>,
    /// Body atoms.
    pub atoms: Vec<QueryAtom>,
}

impl ConjunctiveQuery {
    /// Builds a query, validating that distinguished variables occur in
    /// the body and that predicates are used with consistent arities.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message otherwise.
    pub fn new(
        name: impl Into<String>,
        distinguished: Vec<String>,
        atoms: Vec<QueryAtom>,
    ) -> Result<Self, String> {
        let body_vars: BTreeSet<&str> = atoms
            .iter()
            .flat_map(|a| a.args.iter().map(String::as_str))
            .collect();
        for v in &distinguished {
            if !body_vars.contains(v.as_str()) {
                return Err(format!("distinguished variable {v} not in body"));
            }
        }
        let mut arity: std::collections::HashMap<&str, usize> = Default::default();
        for a in &atoms {
            match arity.entry(a.predicate.as_str()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != a.args.len() {
                        return Err(format!(
                            "predicate {} used with arities {} and {}",
                            a.predicate,
                            e.get(),
                            a.args.len()
                        ));
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(a.args.len());
                }
            }
        }
        Ok(ConjunctiveQuery {
            name: name.into(),
            distinguished,
            atoms,
        })
    }

    /// Parses `Head(X, Y) :- P(X,Z), R(Z,Y)` (Boolean queries: `Head :-
    /// ...`).
    ///
    /// # Errors
    ///
    /// Returns a message on malformed syntax.
    pub fn parse(src: &str) -> Result<Self, String> {
        let (head, body) = src
            .trim()
            .trim_end_matches('.')
            .split_once(":-")
            .ok_or_else(|| "expected `head :- body`".to_owned())?;
        let (name, distinguished) = parse_atom_syntax(head.trim())?;
        let mut atoms = Vec::new();
        // Split body on commas at paren depth 0.
        let body = body.trim();
        let mut depth = 0usize;
        let mut start = 0usize;
        let mut parts = Vec::new();
        for (i, c) in body.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    parts.push(&body[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        parts.push(&body[start..]);
        for part in parts {
            let (pred, args) = parse_atom_syntax(part.trim())?;
            if args.is_empty() {
                return Err(format!("body atom {pred} has no arguments"));
            }
            atoms.push(QueryAtom {
                predicate: pred,
                args,
            });
        }
        ConjunctiveQuery::new(name, distinguished, atoms)
    }

    /// All variables, distinguished first (in head order), then the rest
    /// in order of first occurrence.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut out: Vec<&str> = Vec::new();
        for v in &self.distinguished {
            if seen.insert(v) {
                out.push(v);
            }
        }
        for a in &self.atoms {
            for v in &a.args {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// True if the query is Boolean (no distinguished variables).
    pub fn is_boolean(&self) -> bool {
        self.distinguished.is_empty()
    }
}

fn parse_atom_syntax(src: &str) -> Result<(String, Vec<String>), String> {
    match src.find('(') {
        None => {
            let name = src.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(format!("bad atom `{src}`"));
            }
            Ok((name.to_owned(), vec![]))
        }
        Some(i) => {
            let name = src[..i].trim();
            let rest = src[i + 1..]
                .trim()
                .strip_suffix(')')
                .ok_or_else(|| format!("missing `)` in `{src}`"))?;
            let args: Vec<String> = rest.split(',').map(|a| a.trim().to_owned()).collect();
            if name.is_empty() || args.iter().any(String::is_empty) {
                return Err(format!("bad atom `{src}`"));
            }
            Ok((name.to_owned(), args))
        }
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if !self.distinguished.is_empty() {
            write!(f, "({})", self.distinguished.join(","))?;
        }
        write!(f, " :- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}({})", a.predicate, a.args.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        let q = ConjunctiveQuery::parse("Q(X1,X2) :- P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2)").unwrap();
        assert_eq!(q.distinguished, vec!["X1", "X2"]);
        assert_eq!(q.atoms.len(), 3);
        assert_eq!(q.atoms[0].args, vec!["X1", "Z1", "Z2"]);
        assert_eq!(q.variables(), vec!["X1", "X2", "Z1", "Z2", "Z3"]);
        assert_eq!(q.to_string(), "Q(X1,X2) :- P(X1,Z1,Z2), R(Z2,Z3), R(Z3,X2)");
    }

    #[test]
    fn boolean_queries() {
        let q = ConjunctiveQuery::parse("Q :- E(X,Y), E(Y,X)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.variables(), vec!["X", "Y"]);
    }

    #[test]
    fn rejects_head_variable_not_in_body() {
        assert!(ConjunctiveQuery::parse("Q(W) :- E(X,Y)").is_err());
    }

    #[test]
    fn rejects_inconsistent_arity() {
        assert!(ConjunctiveQuery::parse("Q :- E(X,Y), E(X)").is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(ConjunctiveQuery::parse("Q(X)").is_err());
        assert!(ConjunctiveQuery::parse("Q :- E(X").is_err());
        assert!(ConjunctiveQuery::parse("Q :- ()").is_err());
    }
}
