//! Nondeterministic and deterministic finite automata: Thompson
//! construction, subset construction, and the subset-image computations
//! used by the Section 7 constraint template.

use crate::regex::Regex;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// An NFA with ε-transitions over a symbol alphabet.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// The alphabet (sorted symbols).
    pub alphabet: Vec<char>,
    /// Per-state transitions: `(symbol index or None for ε, target)`.
    pub transitions: Vec<Vec<(Option<usize>, usize)>>,
    /// Start state.
    pub start: usize,
    /// Accepting states.
    pub accepting: Vec<bool>,
}

impl Nfa {
    /// Thompson construction from a regex; the alphabet may be widened
    /// beyond the symbols occurring in the pattern by passing `alphabet`
    /// (must contain every pattern symbol).
    ///
    /// # Panics
    ///
    /// Panics if the pattern uses a symbol outside `alphabet`.
    pub fn from_regex(r: &Regex, alphabet: &[char]) -> Nfa {
        let alphabet: Vec<char> = {
            let mut a = alphabet.to_vec();
            a.sort_unstable();
            a.dedup();
            a
        };
        let mut nfa = Nfa {
            alphabet: alphabet.clone(),
            transitions: Vec::new(),
            start: 0,
            accepting: Vec::new(),
        };
        let (s, t) = build(&mut nfa, r);
        nfa.start = s;
        nfa.accepting = vec![false; nfa.transitions.len()];
        nfa.accepting[t] = true;
        nfa
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    fn symbol_index(&self, c: char) -> usize {
        self.alphabet.binary_search(&c).expect("symbol in alphabet")
    }

    /// ε-closure of a set of states.
    pub fn epsilon_closure(&self, states: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut out = states.clone();
        let mut queue: VecDeque<usize> = states.iter().copied().collect();
        while let Some(q) = queue.pop_front() {
            for &(label, target) in &self.transitions[q] {
                if label.is_none() && out.insert(target) {
                    queue.push_back(target);
                }
            }
        }
        out
    }

    /// One-symbol image: ε-closure of the targets of `symbol`-transitions
    /// from `states` (which should already be ε-closed).
    pub fn step(&self, states: &BTreeSet<usize>, symbol: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for &q in states {
            for &(label, target) in &self.transitions[q] {
                if label == Some(symbol) {
                    out.insert(target);
                }
            }
        }
        self.epsilon_closure(&out)
    }

    /// The ε-closed start set.
    pub fn start_set(&self) -> BTreeSet<usize> {
        self.epsilon_closure(&std::iter::once(self.start).collect())
    }

    /// True if the word (symbol indices) is accepted.
    pub fn accepts(&self, word: &[usize]) -> bool {
        let mut current = self.start_set();
        for &s in word {
            current = self.step(&current, s);
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&q| self.accepting[q])
    }

    /// True if the word of characters is accepted.
    pub fn accepts_chars(&self, word: &str) -> bool {
        let symbols: Option<Vec<usize>> = word
            .chars()
            .map(|c| self.alphabet.binary_search(&c).ok())
            .collect();
        match symbols {
            Some(w) => self.accepts(&w),
            None => false,
        }
    }

    /// Subset construction.
    #[allow(clippy::needless_range_loop)] // index drives two parallel tables
    pub fn determinize(&self) -> Dfa {
        let start = self.start_set();
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut sets: Vec<BTreeSet<usize>> = vec![start.clone()];
        index.insert(start, 0);
        let mut transitions: Vec<Vec<usize>> = Vec::new();
        let mut queue = VecDeque::from([0usize]);
        while let Some(i) = queue.pop_front() {
            while transitions.len() <= i {
                transitions.push(vec![usize::MAX; self.alphabet.len()]);
            }
            for s in 0..self.alphabet.len() {
                let next = self.step(&sets[i].clone(), s);
                let j = *index.entry(next.clone()).or_insert_with(|| {
                    sets.push(next);
                    queue.push_back(sets.len() - 1);
                    sets.len() - 1
                });
                transitions[i][s] = j;
            }
        }
        while transitions.len() < sets.len() {
            transitions.push(vec![usize::MAX; self.alphabet.len()]);
        }
        let accepting: Vec<bool> = sets
            .iter()
            .map(|set| set.iter().any(|&q| self.accepting[q]))
            .collect();
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            start: 0,
            accepting,
        }
    }
}

fn build(nfa: &mut Nfa, r: &Regex) -> (usize, usize) {
    let new_state = |nfa: &mut Nfa| -> usize {
        nfa.transitions.push(Vec::new());
        nfa.transitions.len() - 1
    };
    match r {
        Regex::Empty => {
            let s = new_state(nfa);
            let t = new_state(nfa);
            (s, t)
        }
        Regex::Epsilon => {
            let s = new_state(nfa);
            let t = new_state(nfa);
            nfa.transitions[s].push((None, t));
            (s, t)
        }
        Regex::Literal(c) => {
            let s = new_state(nfa);
            let t = new_state(nfa);
            let idx = nfa.symbol_index(*c);
            nfa.transitions[s].push((Some(idx), t));
            (s, t)
        }
        Regex::Concat(a, b) => {
            let (sa, ta) = build(nfa, a);
            let (sb, tb) = build(nfa, b);
            nfa.transitions[ta].push((None, sb));
            (sa, tb)
        }
        Regex::Alt(a, b) => {
            let s = new_state(nfa);
            let t = new_state(nfa);
            let (sa, ta) = build(nfa, a);
            let (sb, tb) = build(nfa, b);
            nfa.transitions[s].push((None, sa));
            nfa.transitions[s].push((None, sb));
            nfa.transitions[ta].push((None, t));
            nfa.transitions[tb].push((None, t));
            (s, t)
        }
        Regex::Star(a) => {
            let s = new_state(nfa);
            let t = new_state(nfa);
            let (sa, ta) = build(nfa, a);
            nfa.transitions[s].push((None, sa));
            nfa.transitions[s].push((None, t));
            nfa.transitions[ta].push((None, sa));
            nfa.transitions[ta].push((None, t));
            (s, t)
        }
    }
}

/// An ε-free NFA with possibly several start states, trimmed to useful
/// (reachable and co-reachable) states — the `A_Q = (Σ, S, S0, ρ, F)`
/// form that Section 7's constraint template construction consumes.
#[derive(Debug, Clone)]
pub struct EpsilonFreeNfa {
    /// The alphabet, sorted.
    pub alphabet: Vec<char>,
    /// Number of states.
    pub num_states: usize,
    /// Start states `S0`.
    pub start: BTreeSet<usize>,
    /// Accepting states `F`.
    pub accepting: Vec<bool>,
    /// `step[state][symbol]` = successor set.
    pub step: Vec<Vec<BTreeSet<usize>>>,
}

impl EpsilonFreeNfa {
    /// Collapses forward-bisimilar states (same acceptance and, per
    /// symbol, the same set of successor blocks) by partition
    /// refinement. Preserves the language and shrinks the state count —
    /// which matters quadratically-exponentially for the Section 7
    /// template whose domain is `2^S`.
    #[allow(clippy::needless_range_loop)] // symbol indices drive parallel tables
    pub fn reduce(&self) -> EpsilonFreeNfa {
        let n = self.num_states;
        if n == 0 {
            return self.clone();
        }
        let k = self.alphabet.len();
        // Initial partition by acceptance; refinement only ever splits
        // blocks (signatures include the old block id), so the loop
        // terminates when the block count stops growing.
        let mut block: Vec<usize> = self.accepting.iter().map(|&a| usize::from(a)).collect();
        let mut count = block.iter().copied().max().unwrap_or(0) + 1;
        loop {
            let mut sig_index: HashMap<(usize, Vec<Vec<usize>>), usize> = HashMap::new();
            let mut new_block = vec![0usize; n];
            for q in 0..n {
                let sig: Vec<Vec<usize>> = (0..k)
                    .map(|s| {
                        let mut bs: Vec<usize> =
                            self.step[q][s].iter().map(|&t| block[t]).collect();
                        bs.sort_unstable();
                        bs.dedup();
                        bs
                    })
                    .collect();
                let next = sig_index.len();
                let id = *sig_index.entry((block[q], sig)).or_insert(next);
                new_block[q] = id;
            }
            let new_count = sig_index.len();
            block = new_block;
            if new_count == count {
                break;
            }
            count = new_count;
        }
        let num_blocks = block.iter().copied().max().unwrap_or(0) + 1;
        let mut out = EpsilonFreeNfa {
            alphabet: self.alphabet.clone(),
            num_states: num_blocks,
            start: self.start.iter().map(|&q| block[q]).collect(),
            accepting: vec![false; num_blocks],
            step: vec![vec![BTreeSet::new(); k]; num_blocks],
        };
        for q in 0..n {
            if self.accepting[q] {
                out.accepting[block[q]] = true;
            }
            for s in 0..k {
                for &t in &self.step[q][s] {
                    out.step[block[q]][s].insert(block[t]);
                }
            }
        }
        out
    }

    /// Subset image `ρ(σ, a)`.
    pub fn image(&self, states: &BTreeSet<usize>, symbol: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for &q in states {
            out.extend(self.step[q][symbol].iter().copied());
        }
        out
    }

    /// True if the word (symbol indices) is accepted.
    pub fn accepts(&self, word: &[usize]) -> bool {
        let mut current = self.start.clone();
        for &s in word {
            current = self.image(&current, s);
        }
        current.iter().any(|&q| self.accepting[q])
    }
}

impl Nfa {
    /// Converts to an ε-free NFA and trims to useful states (reachable
    /// from the start and co-reachable to acceptance). The language is
    /// preserved; the state count shrinks substantially versus the raw
    /// Thompson automaton, which matters because the Section 7 template
    /// has domain `2^S`.
    #[allow(clippy::needless_range_loop)] // symbol indices drive parallel tables
    pub fn epsilon_free_trimmed(&self) -> EpsilonFreeNfa {
        let n = self.num_states();
        let k = self.alphabet.len();
        // ε-free over original states.
        let closure_of = |q: usize| self.epsilon_closure(&std::iter::once(q).collect());
        let mut step: Vec<Vec<BTreeSet<usize>>> = vec![vec![BTreeSet::new(); k]; n];
        let mut accepting = vec![false; n];
        for q in 0..n {
            let cl = closure_of(q);
            accepting[q] = cl.iter().any(|&x| self.accepting[x]);
            for s in 0..k {
                let mut targets = BTreeSet::new();
                for &x in &cl {
                    for &(label, t) in &self.transitions[x] {
                        if label == Some(s) {
                            targets.insert(t);
                        }
                    }
                }
                step[q][s] = targets;
            }
        }
        let start: BTreeSet<usize> = std::iter::once(self.start).collect();
        // Reachable states.
        let mut reachable = vec![false; n];
        let mut queue: VecDeque<usize> = start.iter().copied().collect();
        for &q in &start {
            reachable[q] = true;
        }
        while let Some(q) = queue.pop_front() {
            for s in 0..k {
                for &t in &step[q][s] {
                    if !reachable[t] {
                        reachable[t] = true;
                        queue.push_back(t);
                    }
                }
            }
        }
        // Co-reachable states (reverse BFS from accepting).
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (q, row) in step.iter().enumerate() {
            for targets in row {
                for &t in targets {
                    rev[t].push(q);
                }
            }
        }
        let mut co = vec![false; n];
        let mut queue: VecDeque<usize> = (0..n).filter(|&q| accepting[q]).collect();
        for q in queue.iter() {
            co[*q] = true;
        }
        while let Some(q) = queue.pop_front() {
            for &p in &rev[q] {
                if !co[p] {
                    co[p] = true;
                    queue.push_back(p);
                }
            }
        }
        let useful: Vec<usize> = (0..n).filter(|&q| reachable[q] && co[q]).collect();
        let remap: HashMap<usize, usize> =
            useful.iter().enumerate().map(|(i, &q)| (q, i)).collect();
        let m = useful.len();
        let mut out = EpsilonFreeNfa {
            alphabet: self.alphabet.clone(),
            num_states: m,
            start: start.iter().filter_map(|q| remap.get(q).copied()).collect(),
            accepting: useful.iter().map(|&q| accepting[q]).collect(),
            step: vec![vec![BTreeSet::new(); k]; m],
        };
        for (i, &q) in useful.iter().enumerate() {
            for s in 0..k {
                out.step[i][s] = step[q][s]
                    .iter()
                    .filter_map(|t| remap.get(t).copied())
                    .collect();
            }
        }
        out
    }
}

/// A complete DFA (every state has a transition on every symbol; the
/// dead state is an ordinary state produced by determinization).
#[derive(Debug, Clone)]
pub struct Dfa {
    /// The alphabet (sorted symbols).
    pub alphabet: Vec<char>,
    /// `transitions[state][symbol] = state`.
    pub transitions: Vec<Vec<usize>>,
    /// Start state.
    pub start: usize,
    /// Accepting states.
    pub accepting: Vec<bool>,
}

impl Dfa {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Runs the DFA on a word of symbol indices.
    pub fn run(&self, word: &[usize]) -> usize {
        let mut q = self.start;
        for &s in word {
            q = self.transitions[q][s];
        }
        q
    }

    /// True if the word is accepted.
    pub fn accepts(&self, word: &[usize]) -> bool {
        self.accepting[self.run(word)]
    }

    /// Complements the DFA (flips acceptance; requires completeness,
    /// which [`Nfa::determinize`] guarantees).
    pub fn complement(&self) -> Dfa {
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions: self.transitions.clone(),
            start: self.start,
            accepting: self.accepting.iter().map(|&a| !a).collect(),
        }
    }

    /// True if the language is empty.
    pub fn is_empty(&self) -> bool {
        // BFS from start over all symbols.
        let mut seen = vec![false; self.num_states()];
        let mut queue = VecDeque::from([self.start]);
        seen[self.start] = true;
        while let Some(q) = queue.pop_front() {
            if self.accepting[q] {
                return false;
            }
            for &t in &self.transitions[q] {
                if !seen[t] {
                    seen[t] = true;
                    queue.push_back(t);
                }
            }
        }
        true
    }

    /// Extracts a regular expression for the DFA's language by state
    /// elimination. Exponential in the worst case; used to present
    /// rewritings (Section 7 / [8]) in readable form.
    #[allow(clippy::needless_range_loop)] // GNFA matrix indexing
    pub fn to_regex(&self) -> Regex {
        // Generalized NFA: matrix of regexes between states 0..n+1
        // (n = start', n+1 = accept').
        let n = self.num_states();
        let mut m: Vec<Vec<Regex>> = vec![vec![Regex::Empty; n + 2]; n + 2];
        for (q, row) in self.transitions.iter().enumerate() {
            for (s, &t) in row.iter().enumerate() {
                let lit = Regex::Literal(self.alphabet[s]);
                let cur = std::mem::replace(&mut m[q][t], Regex::Empty);
                m[q][t] = simplify_alt(cur, lit);
            }
        }
        m[n][self.start] = Regex::Epsilon;
        for (q, &acc) in self.accepting.iter().enumerate() {
            if acc {
                m[q][n + 1] = Regex::Epsilon;
            }
        }
        // Eliminate states 0..n.
        for k in 0..n {
            let loop_k = m[k][k].clone();
            let star = match &loop_k {
                Regex::Empty => Regex::Epsilon,
                r => r.clone().star(),
            };
            let sources: Vec<usize> = (0..n + 2)
                .filter(|&i| i != k && m[i][k] != Regex::Empty)
                .collect();
            let targets: Vec<usize> = (0..n + 2)
                .filter(|&j| j != k && m[k][j] != Regex::Empty)
                .collect();
            for &i in &sources {
                for &j in &targets {
                    let through = simplify_concat(
                        simplify_concat(m[i][k].clone(), star.clone()),
                        m[k][j].clone(),
                    );
                    let cur = std::mem::replace(&mut m[i][j], Regex::Empty);
                    m[i][j] = simplify_alt(cur, through);
                }
            }
            for i in 0..n + 2 {
                m[i][k] = Regex::Empty;
                m[k][i] = Regex::Empty;
            }
        }
        m[n][n + 1].clone()
    }
}

fn simplify_alt(a: Regex, b: Regex) -> Regex {
    match (a, b) {
        (Regex::Empty, r) | (r, Regex::Empty) => r,
        (a, b) if a == b => a,
        (a, b) => a.alt(b),
    }
}

fn simplify_concat(a: Regex, b: Regex) -> Regex {
    match (a, b) {
        (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
        (Regex::Epsilon, r) | (r, Regex::Epsilon) => r,
        (a, b) => a.concat(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nfa(pattern: &str) -> Nfa {
        let r = Regex::parse(pattern).unwrap();
        let alphabet = r.alphabet();
        Nfa::from_regex(&r, &alphabet)
    }

    #[test]
    fn basic_acceptance() {
        let a = nfa("a(b|c)*d");
        assert!(a.accepts_chars("ad"));
        assert!(a.accepts_chars("abcbd"));
        assert!(!a.accepts_chars("a"));
        assert!(!a.accepts_chars("abca"));
        assert!(!a.accepts_chars("xyz"));
    }

    #[test]
    fn dfa_agrees_with_nfa_on_all_short_words() {
        for pattern in ["a(b|c)*d", "(ab)*", "a+b?", "a|bc", "(a|b)*abb"] {
            let n = nfa(pattern);
            let d = n.determinize();
            let k = n.alphabet.len();
            // All words of length <= 5.
            for len in 0..=5usize {
                let mut word = vec![0usize; len];
                loop {
                    assert_eq!(n.accepts(&word), d.accepts(&word), "{pattern} on {word:?}");
                    let mut i = len;
                    let done = loop {
                        if i == 0 {
                            break true;
                        }
                        i -= 1;
                        word[i] += 1;
                        if word[i] < k {
                            break false;
                        }
                        word[i] = 0;
                    };
                    if done {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn complement_and_emptiness() {
        let d = nfa("a*").determinize();
        assert!(!d.is_empty());
        let c = d.complement();
        // Complement of a* over {a}: empty (every a-word matches a*).
        assert!(c.is_empty());
        let d2 = nfa("ab").determinize();
        assert!(!d2.complement().is_empty());
    }

    #[test]
    fn empty_regex_rejects_everything() {
        let n = Nfa::from_regex(&Regex::Empty, &['a']);
        assert!(!n.accepts(&[]));
        assert!(!n.accepts(&[0]));
        assert!(n.determinize().is_empty());
    }

    #[test]
    fn to_regex_preserves_language() {
        for pattern in ["(ab)*", "a(b|c)d", "a*", "ab|ba"] {
            let n = nfa(pattern);
            let d = n.determinize();
            let back = d.to_regex();
            let n2 = Nfa::from_regex(&back, &n.alphabet);
            let k = n.alphabet.len();
            for len in 0..=4usize {
                let mut word = vec![0usize; len];
                loop {
                    assert_eq!(
                        n.accepts(&word),
                        n2.accepts(&word),
                        "{pattern} -> {back} on {word:?}"
                    );
                    let mut i = len;
                    let done = loop {
                        if i == 0 {
                            break true;
                        }
                        i -= 1;
                        word[i] += 1;
                        if word[i] < k {
                            break false;
                        }
                        word[i] = 0;
                    };
                    if done {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn widened_alphabet() {
        let r = Regex::parse("a").unwrap();
        let n = Nfa::from_regex(&r, &['a', 'b', 'c']);
        assert_eq!(n.alphabet.len(), 3);
        assert!(n.accepts_chars("a"));
        assert!(!n.accepts_chars("b"));
    }
}

#[cfg(test)]
mod eps_free_tests {
    use super::*;
    use crate::regex::Regex;

    #[test]
    fn epsilon_free_preserves_language_and_shrinks() {
        for pattern in ["a(b|c)*d", "(ab)*", "a+b?", "ab|ba", "a*"] {
            let r = Regex::parse(pattern).unwrap();
            let alphabet = r.alphabet();
            let nfa = Nfa::from_regex(&r, &alphabet);
            let ef = nfa.epsilon_free_trimmed();
            assert!(ef.num_states <= nfa.num_states());
            let k = alphabet.len();
            for len in 0..=4usize {
                let mut word = vec![0usize; len];
                loop {
                    assert_eq!(
                        nfa.accepts(&word),
                        ef.accepts(&word),
                        "{pattern} on {word:?}"
                    );
                    let mut i = len;
                    let done = loop {
                        if i == 0 {
                            break true;
                        }
                        i -= 1;
                        word[i] += 1;
                        if word[i] < k {
                            break false;
                        }
                        word[i] = 0;
                    };
                    if done {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn empty_language_trims_to_nothing() {
        let nfa = Nfa::from_regex(&Regex::Empty, &['a']);
        let ef = nfa.epsilon_free_trimmed();
        assert_eq!(ef.num_states, 0);
        assert!(!ef.accepts(&[]));
    }
}

#[cfg(test)]
mod reduce_tests {
    use super::*;
    use crate::regex::Regex;

    #[test]
    fn reduce_preserves_language_and_never_grows() {
        for pattern in ["a(b|c)*d", "(ab)*", "s(aba|bab)t", "a|aa|aaa"] {
            let r = Regex::parse(pattern).unwrap();
            let alphabet = r.alphabet();
            let ef = Nfa::from_regex(&r, &alphabet).epsilon_free_trimmed();
            let red = ef.reduce();
            assert!(red.num_states <= ef.num_states);
            let k = alphabet.len();
            for len in 0..=6usize {
                let mut word = vec![0usize; len];
                loop {
                    assert_eq!(
                        ef.accepts(&word),
                        red.accepts(&word),
                        "{pattern} on {word:?}"
                    );
                    let mut i = len;
                    let done = loop {
                        if i == 0 {
                            break true;
                        }
                        i -= 1;
                        word[i] += 1;
                        if word[i] < k {
                            break false;
                        }
                        word[i] = 0;
                    };
                    if done {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_merges_parallel_branches() {
        // s(0b0|1b1)t-style query: the branch tails are distinct but the
        // shared prefix/suffix states merge.
        let r = Regex::parse("s(aba|bab)t").unwrap();
        let alphabet = r.alphabet();
        let ef = Nfa::from_regex(&r, &alphabet).epsilon_free_trimmed();
        let red = ef.reduce();
        assert!(
            red.num_states < ef.num_states,
            "{} vs {}",
            red.num_states,
            ef.num_states
        );
    }
}
