//! Regular expressions over small alphabets — the query language of
//! Section 7 (regular-path queries are "expressed by means of regular
//! expressions or finite automata").
//!
//! Syntax: lowercase letters are symbols; `|` alternation, juxtaposition
//! concatenation, postfix `*`, `+`, `?`; parentheses group; `()` denotes
//! ε. Example: `a(b|c)*d`.

use std::fmt;

/// A regular expression AST over `char` symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty language.
    Empty,
    /// The empty word.
    Epsilon,
    /// A single symbol.
    Literal(char),
    /// Concatenation.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
}

impl Regex {
    /// Parses a regular expression.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax error.
    pub fn parse(src: &str) -> Result<Regex, String> {
        let chars: Vec<char> = src.chars().filter(|c| !c.is_whitespace()).collect();
        let mut pos = 0usize;
        let r = parse_alt(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(format!("unexpected `{}` at position {pos}", chars[pos]));
        }
        Ok(r)
    }

    /// Concatenation helper.
    pub fn concat(self, other: Regex) -> Regex {
        Regex::Concat(Box::new(self), Box::new(other))
    }

    /// Alternation helper.
    pub fn alt(self, other: Regex) -> Regex {
        Regex::Alt(Box::new(self), Box::new(other))
    }

    /// Kleene star helper.
    pub fn star(self) -> Regex {
        Regex::Star(Box::new(self))
    }

    /// Alternation of many expressions ([`Regex::Empty`] if none).
    pub fn any_of(mut rs: Vec<Regex>) -> Regex {
        match rs.len() {
            0 => Regex::Empty,
            1 => rs.pop().expect("len 1"),
            _ => {
                let first = rs.remove(0);
                rs.into_iter().fold(first, Regex::alt)
            }
        }
    }

    /// Concatenation of many expressions ([`Regex::Epsilon`] if none).
    pub fn sequence(mut rs: Vec<Regex>) -> Regex {
        match rs.len() {
            0 => Regex::Epsilon,
            1 => rs.pop().expect("len 1"),
            _ => {
                let first = rs.remove(0);
                rs.into_iter().fold(first, Regex::concat)
            }
        }
    }

    /// The set of symbols mentioned.
    pub fn alphabet(&self) -> Vec<char> {
        let mut set = std::collections::BTreeSet::new();
        self.collect_alphabet(&mut set);
        set.into_iter().collect()
    }

    fn collect_alphabet(&self, set: &mut std::collections::BTreeSet<char>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Literal(c) => {
                set.insert(*c);
            }
            Regex::Concat(a, b) | Regex::Alt(a, b) => {
                a.collect_alphabet(set);
                b.collect_alphabet(set);
            }
            Regex::Star(a) => a.collect_alphabet(set),
        }
    }
}

fn parse_alt(chars: &[char], pos: &mut usize) -> Result<Regex, String> {
    let mut r = parse_concat(chars, pos)?;
    while *pos < chars.len() && chars[*pos] == '|' {
        *pos += 1;
        let rhs = parse_concat(chars, pos)?;
        r = r.alt(rhs);
    }
    Ok(r)
}

fn parse_concat(chars: &[char], pos: &mut usize) -> Result<Regex, String> {
    let mut parts: Vec<Regex> = Vec::new();
    while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
        parts.push(parse_postfix(chars, pos)?);
    }
    Ok(Regex::sequence(parts))
}

fn parse_postfix(chars: &[char], pos: &mut usize) -> Result<Regex, String> {
    let mut r = parse_atom(chars, pos)?;
    while *pos < chars.len() {
        match chars[*pos] {
            '*' => {
                r = r.star();
                *pos += 1;
            }
            '+' => {
                r = r.clone().concat(r.star());
                *pos += 1;
            }
            '?' => {
                r = r.alt(Regex::Epsilon);
                *pos += 1;
            }
            _ => break,
        }
    }
    Ok(r)
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Regex, String> {
    if *pos >= chars.len() {
        return Err("unexpected end of pattern".into());
    }
    match chars[*pos] {
        '(' => {
            *pos += 1;
            if *pos < chars.len() && chars[*pos] == ')' {
                *pos += 1;
                return Ok(Regex::Epsilon);
            }
            let r = parse_alt(chars, pos)?;
            if *pos >= chars.len() || chars[*pos] != ')' {
                return Err("missing `)`".into());
            }
            *pos += 1;
            Ok(r)
        }
        c if c.is_alphanumeric() => {
            *pos += 1;
            Ok(Regex::Literal(c))
        }
        c => Err(format!("unexpected `{c}`")),
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Empty => write!(f, "∅"),
            Regex::Epsilon => write!(f, "()"),
            Regex::Literal(c) => write!(f, "{c}"),
            Regex::Concat(a, b) => {
                maybe_paren(f, a, matches!(**a, Regex::Alt(..)))?;
                maybe_paren(f, b, matches!(**b, Regex::Alt(..)))
            }
            Regex::Alt(a, b) => write!(f, "{a}|{b}"),
            Regex::Star(a) => {
                maybe_paren(
                    f,
                    a,
                    !matches!(**a, Regex::Literal(_) | Regex::Epsilon | Regex::Empty),
                )?;
                write!(f, "*")
            }
        }
    }
}

fn maybe_paren(f: &mut fmt::Formatter<'_>, r: &Regex, paren: bool) -> fmt::Result {
    if paren {
        write!(f, "({r})")
    } else {
        write!(f, "{r}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_standard_patterns() {
        let r = Regex::parse("a(b|c)*d").unwrap();
        assert_eq!(r.alphabet(), vec!['a', 'b', 'c', 'd']);
        assert!(Regex::parse("a+").is_ok());
        assert!(Regex::parse("ab?").is_ok());
        assert!(Regex::parse("()").unwrap() == Regex::Epsilon);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Regex::parse("(a").is_err());
        assert!(Regex::parse("a)").is_err());
        assert!(Regex::parse("*").is_err());
        assert!(Regex::parse("a|*").is_err());
    }

    #[test]
    fn display_roundtrips() {
        for src in ["a(b|c)*d", "ab|cd", "a*b*", "(ab)*"] {
            let r = Regex::parse(src).unwrap();
            let r2 = Regex::parse(&r.to_string()).unwrap();
            assert_eq!(r.alphabet(), r2.alphabet());
        }
    }

    #[test]
    fn combinators() {
        let r = Regex::any_of(vec![
            Regex::Literal('a'),
            Regex::Literal('b'),
            Regex::Literal('c'),
        ]);
        assert_eq!(r.alphabet(), vec!['a', 'b', 'c']);
        assert_eq!(Regex::any_of(vec![]), Regex::Empty);
        assert_eq!(Regex::sequence(vec![]), Regex::Epsilon);
    }
}
