//! Maximal RPQ rewritings of queries using views — the algorithm of [8]
//! (Calvanese–De Giacomo–Lenzerini–Vardi, PODS'99) discussed in
//! Section 7 of the paper.
//!
//! A word `V_{i1} ··· V_{ik}` over the *view alphabet* belongs to the
//! maximal RPQ rewriting of `Q` iff **every** choice of witness words
//! `w_j ∈ L(def(V_{ij}))` concatenates into `L(Q)`:
//! `L(def(V_{i1})) ··· L(def(V_{ik})) ⊆ L(Q)`. The complement — "some
//! choice escapes `L(Q)`" — is recognized by an NFA over the view
//! alphabet whose states are the states of a DFA for `Q`: a `V`-labeled
//! transition `q → q'` exists iff some `w ∈ L(def(V))` drives the DFA
//! from `q` to `q'`; accepting = non-accepting states of the DFA.
//! Determinize and complement to get the rewriting.
//!
//! Evaluating the rewriting over view extensions is sound: its answers
//! are contained in the certain answers (`ans(Q', ext(V)) ⊆ cert(Q, V)`);
//! it is the *maximal* rewriting among RPQs but not perfect in general —
//! Theorem 7.2's co-NP bound says a perfect PTIME rewriting cannot
//! always exist.

use crate::automata::{Dfa, Nfa};
use crate::graphdb::GraphDb;
use crate::regex::Regex;
use crate::views::{Extensions, View};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// The maximal RPQ rewriting of a query w.r.t. views, as a DFA over the
/// view alphabet (one symbol per view, in view order).
#[derive(Debug, Clone)]
pub struct Rewriting {
    /// DFA over view symbols; symbol `i` = view `i`.
    pub dfa: Dfa,
    /// Display characters chosen for the views.
    pub view_symbols: Vec<char>,
}

/// Computes the maximal RPQ rewriting of `q` w.r.t. `views` over the data
/// alphabet Σ.
pub fn maximal_rewriting(q: &Regex, views: &[View], alphabet: &[char]) -> Rewriting {
    let q_dfa = Nfa::from_regex(q, alphabet).determinize();
    let n = q_dfa.num_states();
    // Per view: relation over DFA states reachable by some word of the
    // view's language.
    let mut relations: Vec<Vec<BTreeSet<usize>>> = Vec::with_capacity(views.len());
    for view in views {
        let vnfa = Nfa::from_regex(&view.definition, alphabet);
        let vdfa = vnfa.determinize();
        let mut rel: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for (q0, rel_row) in rel.iter_mut().enumerate() {
            // BFS over (q-state, view-dfa-state).
            let start = (q0, vdfa.start);
            let mut seen: std::collections::HashSet<(usize, usize)> =
                std::collections::HashSet::new();
            seen.insert(start);
            let mut queue = VecDeque::from([start]);
            while let Some((qq, vq)) = queue.pop_front() {
                if vdfa.accepting[vq] {
                    rel_row.insert(qq);
                }
                for s in 0..alphabet.len() {
                    let next = (q_dfa.transitions[qq][s], vdfa.transitions[vq][s]);
                    if seen.insert(next) {
                        queue.push_back(next);
                    }
                }
            }
        }
        relations.push(rel);
    }
    // A_bad: NFA over view symbols, states = q_dfa states, accepting =
    // non-accepting.
    let view_symbols: Vec<char> = (0..views.len())
        .map(|i| char::from_u32('A' as u32 + i as u32).expect("few views"))
        .collect();
    let mut bad = Nfa {
        alphabet: view_symbols.clone(),
        transitions: vec![Vec::new(); n],
        start: q_dfa.start,
        accepting: q_dfa.accepting.iter().map(|&a| !a).collect(),
    };
    for (v, rel) in relations.iter().enumerate() {
        for (q0, targets) in rel.iter().enumerate() {
            for &q1 in targets {
                bad.transitions[q0].push((Some(v), q1));
            }
        }
    }
    let rewriting_dfa = bad.determinize().complement();
    Rewriting {
        dfa: rewriting_dfa,
        view_symbols,
    }
}

impl Rewriting {
    /// True if the view word (by view indices) is in the rewriting.
    pub fn contains_view_word(&self, word: &[usize]) -> bool {
        self.dfa.accepts(word)
    }

    /// True if the rewriting's language is empty (the query cannot be
    /// rewritten at all).
    pub fn is_empty(&self) -> bool {
        self.dfa.is_empty()
    }

    /// A regular expression over the display view symbols.
    pub fn to_regex(&self) -> Regex {
        self.dfa.to_regex()
    }

    /// Evaluates the rewriting over view extensions: the pairs connected
    /// by a path of view facts spelling a rewriting word.
    pub fn answer(&self, exts: &Extensions) -> Vec<(u32, u32)> {
        // Graph over objects with one symbol per view.
        let mut db = GraphDb::new(exts.num_objects, &self.view_symbols);
        // view i symbol char: view_symbols sorted? GraphDb sorts its
        // alphabet; map through chars directly.
        for (i, pairs) in exts.pairs.iter().enumerate() {
            for &(x, y) in pairs {
                db.add_edge(x, self.view_symbols[i], y);
            }
        }
        // Evaluate the rewriting DFA as a product — reuse the GraphDb
        // RPQ machinery through the regex extraction would be wasteful;
        // run the DFA directly.
        let mut out = Vec::new();
        // Build adjacency by view index in GraphDb symbol order.
        let symbol_index: HashMap<char, usize> = db
            .alphabet
            .iter()
            .enumerate()
            .map(|(i, &c)| (c, i))
            .collect();
        // dfa alphabet chars are view_symbols sorted ascending — align.
        let dfa_symbol_for_db_symbol: Vec<usize> = db
            .alphabet
            .iter()
            .map(|c| self.dfa.alphabet.binary_search(c).expect("same symbol set"))
            .collect();
        let _ = symbol_index;
        for x in 0..exts.num_objects as u32 {
            let mut seen = vec![false; exts.num_objects * self.dfa.num_states()];
            seen[x as usize * self.dfa.num_states() + self.dfa.start] = true;
            let mut queue = VecDeque::from([(x, self.dfa.start)]);
            while let Some((node, state)) = queue.pop_front() {
                if self.dfa.accepting[state] {
                    out.push((x, node));
                }
                for &(sym, target) in db_adjacency(&db, node) {
                    let next = self.dfa.transitions[state][dfa_symbol_for_db_symbol[sym]];
                    let key = target as usize * self.dfa.num_states() + next;
                    if !seen[key] {
                        seen[key] = true;
                        queue.push_back((target, next));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

fn db_adjacency(db: &GraphDb, node: u32) -> &[(usize, u32)] {
    // GraphDb does not expose adjacency directly; reconstruct via edges
    // would be O(E) per node. Expose through a small accessor instead.
    db.adjacency_of(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::certain_answer;

    fn v(name: &str, def: &str) -> View {
        View {
            name: name.into(),
            definition: Regex::parse(def).unwrap(),
        }
    }

    #[test]
    fn classic_ab_star_rewriting() {
        // Q = (ab)*, V0 = ab: maximal rewriting is V0*.
        let q = Regex::parse("(ab)*").unwrap();
        let views = vec![v("V", "ab")];
        let rw = maximal_rewriting(&q, &views, &['a', 'b']);
        for len in 0..5usize {
            let word = vec![0usize; len];
            assert!(rw.contains_view_word(&word), "V^{len} should rewrite");
        }
        assert!(!rw.is_empty());
    }

    #[test]
    fn rewriting_rejects_unsound_view_words() {
        // Q = ab; V0 = a|b. A single V0 could be an `a` or a `b`, so no
        // view word is guaranteed to produce ab... V0 V0 could be aa:
        // not contained. Rewriting must be empty.
        let q = Regex::parse("ab").unwrap();
        let views = vec![v("V", "a|b")];
        let rw = maximal_rewriting(&q, &views, &['a', 'b']);
        assert!(rw.is_empty());
    }

    #[test]
    fn mixed_views() {
        // Q = a(bb)*; V0 = a, V1 = bb: rewriting = V0 V1*.
        let q = Regex::parse("a(bb)*").unwrap();
        let views = vec![v("Va", "a"), v("Vbb", "bb")];
        let rw = maximal_rewriting(&q, &views, &['a', 'b']);
        assert!(rw.contains_view_word(&[0]));
        assert!(rw.contains_view_word(&[0, 1]));
        assert!(rw.contains_view_word(&[0, 1, 1]));
        assert!(!rw.contains_view_word(&[1]));
        assert!(!rw.contains_view_word(&[0, 0]));
        assert!(!rw.contains_view_word(&[]));
    }

    #[test]
    fn rewriting_answers_are_contained_in_certain_answers() {
        // Soundness on a concrete instance.
        let q = Regex::parse("a(bb)*").unwrap();
        let views = vec![v("Va", "a"), v("Vbb", "bb")];
        let alphabet = ['a', 'b'];
        let rw = maximal_rewriting(&q, &views, &alphabet);
        let exts = Extensions {
            num_objects: 4,
            pairs: vec![vec![(0, 1)], vec![(1, 2), (2, 3)]],
        };
        let answers = rw.answer(&exts);
        assert!(answers.contains(&(0, 1)));
        assert!(answers.contains(&(0, 2)));
        assert!(answers.contains(&(0, 3)));
        for &(x, y) in &answers {
            assert!(
                certain_answer(&q, &views, &alphabet, &exts, x, y),
                "rewriting produced non-certain pair ({x},{y})"
            );
        }
    }

    #[test]
    fn rewriting_may_be_strictly_weaker_than_certain_answers() {
        // Views whose union covers Q but no single composition is safe:
        // Q = a, views Va' = a|b and Vb' = a|c. Certain answers can
        // know more than any RPQ rewriting (here both are empty-ish,
        // but the shape demonstrates the API; the known separation
        // examples need larger alphabets).
        let q = Regex::parse("a").unwrap();
        let views = vec![v("V1", "a|b"), v("V2", "a|c")];
        let rw = maximal_rewriting(&q, &views, &['a', 'b', 'c']);
        assert!(rw.is_empty());
    }

    #[test]
    fn display_regex_of_rewriting() {
        let q = Regex::parse("(ab)*").unwrap();
        let views = vec![v("V", "ab")];
        let rw = maximal_rewriting(&q, &views, &['a', 'b']);
        let r = rw.to_regex();
        // Language check: matches A^n for all small n.
        let nfa = Nfa::from_regex(&r, &rw.view_symbols);
        for len in 0..5usize {
            assert!(nfa.accepts(&vec![0usize; len]));
        }
    }
}
