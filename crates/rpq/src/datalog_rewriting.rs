//! Non-perfect Datalog-style rewritings of view-based query answering —
//! the closing remark of Section 7: "it is shown in [10] how the
//! connection between CSP and Datalog described in Section 4 can be used
//! to derive (non-perfect) Datalog rewritings for RPQs with respect to
//! RPQ views."
//!
//! The connection: `(c,d) ∈ cert(Q,V)` iff `CSP(A_ext, B)` is
//! unsolvable, where **B** is the constraint template (Theorem 7.5).
//! Whenever `¬CSP(B)` is expressible in k-Datalog, the Datalog program
//! evaluated over the view extensions is a *perfect* PTIME rewriting;
//! in general it is a sound under-approximation (Theorem 4.6 / 5.7).
//!
//! We realize the k = 2 instance of this scheme — arc consistency, i.e.
//! the canonical 2-pebble Datalog program — by evaluating its fixpoint
//! semantics directly: [`ArcConsistencyRewriting::certainly`] returns
//! `true` only if AC wipes out `CSP(A_ext, B)`, which soundly implies
//! certainty. Materializing the program text itself would require one
//! IDB per subset of the template domain (see DESIGN.md §6); evaluating
//! the fixpoint is the same algorithm without the exponential syntax.

use crate::regex::Regex;
use crate::views::{extension_structure, CertainAnswering, Extensions, View};

/// The arc-consistency (2-pebble Datalog) rewriting of a view-based
/// query: a sound, polynomial-time under-approximation of the certain
/// answers.
#[derive(Debug, Clone)]
pub struct ArcConsistencyRewriting {
    oracle: CertainAnswering,
}

impl ArcConsistencyRewriting {
    /// Builds the rewriting for `Q` w.r.t. the views over Σ.
    pub fn new(q: &Regex, views: &[View], alphabet: &[char]) -> Self {
        ArcConsistencyRewriting {
            oracle: CertainAnswering::new(q, views, alphabet),
        }
    }

    /// Sound certainty test: `true` means `(c, d) ∈ cert(Q, V)` for
    /// sure; `false` means "not derivable by arc consistency" (the pair
    /// may still be certain — this rewriting is not perfect, cf.
    /// Theorem 7.2).
    pub fn certainly(&self, exts: &Extensions, c: u32, d: u32) -> bool {
        let a = extension_structure(self.oracle.template(), exts, c, d);
        let problem = cspdb_solver::Problem::from_structures(&a, &self.oracle.template().template);
        cspdb_solver::gac_fixpoint(&problem).is_none()
    }

    /// All pairs the rewriting derives (quadratic sweep over objects).
    pub fn answer(&self, exts: &Extensions) -> Vec<(u32, u32)> {
        let n = exts.num_objects as u32;
        let mut out = Vec::new();
        for c in 0..n {
            for d in 0..n {
                if self.certainly(exts, c, d) {
                    out.push((c, d));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::{csp_to_views, extensions_for_digraph};
    use cspdb_core::graphs::{cycle, digraph};

    fn chain_setup() -> (Regex, Vec<View>, Vec<char>) {
        let q = Regex::parse("ab").unwrap();
        let views = vec![
            View {
                name: "Va".into(),
                definition: Regex::parse("a").unwrap(),
            },
            View {
                name: "Vb".into(),
                definition: Regex::parse("b").unwrap(),
            },
        ];
        (q, views, vec!['a', 'b'])
    }

    #[test]
    fn sound_on_forced_chains() {
        let (q, views, alphabet) = chain_setup();
        let rw = ArcConsistencyRewriting::new(&q, &views, &alphabet);
        let oracle = CertainAnswering::new(&q, &views, &alphabet);
        let exts = Extensions {
            num_objects: 3,
            pairs: vec![vec![(0, 1)], vec![(1, 2)]],
        };
        // Every AC-derived pair is certain (soundness).
        for (c, d) in rw.answer(&exts) {
            assert!(oracle.is_certain(&exts, c, d));
        }
        // And on this easy instance AC is also complete.
        assert!(rw.certainly(&exts, 0, 2));
        assert!(!rw.certainly(&exts, 0, 1));
    }

    #[test]
    fn soundness_on_random_extensions() {
        let (q, views, alphabet) = chain_setup();
        let rw = ArcConsistencyRewriting::new(&q, &views, &alphabet);
        let oracle = CertainAnswering::new(&q, &views, &alphabet);
        let mut state = 0x7777AAAA5555CCCCu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..6 {
            let n = 4usize;
            let mut pa = Vec::new();
            let mut pb = Vec::new();
            for x in 0..n as u32 {
                for y in 0..n as u32 {
                    match next() % 5 {
                        0 => pa.push((x, y)),
                        1 => pb.push((x, y)),
                        _ => {}
                    }
                }
            }
            let exts = Extensions {
                num_objects: n,
                pairs: vec![pa, pb],
            };
            for (c, d) in rw.answer(&exts) {
                assert!(oracle.is_certain(&exts, c, d), "unsound at ({c},{d})");
            }
        }
    }

    #[test]
    fn incomplete_where_certainty_needs_more_than_ac() {
        // Theorem 7.3 setup with an odd cycle: (c,d) IS certain (C5 is
        // not 2-colorable), but refuting CSP(C5-ext, B) needs more than
        // arc consistency — the same parity argument as 3 pebbles vs 2
        // for odd cycles. The AC rewriting must stay silent; the exact
        // oracle must answer.
        let k2 = digraph(2, &[(0, 1), (1, 0)]);
        let reduction = csp_to_views(&k2);
        let (exts, c, d) = extensions_for_digraph(&cycle(5));
        let rw =
            ArcConsistencyRewriting::new(&reduction.query, &reduction.views, &reduction.alphabet);
        let oracle = CertainAnswering::new(&reduction.query, &reduction.views, &reduction.alphabet);
        assert!(oracle.is_certain(&exts, c, d), "C5 is not 2-colorable");
        assert!(
            !rw.certainly(&exts, c, d),
            "arc consistency alone should not refute the odd cycle"
        );
        // On an even cycle neither fires — and indeed nothing is certain.
        let (exts, c, d) = extensions_for_digraph(&cycle(4));
        assert!(!oracle.is_certain(&exts, c, d));
        assert!(!rw.certainly(&exts, c, d));
    }
}
