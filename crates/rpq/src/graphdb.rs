//! Edge-labeled graph databases and RPQ evaluation (Section 7).
//!
//! "We consider a database as an edge-labeled graph `DB = (D, E)`": nodes
//! are objects, binary relations `r_e` are the labeled edges. An RPQ `Q`
//! returns all pairs `(x, y)` connected by a path whose label word lies
//! in `L(Q)`; evaluation is reachability in the product of the database
//! with an automaton for `Q`.

use crate::automata::Nfa;
use crate::regex::Regex;
use std::collections::VecDeque;

/// An edge-labeled graph database over a `char` alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDb {
    /// Number of nodes (objects are `0..num_nodes`).
    pub num_nodes: usize,
    /// The alphabet, sorted.
    pub alphabet: Vec<char>,
    /// Edges `(source, symbol index, target)`.
    edges: Vec<(u32, usize, u32)>,
    /// Adjacency: per node, outgoing `(symbol, target)`.
    adjacency: Vec<Vec<(usize, u32)>>,
}

impl GraphDb {
    /// Creates an empty database.
    pub fn new(num_nodes: usize, alphabet: &[char]) -> Self {
        let mut alphabet = alphabet.to_vec();
        alphabet.sort_unstable();
        alphabet.dedup();
        GraphDb {
            num_nodes,
            alphabet,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); num_nodes],
        }
    }

    /// Adds a labeled edge `x --c--> y`.
    ///
    /// # Panics
    ///
    /// Panics on unknown symbols or out-of-range nodes.
    pub fn add_edge(&mut self, x: u32, symbol: char, y: u32) {
        assert!((x as usize) < self.num_nodes && (y as usize) < self.num_nodes);
        let s = self
            .alphabet
            .binary_search(&symbol)
            .expect("symbol in alphabet");
        self.edges.push((x, s, y));
        self.adjacency[x as usize].push((s, y));
    }

    /// All edges.
    pub fn edges(&self) -> &[(u32, usize, u32)] {
        &self.edges
    }

    /// Outgoing `(symbol, target)` pairs of a node.
    pub fn adjacency_of(&self, node: u32) -> &[(usize, u32)] {
        &self.adjacency[node as usize]
    }

    /// The symbol character for a symbol index.
    pub fn symbol(&self, index: usize) -> char {
        self.alphabet[index]
    }

    /// Evaluates an RPQ: all pairs `(x, y)` connected by a path spelling
    /// a word of `L(q)`, via product-automaton BFS from each source.
    pub fn answer(&self, q: &Regex) -> Vec<(u32, u32)> {
        let nfa = Nfa::from_regex(q, &self.alphabet);
        let dfa = nfa.determinize();
        let mut out = Vec::new();
        for x in 0..self.num_nodes as u32 {
            // BFS over (node, dfa state).
            let mut seen = vec![false; self.num_nodes * dfa.num_states()];
            let start = (x, dfa.start);
            seen[x as usize * dfa.num_states() + dfa.start] = true;
            let mut queue = VecDeque::from([start]);
            while let Some((node, state)) = queue.pop_front() {
                if dfa.accepting[state] {
                    out.push((x, node));
                }
                for &(sym, target) in &self.adjacency[node as usize] {
                    let next_state = dfa.transitions[state][sym];
                    let key = target as usize * dfa.num_states() + next_state;
                    if !seen[key] {
                        seen[key] = true;
                        queue.push_back((target, next_state));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// True if `(x, y)` is in the answer set of the RPQ.
    pub fn answers_pair(&self, q: &Regex, x: u32, y: u32) -> bool {
        // Targeted BFS from x only.
        let nfa = Nfa::from_regex(q, &self.alphabet);
        let dfa = nfa.determinize();
        let mut seen = vec![false; self.num_nodes * dfa.num_states()];
        seen[x as usize * dfa.num_states() + dfa.start] = true;
        let mut queue = VecDeque::from([(x, dfa.start)]);
        while let Some((node, state)) = queue.pop_front() {
            if node == y && dfa.accepting[state] {
                return true;
            }
            for &(sym, target) in &self.adjacency[node as usize] {
                let next_state = dfa.transitions[state][sym];
                let key = target as usize * dfa.num_states() + next_state;
                if !seen[key] {
                    seen[key] = true;
                    queue.push_back((target, next_state));
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(word: &str) -> GraphDb {
        let alphabet: Vec<char> = {
            let mut a: Vec<char> = word.chars().collect();
            a.sort_unstable();
            a.dedup();
            a
        };
        let mut db = GraphDb::new(word.len() + 1, &alphabet);
        for (i, c) in word.chars().enumerate() {
            db.add_edge(i as u32, c, i as u32 + 1);
        }
        db
    }

    #[test]
    fn path_queries_on_a_chain() {
        let db = chain("abab");
        let q = Regex::parse("(ab)*").unwrap();
        let ans = db.answer(&q);
        // ε matches every (x,x); ab matches (0,2),(2,4); abab (0,4).
        assert!(ans.contains(&(0, 0)));
        assert!(ans.contains(&(0, 2)));
        assert!(ans.contains(&(2, 4)));
        assert!(ans.contains(&(0, 4)));
        assert!(!ans.contains(&(0, 1)));
        assert!(!ans.contains(&(1, 2)));
    }

    #[test]
    fn answers_pair_matches_answer() {
        let db = chain("abcab");
        for q in ["a(b|c)*", "ab", "(ab|c)*", "a*"] {
            let q = Regex::parse(q).unwrap();
            let ans = db.answer(&q);
            for x in 0..db.num_nodes as u32 {
                for y in 0..db.num_nodes as u32 {
                    assert_eq!(ans.contains(&(x, y)), db.answers_pair(&q, x, y));
                }
            }
        }
    }

    #[test]
    fn cyclic_database() {
        let mut db = GraphDb::new(2, &['a']);
        db.add_edge(0, 'a', 1);
        db.add_edge(1, 'a', 0);
        let q = Regex::parse("aa").unwrap();
        let ans = db.answer(&q);
        assert!(ans.contains(&(0, 0)));
        assert!(ans.contains(&(1, 1)));
        let q = Regex::parse("a(aa)*").unwrap();
        assert!(db.answer(&q).contains(&(0, 1)));
        assert!(!db.answer(&q).contains(&(0, 0)));
    }

    #[test]
    fn empty_query_and_epsilon() {
        let db = chain("ab");
        assert!(db.answer(&Regex::Empty).is_empty());
        let eps = db.answer(&Regex::Epsilon);
        assert_eq!(eps, vec![(0, 0), (1, 1), (2, 2)]);
    }
}
