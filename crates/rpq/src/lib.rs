//! # cspdb-rpq
//!
//! Regular path queries over semistructured data and view-based query
//! processing — Section 7 of the paper, where the tutorial's direction
//! reverses: constraint satisfaction is applied *to* database theory.
//!
//! * [`Regex`] / [`Nfa`] / [`Dfa`] / [`EpsilonFreeNfa`] — regular
//!   expressions and automata (Thompson construction, subset
//!   construction, state-elimination back to regexes);
//! * [`GraphDb`] — edge-labeled graph databases with product-automaton
//!   RPQ evaluation ([`GraphDb::answer`]);
//! * [`certain_answer`] — view-based query answering via the
//!   **constraint template** of Theorem 7.5 (domain `2^S`), validated
//!   against the canonical-database ground truth
//!   [`certain_answer_bruteforce`];
//! * [`csp_to_views`] / [`extensions_for_digraph`] /
//!   [`csp_via_view_answering`] — Theorem 7.3's converse reduction:
//!   certain answering is as hard as `CSP(B)` for digraph templates;
//! * [`maximal_rewriting`] — the maximal RPQ rewriting of a query using
//!   views ([8]), whose evaluation is sound for (but in general weaker
//!   than) the perfect rewriting, matching Theorem 7.2's message that
//!   perfect rewritings are co-NP functions;
//! * [`ArcConsistencyRewriting`] — the paper's closing remark made
//!   executable: a sound, PTIME, Datalog-style (2-pebble / arc
//!   consistency) under-approximation of certain answers via the
//!   Section 4 connection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automata;
mod datalog_rewriting;
mod graphdb;
mod regex;
mod rewriting;
mod views;

pub use automata::{Dfa, EpsilonFreeNfa, Nfa};
pub use datalog_rewriting::ArcConsistencyRewriting;
pub use graphdb::GraphDb;
pub use regex::Regex;
pub use rewriting::{maximal_rewriting, Rewriting};
pub use views::{
    certain_answer, certain_answer_bruteforce, constraint_template, csp_to_views,
    csp_via_view_answering, extension_size, extension_structure, extensions_for_digraph,
    CertainAnswering, ConstraintTemplate, CspAsViews, Extensions, View,
};
