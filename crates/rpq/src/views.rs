//! View-based query answering and the two reductions tying it to
//! constraint satisfaction (Theorems 7.3 and 7.5 of the paper).
//!
//! * [`certain_answer`] decides `(c, d) ∈ cert(Q, V)` through the
//!   **constraint template** of Theorem 7.5: a structure **B** with
//!   domain `2^S` (subsets of the query automaton's states), binary
//!   relations per view, and unary markers `U_c`, `U_d`; the pair is NOT
//!   certain iff `CSP(A, B)` is solvable, where **A** encodes the view
//!   extensions.
//! * [`certain_answer_bruteforce`] is the independent ground truth: a
//!   counterexample database, if one exists, can be taken *canonical* —
//!   disjoint witness paths, one per view fact — so enumerating word
//!   choices up to a length bound and model-checking `Q` is sound (and
//!   complete for witnesses within the bound).
//! * [`csp_to_views`] / [`extensions_for_digraph`] implement the converse
//!   reduction of Theorem 7.3: for every template digraph **B** there are
//!   `Q` and view definitions, *independent of the input*, such that
//!   certain answering decides `CSP(·, B)`.

use crate::automata::Nfa;
use crate::graphdb::GraphDb;
use crate::regex::Regex;
use cspdb_core::budget::{Answer, Budget, ExhaustionReason};
use cspdb_core::trace::TraceEvent;
use cspdb_core::{Structure, Vocabulary};
use std::collections::VecDeque;
use std::sync::Arc;

/// A named view with an RPQ definition.
#[derive(Debug, Clone)]
pub struct View {
    /// View name (used for display only).
    pub name: String,
    /// The RPQ `def(V_i)`.
    pub definition: Regex,
}

/// Extensions `ext(V)`: per-view sets of object pairs, over objects
/// `0..num_objects`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extensions {
    /// Number of objects in `D_V`.
    pub num_objects: usize,
    /// `pairs[i]` = `ext(V_i)`.
    pub pairs: Vec<Vec<(u32, u32)>>,
}

/// The constraint template **B** of `Q` w.r.t. `V` (Theorem 7.5),
/// together with the vocabulary shared with extension encodings.
#[derive(Debug, Clone)]
pub struct ConstraintTemplate {
    /// The template structure **B** (domain `2^S` as bitmask-indexed
    /// elements).
    pub template: Structure,
    /// The shared vocabulary: `V_i/2` then `Uc/1`, `Ud/1`.
    pub vocabulary: Arc<Vocabulary>,
    /// Number of query-automaton states `|S|`.
    pub num_states: usize,
}

/// Builds the constraint template of `Q` w.r.t. the views over the given
/// data alphabet Σ (Theorem 7.5):
///
/// * domain `B = 2^S`;
/// * `(σ1, σ2) ∈ V_i^B` iff some `w ∈ L(def(V_i))` has `ρ(σ1,w) ⊆ σ2`;
/// * `σ ∈ U_c^B` iff `S0 ⊆ σ`; `σ ∈ U_d^B` iff `σ ∩ F = ∅`.
///
/// # Panics
///
/// Panics if the (trimmed) query automaton has more than 12 states — the
/// template has domain `2^S`, so larger queries are not laptop-sized.
pub fn constraint_template(q: &Regex, views: &[View], alphabet: &[char]) -> ConstraintTemplate {
    let aq = Nfa::from_regex(q, alphabet).epsilon_free_trimmed().reduce();
    let s = aq.num_states;
    assert!(
        s <= 12,
        "query automaton too large for the 2^S template ({s} states)"
    );
    let domain = 1usize << s;
    let mut builder = cspdb_core::VocabularyBuilder::new();
    for (i, _) in views.iter().enumerate() {
        builder.add(format!("V{i}"), 2).expect("fresh names");
    }
    builder.add("Uc", 1).expect("fresh");
    builder.add("Ud", 1).expect("fresh");
    let voc = builder.finish();
    let mut b = Structure::new(voc.clone(), domain);

    // Precompute per-state, per-symbol successor masks so subset images
    // are a fold of ORs.
    let num_symbols = aq.alphabet.len();
    let mut step_mask: Vec<Vec<usize>> = vec![vec![0usize; num_symbols]; s];
    for (q, row) in aq.step.iter().enumerate() {
        for (sym, targets) in row.iter().enumerate() {
            step_mask[q][sym] = targets.iter().fold(0usize, |m, &t| m | (1 << t));
        }
    }
    let image_mask = |mask: usize, sym: usize| -> usize {
        let mut out = 0usize;
        let mut rest = mask;
        while rest != 0 {
            let q = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            out |= step_mask[q][sym];
        }
        out
    };

    // Per view: for each σ1, collect the images T reachable at
    // view-accepting moments; then (σ1, σ2) ∈ V^B iff some T ⊆ σ2.
    for (i, view) in views.iter().enumerate() {
        let vid = voc.id(&format!("V{i}")).expect("declared");
        let vnfa = Nfa::from_regex(&view.definition, alphabet);
        let vdfa = vnfa.determinize();
        let vn = vdfa.num_states();
        for sigma1 in 0..domain {
            // BFS over (image mask, view-DFA state), dense visited array.
            let mut seen = vec![false; domain * vn];
            seen[sigma1 * vn + vdfa.start] = true;
            let mut queue = VecDeque::from([(sigma1, vdfa.start)]);
            let mut witnesses: Vec<usize> = Vec::new();
            while let Some((mask, vstate)) = queue.pop_front() {
                if vdfa.accepting[vstate] {
                    witnesses.push(mask);
                }
                for sym in 0..num_symbols {
                    let next = (image_mask(mask, sym), vdfa.transitions[vstate][sym]);
                    let key = next.0 * vn + next.1;
                    if !seen[key] {
                        seen[key] = true;
                        queue.push_back(next);
                    }
                }
            }
            witnesses.sort_unstable();
            witnesses.dedup();
            // Keep inclusion-minimal witnesses only.
            let minimal: Vec<usize> = witnesses
                .iter()
                .copied()
                .filter(|&t| !witnesses.iter().any(|&u| u != t && u & !t == 0))
                .collect();
            for sigma2 in 0..domain {
                if minimal.iter().any(|&t| t & !sigma2 == 0) {
                    b.insert(vid, &[sigma1 as u32, sigma2 as u32])
                        .expect("in range");
                }
            }
        }
    }
    let s0_mask: usize = aq.start.iter().fold(0, |m, &q| m | (1 << q));
    let f_mask: usize = (0..s)
        .filter(|&q| aq.accepting[q])
        .fold(0, |m, q| m | (1 << q));
    let uc = voc.id("Uc").expect("declared");
    let ud = voc.id("Ud").expect("declared");
    for sigma in 0..domain {
        if s0_mask & !sigma == 0 {
            b.insert(uc, &[sigma as u32]).expect("in range");
        }
        if sigma & f_mask == 0 {
            b.insert(ud, &[sigma as u32]).expect("in range");
        }
    }
    ConstraintTemplate {
        template: b,
        vocabulary: voc,
        num_states: s,
    }
}

/// Encodes view extensions plus the distinguished pair as the structure
/// **A** over the template's vocabulary.
///
/// # Panics
///
/// Panics if object ids are out of range or view counts differ.
pub fn extension_structure(
    template: &ConstraintTemplate,
    exts: &Extensions,
    c: u32,
    d: u32,
) -> Structure {
    let voc = &template.vocabulary;
    let mut a = Structure::new(voc.clone(), exts.num_objects);
    for (i, pairs) in exts.pairs.iter().enumerate() {
        let vid = voc.id(&format!("V{i}")).expect("template vocabulary");
        for &(x, y) in pairs {
            a.insert(vid, &[x, y]).expect("in range");
        }
    }
    a.insert(voc.id("Uc").expect("declared"), &[c])
        .expect("in range");
    a.insert(voc.id("Ud").expect("declared"), &[d])
        .expect("in range");
    a
}

/// A reusable certain-answer oracle: the constraint template depends
/// only on `Q` and `def(V)` (not on the extensions), so build it once
/// and answer many `(ext, c, d)` questions against it.
#[derive(Debug, Clone)]
pub struct CertainAnswering {
    template: ConstraintTemplate,
}

impl CertainAnswering {
    /// Builds the oracle (constructs the Theorem 7.5 template).
    pub fn new(q: &Regex, views: &[View], alphabet: &[char]) -> Self {
        CertainAnswering {
            template: constraint_template(q, views, alphabet),
        }
    }

    /// The underlying template.
    pub fn template(&self) -> &ConstraintTemplate {
        &self.template
    }

    /// Decides `(c, d) ∈ cert(Q, V)`: certain iff `CSP(A, B)` has no
    /// solution.
    pub fn is_certain(&self, exts: &Extensions, c: u32, d: u32) -> bool {
        let a = extension_structure(&self.template, exts, c, d);
        cspdb_solver::find_homomorphism(&a, &self.template.template).is_none()
    }

    /// [`Self::is_certain`] under a [`Budget`] on the underlying CSP
    /// solve. The polarity flips through the reduction: the CSP is
    /// satisfiable iff the pair is **not** certain, so `Sat` maps to
    /// `Ok(false)`, `Unsat` to `Ok(true)`, and exhaustion stays
    /// inconclusive (`Err`).
    pub fn is_certain_budgeted(
        &self,
        exts: &Extensions,
        c: u32,
        d: u32,
        budget: &Budget,
    ) -> Result<bool, ExhaustionReason> {
        let a = extension_structure(&self.template, exts, c, d);
        let run = cspdb_solver::find_homomorphism_budgeted(&a, &self.template.template, budget);
        match run.answer {
            Answer::Sat(_) => Ok(false),
            Answer::Unsat => Ok(true),
            Answer::Unknown(reason) => Err(reason),
        }
    }

    /// The full certain-answer set `cert(Q, V) ⊆ D_V × D_V`.
    pub fn certain_answers(&self, exts: &Extensions) -> Vec<(u32, u32)> {
        let n = exts.num_objects as u32;
        let mut out = Vec::new();
        for c in 0..n {
            for d in 0..n {
                if self.is_certain(exts, c, d) {
                    out.push((c, d));
                }
            }
        }
        out
    }

    /// [`Self::certain_answers`] under a [`Budget`]: the budget is
    /// sliced evenly across the `n²` candidate pairs, so one adversarial
    /// pair cannot starve the rest. The first slice that exhausts aborts
    /// the sweep (inconclusive).
    pub fn certain_answers_budgeted(
        &self,
        exts: &Extensions,
        budget: &Budget,
    ) -> Result<Vec<(u32, u32)>, ExhaustionReason> {
        let n = exts.num_objects as u32;
        let pairs = (n as u64) * (n as u64);
        let per_pair = budget.slice(1, pairs.max(1));
        let mut out = Vec::new();
        for c in 0..n {
            for d in 0..n {
                if self.is_certain_budgeted(exts, c, d, &per_pair)? {
                    out.push((c, d));
                }
            }
        }
        budget.tracer().emit_with(|| TraceEvent::RpqCertain {
            pairs,
            certain: out.len() as u64,
        });
        Ok(out)
    }
}

/// Decides `(c, d) ∈ cert(Q, V)` via the Theorem 7.5 reduction:
/// certain iff `CSP(A, B)` has **no** solution. For repeated queries
/// against the same `Q`/`def(V)`, build a [`CertainAnswering`] once.
pub fn certain_answer(
    q: &Regex,
    views: &[View],
    alphabet: &[char],
    exts: &Extensions,
    c: u32,
    d: u32,
) -> bool {
    CertainAnswering::new(q, views, alphabet).is_certain(exts, c, d)
}

/// Ground-truth certain answering by canonical counterexample
/// enumeration: for each view fact choose a witness word of length ≤
/// `max_word_len` from the view's language, build the disjoint-path
/// canonical database, and check whether `Q` misses `(c, d)`. Sound
/// always; complete when counterexample witnesses of bounded length
/// suffice (true for the small tests this backs).
///
/// Returns `true` iff `(c, d)` is certain w.r.t. the bounded search.
pub fn certain_answer_bruteforce(
    q: &Regex,
    views: &[View],
    alphabet: &[char],
    exts: &Extensions,
    c: u32,
    d: u32,
    max_word_len: usize,
) -> bool {
    // Enumerate, per view, the words of length <= max_word_len.
    let words_per_view: Vec<Vec<Vec<usize>>> = views
        .iter()
        .map(|v| {
            let nfa = Nfa::from_regex(&v.definition, alphabet);
            let mut words = Vec::new();
            let k = alphabet.len();
            for len in 0..=max_word_len {
                let mut w = vec![0usize; len];
                loop {
                    if nfa.accepts(&w) {
                        words.push(w.clone());
                    }
                    let mut i = len;
                    let done = loop {
                        if i == 0 {
                            break true;
                        }
                        i -= 1;
                        w[i] += 1;
                        if w[i] < k {
                            break false;
                        }
                        w[i] = 0;
                    };
                    if done {
                        break;
                    }
                }
            }
            words
        })
        .collect();
    // Collect all (view, pair) facts; each picks a word index.
    let facts: Vec<(usize, u32, u32)> = exts
        .pairs
        .iter()
        .enumerate()
        .flat_map(|(i, ps)| ps.iter().map(move |&(x, y)| (i, x, y)))
        .collect();
    // If some view fact has NO witness word within the bound, no
    // canonical database exists within the bound; fall back to "certain"
    // conservatively only if the view language is empty entirely (then
    // no consistent database exists at all and cert is vacuously true).
    for &(i, _, _) in &facts {
        if words_per_view[i].is_empty() {
            return true;
        }
    }
    let mut choice = vec![0usize; facts.len()];
    'choices: loop {
        // Build the canonical database for this choice.
        let extra: usize = facts
            .iter()
            .enumerate()
            .map(|(fi, _)| {
                words_per_view[facts[fi].0][choice[fi]]
                    .len()
                    .saturating_sub(1)
            })
            .sum();
        let mut db = GraphDb::new(exts.num_objects + extra, alphabet);
        let mut fresh = exts.num_objects as u32;
        for (fi, &(vi, x, y)) in facts.iter().enumerate() {
            let word = &words_per_view[vi][choice[fi]];
            if word.is_empty() {
                // ε-witness: only a loop pair (x, x) can be realized by
                // the empty word under the unique name assumption; for
                // x != y this choice yields no consistent database.
                if x != y {
                    if !advance(&mut choice, &facts, &words_per_view) {
                        return true;
                    }
                    continue 'choices;
                }
                continue;
            }
            let mut at = x;
            for (j, &sym) in word.iter().enumerate() {
                let next = if j + 1 == word.len() {
                    y
                } else {
                    let n = fresh;
                    fresh += 1;
                    n
                };
                db.add_edge(at, db.symbol(sym), next);
                at = next;
            }
        }
        if !db.answers_pair(q, c, d) {
            return false; // counterexample database found
        }
        if !advance(&mut choice, &facts, &words_per_view) {
            return true;
        }
    }
}

fn advance(
    choice: &mut [usize],
    facts: &[(usize, u32, u32)],
    words_per_view: &[Vec<Vec<usize>>],
) -> bool {
    let mut i = choice.len();
    loop {
        if i == 0 {
            return false;
        }
        i -= 1;
        choice[i] += 1;
        if choice[i] < words_per_view[facts[i].0].len() {
            return true;
        }
        choice[i] = 0;
    }
}

/// The output of the Theorem 7.3 reduction: a query and view definitions
/// depending only on the template digraph **B**.
#[derive(Debug, Clone)]
pub struct CspAsViews {
    /// The RPQ `Q`.
    pub query: Regex,
    /// The views: `V0` = start marker `s`, `V1` = vertex coloring
    /// `(0|1|...)`, `V2` = adjacency marker `b`, `V3` = end marker `t`.
    pub views: Vec<View>,
    /// The data alphabet Σ.
    pub alphabet: Vec<char>,
    /// Number of template nodes.
    pub num_template_nodes: usize,
}

/// Theorem 7.3: builds `Q` and `def(V)` from a template digraph **B**
/// (an `{E/2}` structure) such that for every digraph **A**,
/// `(c, d) ∉ cert(Q, V)` over [`extensions_for_digraph`]`(A)` iff
/// `CSP(A, B)` is solvable.
///
/// The word shapes of `L(Q)` are `s · i · b · j · t` for every non-edge
/// `(i, j)` of **B**: a consistent database must color every vertex of
/// **A** (view `V1`), and the query scans for a monochromatic violation.
///
/// # Panics
///
/// Panics if **B** has more than 10 nodes (node letters are digits) or
/// is empty.
pub fn csp_to_views(b: &Structure) -> CspAsViews {
    let m = b.domain_size();
    assert!(m >= 1, "template must be nonempty");
    assert!(m <= 10, "template nodes are encoded as digit letters");
    let node_char = |i: u32| char::from_digit(i, 10).expect("m <= 10");
    let mut alphabet: Vec<char> = (0..m as u32).map(node_char).collect();
    alphabet.extend(['s', 'b', 't']);
    let eb = b.relation_by_name("E").expect("template is a digraph");
    let mut bad_patterns = Vec::new();
    for i in 0..m as u32 {
        for j in 0..m as u32 {
            if !eb.contains(&[i, j]) {
                bad_patterns.push(Regex::sequence(vec![
                    Regex::Literal(node_char(i)),
                    Regex::Literal('b'),
                    Regex::Literal(node_char(j)),
                ]));
            }
        }
    }
    let query = Regex::sequence(vec![
        Regex::Literal('s'),
        Regex::any_of(bad_patterns),
        Regex::Literal('t'),
    ]);
    let views = vec![
        View {
            name: "Vs".into(),
            definition: Regex::Literal('s'),
        },
        View {
            name: "Vcolor".into(),
            definition: Regex::any_of(
                (0..m as u32)
                    .map(|i| Regex::Literal(node_char(i)))
                    .collect(),
            ),
        },
        View {
            name: "Vadj".into(),
            definition: Regex::Literal('b'),
        },
        View {
            name: "Vt".into(),
            definition: Regex::Literal('t'),
        },
    ];
    CspAsViews {
        query,
        views,
        alphabet,
        num_template_nodes: m,
    }
}

/// Builds the view extensions and distinguished pair for an input
/// digraph **A** under the [`csp_to_views`] reduction. Objects: vertices
/// `0..n`, companions `n..2n`, then `c = 2n`, `d = 2n + 1`.
///
/// # Panics
///
/// Panics if **A** has no vertices (the reduction needs `c`, `d` to
/// appear in extensions).
pub fn extensions_for_digraph(a: &Structure) -> (Extensions, u32, u32) {
    let n = a.domain_size();
    assert!(n >= 1, "input digraph must have at least one vertex");
    let c = 2 * n as u32;
    let d = c + 1;
    let ea = a.relation_by_name("E").expect("input is a digraph");
    let vs: Vec<(u32, u32)> = (0..n as u32).map(|x| (c, x)).collect();
    let vcolor: Vec<(u32, u32)> = (0..n as u32).map(|x| (x, x + n as u32)).collect();
    let vadj: Vec<(u32, u32)> = ea.iter().map(|t| (t[0] + n as u32, t[1])).collect();
    let vt: Vec<(u32, u32)> = (0..n as u32).map(|y| (y + n as u32, d)).collect();
    (
        Extensions {
            num_objects: 2 * n + 2,
            pairs: vec![vs, vcolor, vadj, vt],
        },
        c,
        d,
    )
}

/// End-to-end Theorem 7.3 ∘ Theorem 7.5 round trip: decides `CSP(A, B)`
/// for digraphs by translating to view-based answering and back to CSP.
pub fn csp_via_view_answering(a: &Structure, b: &Structure) -> bool {
    let reduction = csp_to_views(b);
    let (exts, c, d) = extensions_for_digraph(a);
    !certain_answer(
        &reduction.query,
        &reduction.views,
        &reduction.alphabet,
        &exts,
        c,
        d,
    )
}

/// Data-complexity measure helper: the size of the extensions (total
/// pairs), the quantity Theorem 7.1's co-NP bound is measured in.
pub fn extension_size(exts: &Extensions) -> usize {
    exts.pairs.iter().map(Vec::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{clique, cycle, digraph};

    fn simple_views() -> (Regex, Vec<View>, Vec<char>) {
        // Q = ab over Σ = {a, b}; one view per letter.
        let q = Regex::parse("ab").unwrap();
        let views = vec![
            View {
                name: "Va".into(),
                definition: Regex::parse("a").unwrap(),
            },
            View {
                name: "Vb".into(),
                definition: Regex::parse("b").unwrap(),
            },
        ];
        (q, views, vec!['a', 'b'])
    }

    #[test]
    fn certain_answer_on_a_forced_chain() {
        let (q, views, alphabet) = simple_views();
        // ext: Va(0,1), Vb(1,2): every consistent DB has a-edge 0->1 and
        // b-edge 1->2, so (0,2) is certain.
        let exts = Extensions {
            num_objects: 3,
            pairs: vec![vec![(0, 1)], vec![(1, 2)]],
        };
        assert!(certain_answer(&q, &views, &alphabet, &exts, 0, 2));
        // (0,1) is not certain (no ab-path forced to end at 1).
        assert!(!certain_answer(&q, &views, &alphabet, &exts, 0, 1));
        // (1,2) is not certain for Q=ab.
        assert!(!certain_answer(&q, &views, &alphabet, &exts, 1, 2));
    }

    #[test]
    fn brute_force_agrees_on_forced_chain() {
        let (q, views, alphabet) = simple_views();
        let exts = Extensions {
            num_objects: 3,
            pairs: vec![vec![(0, 1)], vec![(1, 2)]],
        };
        for (c, d, _) in [(0, 2, true), (0, 1, false), (1, 2, false)] {
            assert_eq!(
                certain_answer(&q, &views, &alphabet, &exts, c, d),
                certain_answer_bruteforce(&q, &views, &alphabet, &exts, c, d, 3),
                "pair ({c},{d})"
            );
        }
    }

    #[test]
    fn disjunctive_views_are_not_certain() {
        // View Vab with def a|b; Q = a. A consistent DB may realize the
        // pair with b, so (0,1) is not certain.
        let q = Regex::parse("a").unwrap();
        let views = vec![View {
            name: "Vab".into(),
            definition: Regex::parse("a|b").unwrap(),
        }];
        let exts = Extensions {
            num_objects: 2,
            pairs: vec![vec![(0, 1)]],
        };
        assert!(!certain_answer(&q, &views, &['a', 'b'], &exts, 0, 1));
        assert!(!certain_answer_bruteforce(
            &q,
            &views,
            &['a', 'b'],
            &exts,
            0,
            1,
            2
        ));
        // But with Q = a|b it IS certain.
        let q2 = Regex::parse("a|b").unwrap();
        assert!(certain_answer(&q2, &views, &['a', 'b'], &exts, 0, 1));
        assert!(certain_answer_bruteforce(
            &q2,
            &views,
            &['a', 'b'],
            &exts,
            0,
            1,
            2
        ));
    }

    #[test]
    fn kleene_view_certainty() {
        // View V with def a+ and Q = a*: any witness word is a-only, so
        // (0,1) is certain for Q = a* (actually a+ ⊆ a*).
        let q = Regex::parse("a*").unwrap();
        let views = vec![View {
            name: "V".into(),
            definition: Regex::parse("a+").unwrap(),
        }];
        let exts = Extensions {
            num_objects: 2,
            pairs: vec![vec![(0, 1)]],
        };
        assert!(certain_answer(&q, &views, &['a'], &exts, 0, 1));
        assert!(certain_answer_bruteforce(
            &q,
            &views,
            &['a'],
            &exts,
            0,
            1,
            3
        ));
        // Q = aa is not certain (witness could be a single a).
        let q2 = Regex::parse("aa").unwrap();
        assert!(!certain_answer(&q2, &views, &['a'], &exts, 0, 1));
        assert!(!certain_answer_bruteforce(
            &q2,
            &views,
            &['a'],
            &exts,
            0,
            1,
            3
        ));
    }

    #[test]
    fn theorem_7_3_reduction_on_colorability() {
        // Template K2: CSP(A, K2) = 2-colorability.
        let k2 = clique(2);
        for (a, expect) in [
            (cycle(4), true),
            (cycle(5), false),
            (cycle(3), false),
            (digraph(2, &[(0, 1)]), true),
        ] {
            assert_eq!(
                csp_via_view_answering(&a, &k2),
                expect,
                "2-colorability of {a}"
            );
        }
    }

    #[test]
    fn theorem_7_3_reduction_matches_solver_on_random_digraphs() {
        let mut state = 0xABCDEF0123456789u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Template: directed 2-cycle plus loop structure.
        let b = digraph(2, &[(0, 1), (1, 0), (1, 1)]);
        for _ in 0..8 {
            let n = 2 + (next() % 3) as usize;
            let mut edges = Vec::new();
            for u in 0..n as u32 {
                for v in 0..n as u32 {
                    if next() % 3 == 0 {
                        edges.push((u, v));
                    }
                }
            }
            let a = digraph(n, &edges);
            let direct = cspdb_solver::find_homomorphism(&a, &b).is_some();
            assert_eq!(csp_via_view_answering(&a, &b), direct, "on {a}");
        }
    }

    #[test]
    fn template_shape() {
        let (q, views, alphabet) = simple_views();
        let t = constraint_template(&q, &views, &alphabet);
        // ab trimmed automaton: 3 states; domain 8.
        assert_eq!(t.num_states, 3);
        assert_eq!(t.template.domain_size(), 8);
        // Uc: supersets of S0 (1 start state): 4 of 8.
        assert_eq!(t.template.relation_by_name("Uc").unwrap().len(), 4);
        // Ud: sets avoiding F (1 accepting state): 4 of 8.
        assert_eq!(t.template.relation_by_name("Ud").unwrap().len(), 4);
    }

    #[test]
    fn empty_extension_views() {
        // With no view facts at all, c and d still appear via Uc/Ud...
        // they must be objects; certain answers require every consistent
        // DB to connect them — the empty DB is consistent, so nothing is
        // certain.
        let (q, views, alphabet) = simple_views();
        let exts = Extensions {
            num_objects: 2,
            pairs: vec![vec![], vec![]],
        };
        assert!(!certain_answer(&q, &views, &alphabet, &exts, 0, 1));
    }
}
