//! Partial k-tree generator: graphs of guaranteed treewidth ≤ k, the
//! workload for the bounded-treewidth experiments (Theorem 6.2 / E9).

use cspdb_core::graphs::undirected;
use cspdb_core::Structure;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Builds a random partial k-tree on `n ≥ k + 1` vertices: grow a k-tree
/// (every new vertex attached to a random existing k-clique), then keep
/// each edge with probability `keep`. The result has treewidth ≤ k by
/// construction (subgraphs of k-trees are partial k-trees).
///
/// Returns the undirected structure.
///
/// # Panics
///
/// Panics if `n < k + 1` or `k == 0`.
pub fn partial_k_tree(n: usize, k: usize, keep: f64, seed: u64) -> Structure {
    assert!(k >= 1, "k must be positive");
    assert!(n > k, "need at least k+1 vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    // cliques: list of k-cliques available for attachment.
    let mut cliques: Vec<Vec<u32>> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Base clique on 0..k+1.
    let base: Vec<u32> = (0..=k as u32).collect();
    for (i, &u) in base.iter().enumerate() {
        for &v in &base[i + 1..] {
            edges.push((u, v));
        }
    }
    for skip in 0..=k {
        let mut c = base.clone();
        c.remove(skip);
        cliques.push(c);
    }
    for v in (k + 1) as u32..n as u32 {
        let attach = cliques.choose(&mut rng).expect("nonempty").clone();
        for &u in &attach {
            edges.push((u, v));
        }
        // New k-cliques: attach with one vertex swapped for v.
        for skip in 0..k {
            let mut c = attach.clone();
            c[skip] = v;
            c.sort_unstable();
            cliques.push(c);
        }
    }
    let kept: Vec<(u32, u32)> = edges
        .into_iter()
        .filter(|_| rng.gen_bool(keep.clamp(0.0, 1.0)))
        .collect();
    undirected(n, &kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_decomp::{exact_treewidth, Graph};

    #[test]
    fn width_is_bounded_by_k() {
        for seed in 0..5u64 {
            for k in 1..=3usize {
                let s = partial_k_tree(12, k, 1.0, seed);
                let g = Graph::gaifman(&s);
                let (w, _) = exact_treewidth(&g);
                assert!(w <= k, "k = {k}, got width {w}");
                // A full k-tree on >= k+1 vertices has width exactly k.
                assert_eq!(w, k);
            }
        }
    }

    #[test]
    fn sparsified_width_still_bounded() {
        for seed in 0..5u64 {
            let s = partial_k_tree(14, 2, 0.6, seed);
            let g = Graph::gaifman(&s);
            let (w, _) = exact_treewidth(&g);
            assert!(w <= 2);
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(partial_k_tree(10, 2, 0.7, 3), partial_k_tree(10, 2, 0.7, 3));
    }

    #[test]
    #[should_panic(expected = "k+1")]
    fn too_small_n_rejected() {
        partial_k_tree(2, 2, 1.0, 0);
    }
}
