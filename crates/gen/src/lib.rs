//! # cspdb-gen
//!
//! Seeded workload generators for every experiment in EXPERIMENTS.md.
//! All generators take an explicit `seed` and are deterministic across
//! runs, so benches and paper-vs-measured tables are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod csp;
mod graphs;
mod ktree;

pub use cnf::{cnf_to_csp, random_2sat, random_3sat, random_horn, random_xor_system};
pub use csp::random_binary_csp;
pub use graphs::{gnp, grid, random_bipartite, random_labeled_edges};
pub use ktree::partial_k_tree;
