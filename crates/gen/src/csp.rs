//! Random binary CSP instances (model-RB-style).

use cspdb_core::{CspInstance, Relation};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Generates a random binary CSP: `n` variables, `d` values,
/// `num_constraints` constraints on distinct random variable pairs, each
/// forbidding a fraction `tightness` of the `d²` value pairs.
///
/// Near the classic phase transition (moderate density/tightness) these
/// instances are hard for search; loose instances are almost surely
/// satisfiable. Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 2`, `d == 0`, or `tightness ∉ [0, 1]`.
pub fn random_binary_csp(
    n: usize,
    d: usize,
    num_constraints: usize,
    tightness: f64,
    seed: u64,
) -> CspInstance {
    assert!(n >= 2, "need at least two variables");
    assert!(d >= 1, "need at least one value");
    assert!((0.0..=1.0).contains(&tightness), "tightness in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut instance = CspInstance::new(n, d);
    let forbidden = ((d * d) as f64 * tightness).round() as usize;
    let mut all_pairs: Vec<[u32; 2]> = (0..d as u32)
        .flat_map(|i| (0..d as u32).map(move |j| [i, j]))
        .collect();
    for _ in 0..num_constraints {
        let x = rng.gen_range(0..n as u32);
        let mut y = rng.gen_range(0..n as u32);
        while y == x {
            y = rng.gen_range(0..n as u32);
        }
        all_pairs.shuffle(&mut rng);
        let allowed = &all_pairs[..(d * d - forbidden.min(d * d))];
        let rel = Relation::from_tuples(2, allowed.iter()).expect("arity 2");
        instance
            .add_constraint([x, y], Arc::new(rel))
            .expect("in range");
    }
    instance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let a = random_binary_csp(8, 4, 10, 0.3, 99);
        let b = random_binary_csp(8, 4, 10, 0.3, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn tightness_extremes() {
        // tightness 0: all pairs allowed -> trivially satisfiable.
        let p = random_binary_csp(5, 3, 8, 0.0, 1);
        assert!(p.solve_brute_force().is_some());
        // tightness 1: nothing allowed -> unsatisfiable (if a constraint
        // exists).
        let p = random_binary_csp(5, 3, 8, 1.0, 1);
        assert!(p.solve_brute_force().is_none());
    }

    #[test]
    fn constraint_count_and_scopes() {
        let p = random_binary_csp(6, 2, 12, 0.25, 5);
        assert_eq!(p.constraints().len(), 12);
        for c in p.constraints() {
            assert_eq!(c.scope().len(), 2);
            assert_ne!(c.scope()[0], c.scope()[1]);
            assert_eq!(c.relation().len(), 3); // 4 - 1 forbidden
        }
    }
}
