//! Random CNF / XOR formula generators and the CNF → Boolean-CSP bridge
//! used by the dichotomy experiments (E3).

use cspdb_core::{CspInstance, Relation};
use cspdb_schaefer::{Cnf, XorSystem};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_clause(rng: &mut StdRng, n: usize, width: usize) -> Vec<i32> {
    let mut vars: Vec<u32> = (0..n as u32).collect();
    vars.shuffle(rng);
    vars[..width]
        .iter()
        .map(|&v| {
            let lit = v as i32 + 1;
            if rng.gen_bool(0.5) {
                lit
            } else {
                -lit
            }
        })
        .collect()
}

/// Uniform random 3-SAT with `m` clauses over `n ≥ 3` variables. The
/// satisfiability phase transition sits near `m/n ≈ 4.26`.
pub fn random_3sat(n: usize, m: usize, seed: u64) -> Cnf {
    assert!(n >= 3, "3-SAT needs at least 3 variables");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = Cnf::new(n);
    for _ in 0..m {
        f.add_clause(random_clause(&mut rng, n, 3));
    }
    f
}

/// Uniform random 2-SAT with `m` clauses over `n ≥ 2` variables.
pub fn random_2sat(n: usize, m: usize, seed: u64) -> Cnf {
    assert!(n >= 2, "2-SAT needs at least 2 variables");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = Cnf::new(n);
    for _ in 0..m {
        f.add_clause(random_clause(&mut rng, n, 2));
    }
    f
}

/// Random Horn formula: `m` clauses of width ≤ 3 with at most one
/// positive literal, plus a few positive unit clauses to make
/// propagation non-trivial.
pub fn random_horn(n: usize, m: usize, seed: u64) -> Cnf {
    assert!(n >= 3, "need at least 3 variables");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = Cnf::new(n);
    for _ in 0..m {
        match rng.gen_range(0..4u32) {
            0 => {
                // Positive unit clause.
                f.add_clause([rng.gen_range(0..n as u32) as i32 + 1]);
            }
            1 => {
                // Fully negative clause.
                let c: Vec<i32> = random_clause(&mut rng, n, 2)
                    .into_iter()
                    .map(|l| -l.abs())
                    .collect();
                f.add_clause(c);
            }
            _ => {
                // body -> head.
                let mut vars: Vec<u32> = (0..n as u32).collect();
                vars.shuffle(&mut rng);
                f.add_clause([
                    -(vars[0] as i32 + 1),
                    -(vars[1] as i32 + 1),
                    vars[2] as i32 + 1,
                ]);
            }
        }
    }
    debug_assert!(f.is_horn());
    f
}

/// Random XOR system: `m` equations of width 2–3 over `n ≥ 3` variables.
pub fn random_xor_system(n: usize, m: usize, seed: u64) -> XorSystem {
    assert!(n >= 3, "need at least 3 variables");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = XorSystem::new(n);
    for _ in 0..m {
        let width = rng.gen_range(2..=3usize);
        let mut vars: Vec<u32> = (0..n as u32).collect();
        vars.shuffle(&mut rng);
        s.add_equation(vars[..width].iter().copied(), rng.gen_bool(0.5));
    }
    s
}

/// Converts a CNF formula to a Boolean CSP instance: one constraint per
/// clause, whose relation lists the satisfying Boolean tuples over the
/// clause's variables.
///
/// Clauses with repeated variables are supported (the scope keeps
/// distinct variables; the relation is computed accordingly).
pub fn cnf_to_csp(f: &Cnf) -> CspInstance {
    let mut instance = CspInstance::new(f.num_vars, 2);
    for clause in &f.clauses {
        let mut vars: Vec<u32> = clause.iter().map(|l| l.unsigned_abs() - 1).collect();
        vars.sort_unstable();
        vars.dedup();
        let arity = vars.len();
        let mut tuples = Vec::new();
        for bits in 0u32..(1 << arity) {
            let tuple: Vec<u32> = (0..arity).map(|i| (bits >> i) & 1).collect();
            let satisfied = clause.iter().any(|&lit| {
                let v = lit.unsigned_abs() - 1;
                let idx = vars.binary_search(&v).expect("var present");
                (lit > 0) == (tuple[idx] == 1)
            });
            if satisfied {
                tuples.push(tuple);
            }
        }
        let rel = Relation::from_tuples(arity, tuples.iter()).expect("consistent arity");
        instance
            .add_constraint(vars.into_boxed_slice(), Arc::new(rel))
            .expect("in range");
    }
    instance
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_schaefer::{solve_2sat, solve_horn};

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            random_3sat(10, 30, 7).clauses,
            random_3sat(10, 30, 7).clauses
        );
        assert_eq!(
            random_2sat(10, 20, 7).clauses,
            random_2sat(10, 20, 7).clauses
        );
        assert_eq!(
            random_horn(10, 20, 7).clauses,
            random_horn(10, 20, 7).clauses
        );
    }

    #[test]
    fn horn_generator_makes_horn() {
        for seed in 0..10 {
            assert!(random_horn(8, 25, seed).is_horn());
        }
    }

    #[test]
    fn csp_bridge_preserves_satisfiability() {
        for seed in 0..10u64 {
            let f = random_3sat(6, 20, seed);
            let csp = cnf_to_csp(&f);
            assert_eq!(
                csp.solve_brute_force().is_some(),
                f.solve_brute_force().is_some(),
                "seed {seed}"
            );
        }
        for seed in 0..10u64 {
            let f = random_2sat(6, 14, seed);
            let csp = cnf_to_csp(&f);
            assert_eq!(
                csp.solve_brute_force().is_some(),
                solve_2sat(&f).is_some(),
                "seed {seed}"
            );
        }
        for seed in 0..10u64 {
            let f = random_horn(6, 14, seed);
            let csp = cnf_to_csp(&f);
            assert_eq!(
                csp.solve_brute_force().is_some(),
                solve_horn(&f).is_some(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn bridge_handles_repeated_variables() {
        let mut f = Cnf::new(2);
        f.add_clause([1, 1]); // (x0 ∨ x0)
        f.add_clause([1, -1]); // tautology
        let csp = cnf_to_csp(&f);
        assert_eq!(csp.constraints()[0].scope(), &[0]);
        assert!(csp.is_solution(&[1, 0]));
        assert!(!csp.is_solution(&[0, 0]));
    }

    #[test]
    fn xor_generator_in_range() {
        let s = random_xor_system(5, 12, 3);
        assert_eq!(s.equations.len(), 12);
        for (vars, _) in &s.equations {
            assert!(vars.iter().all(|&v| v < 5));
        }
    }
}
