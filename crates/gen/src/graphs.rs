//! Random and structured graph generators (as `{E/2}` structures).

use cspdb_core::graphs::undirected;
use cspdb_core::Structure;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)` as an undirected structure.
pub fn gnp(n: usize, p: f64, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((u, v));
            }
        }
    }
    undirected(n, &edges)
}

/// A random bipartite graph: parts of size `m` and `n`, each cross edge
/// kept with probability `p`. Always 2-colorable.
pub fn random_bipartite(m: usize, n: usize, p: f64, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..m as u32 {
        for v in 0..n as u32 {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                edges.push((u, m as u32 + v));
            }
        }
    }
    undirected(m + n, &edges)
}

/// An `rows × cols` grid graph (treewidth `min(rows, cols)`).
pub fn grid(rows: usize, cols: usize) -> Structure {
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((at(r, c), at(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((at(r, c), at(r + 1, c)));
            }
        }
    }
    undirected(rows * cols, &edges)
}

/// Random edge-labeled graph edges `(source, label, target)` over
/// `alphabet_size` labels: each ordered pair gets an edge with
/// probability `p`, with a uniformly random label. Used by the Section 7
/// (RPQ / view-based answering) experiments.
pub fn random_labeled_edges(
    n: usize,
    alphabet_size: usize,
    p: f64,
    seed: u64,
) -> Vec<(u32, usize, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v && rng.gen_bool(p.clamp(0.0, 1.0)) {
                out.push((u, rng.gen_range(0..alphabet_size), v));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cspdb_core::graphs::{is_undirected_simple, two_coloring};

    #[test]
    fn gnp_determinism_and_shape() {
        let a = gnp(20, 0.3, 42);
        let b = gnp(20, 0.3, 42);
        assert_eq!(a, b);
        let c = gnp(20, 0.3, 43);
        assert_ne!(a, c);
        assert!(is_undirected_simple(&a) || a.fact_count() == 0);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).fact_count(), 0);
        assert_eq!(gnp(5, 1.0, 1).fact_count(), 20); // K5 both directions
    }

    #[test]
    fn bipartite_is_2_colorable() {
        for seed in 0..5 {
            let g = random_bipartite(6, 7, 0.5, seed);
            assert!(two_coloring(&g).is_some());
        }
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.domain_size(), 12);
        // 3*3 + 2*4 = 17 undirected edges = 34 facts.
        assert_eq!(g.fact_count(), 34);
        assert!(two_coloring(&g).is_some());
    }

    #[test]
    fn labeled_edges_in_range() {
        let es = random_labeled_edges(10, 3, 0.4, 7);
        assert!(!es.is_empty());
        for (u, l, v) in es {
            assert!(u < 10 && v < 10 && u != v && l < 3);
        }
    }
}
