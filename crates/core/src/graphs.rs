//! Standard graph-shaped structures used throughout the paper's examples:
//! cliques `K_k` (whose CSP is k-colorability), cycles, paths, and helpers
//! for encoding undirected graphs as symmetric directed-edge structures.

use crate::structure::Structure;
use crate::vocabulary::Vocabulary;
use std::sync::Arc;

/// The single-binary-relation vocabulary `{E/2}` used for (di)graphs.
pub fn graph_vocabulary() -> Arc<Vocabulary> {
    Vocabulary::new([("E", 2)]).expect("static vocabulary is valid")
}

/// Builds a directed graph structure from an edge list.
///
/// # Panics
///
/// Panics if an endpoint is `>= n` (caller bug in tests/examples).
pub fn digraph(n: usize, edges: &[(u32, u32)]) -> Structure {
    let mut s = Structure::new(graph_vocabulary(), n);
    for &(u, v) in edges {
        s.insert_by_name("E", &[u, v]).expect("endpoints in range");
    }
    s
}

/// Builds an undirected graph: every edge is inserted in both directions.
///
/// # Panics
///
/// Panics if an endpoint is `>= n`.
pub fn undirected(n: usize, edges: &[(u32, u32)]) -> Structure {
    let mut s = Structure::new(graph_vocabulary(), n);
    for &(u, v) in edges {
        s.insert_by_name("E", &[u, v]).expect("endpoints in range");
        s.insert_by_name("E", &[v, u]).expect("endpoints in range");
    }
    s
}

/// The clique `K_k` with all loops omitted, as an undirected structure.
/// `CSP(K_k)` is the k-colorability problem (Section 3).
pub fn clique(k: usize) -> Structure {
    let mut s = Structure::new(graph_vocabulary(), k);
    for u in 0..k as u32 {
        for v in 0..k as u32 {
            if u != v {
                s.insert_by_name("E", &[u, v]).expect("in range");
            }
        }
    }
    s
}

/// The undirected cycle `C_n` (`n >= 3`); odd cycles are the canonical
/// non-2-colorable inputs of the Section 4 Datalog example.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Structure {
    assert!(n >= 3, "cycles need at least 3 vertices");
    let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
    undirected(n, &edges)
}

/// The undirected path with `n` vertices (`n - 1` edges).
pub fn path(n: usize) -> Structure {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
    undirected(n, &edges)
}

/// The directed path with `n` vertices: edges `i -> i+1` only.
pub fn directed_path(n: usize) -> Structure {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
    digraph(n, &edges)
}

/// A complete bipartite graph `K_{m,n}` as an undirected structure.
pub fn complete_bipartite(m: usize, n: usize) -> Structure {
    let edges: Vec<(u32, u32)> = (0..m as u32)
        .flat_map(|u| (0..n as u32).map(move |v| (u, m as u32 + v)))
        .collect();
    undirected(m + n, &edges)
}

/// Tests whether an `{E/2}`-structure is symmetric and loop-free, i.e.
/// encodes a simple undirected graph.
pub fn is_undirected_simple(s: &Structure) -> bool {
    let e = match s.relation_by_name("E") {
        Ok(r) => r,
        Err(_) => return false,
    };
    e.iter().all(|t| t[0] != t[1] && e.contains(&[t[1], t[0]]))
}

/// 2-colorability (bipartiteness) check by BFS; `None` if not bipartite,
/// otherwise a witness 2-coloring. Works on any `{E/2}`-structure, treating
/// edges as undirected; loops make the graph non-bipartite.
pub fn two_coloring(s: &Structure) -> Option<Vec<u32>> {
    let n = s.domain_size();
    let e = s.relation_by_name("E").ok()?;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for t in e.iter() {
        if t[0] == t[1] {
            return None; // a loop admits no proper coloring
        }
        adj[t[0] as usize].push(t[1]);
        adj[t[1] as usize].push(t[0]);
    }
    let mut color = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if color[start] != u32::MAX {
            continue;
        }
        color[start] = 0;
        queue.push_back(start as u32);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u as usize] {
                if color[v as usize] == u32::MAX {
                    color[v as usize] = 1 - color[u as usize];
                    queue.push_back(v);
                } else if color[v as usize] == color[u as usize] {
                    return None;
                }
            }
        }
    }
    Some(color)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphism::is_homomorphism;

    #[test]
    fn clique_edge_count() {
        assert_eq!(clique(3).fact_count(), 6);
        assert_eq!(clique(4).fact_count(), 12);
        assert!(is_undirected_simple(&clique(5)));
    }

    #[test]
    fn cycles_and_colorings() {
        assert!(two_coloring(&cycle(4)).is_some());
        assert!(two_coloring(&cycle(5)).is_none());
        assert!(two_coloring(&cycle(6)).is_some());
        assert!(two_coloring(&path(7)).is_some());
        assert!(two_coloring(&clique(3)).is_none());
        assert!(two_coloring(&complete_bipartite(3, 4)).is_some());
    }

    #[test]
    fn two_coloring_is_a_homomorphism_to_k2() {
        let g = cycle(6);
        let coloring = two_coloring(&g).unwrap();
        assert!(is_homomorphism(&coloring, &g, &clique(2)));
    }

    #[test]
    fn loops_break_bipartiteness() {
        let g = digraph(2, &[(0, 0)]);
        assert!(two_coloring(&g).is_none());
        assert!(!is_undirected_simple(&g));
    }

    #[test]
    fn empty_graph_is_bipartite() {
        let g = digraph(4, &[]);
        assert_eq!(two_coloring(&g).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn odd_cycle_maps_to_k3_not_k2() {
        let c5 = cycle(5);
        // 5-cycle 3-colorable: 0,1,0,1,2.
        assert!(is_homomorphism(&[0, 1, 0, 1, 2], &c5, &clique(3)));
    }

    #[test]
    fn directed_path_shape() {
        let p = directed_path(3);
        let e = p.relation_by_name("E").unwrap();
        assert_eq!(e.len(), 2);
        assert!(e.contains(&[0, 1]) && e.contains(&[1, 2]));
    }
}
