//! The `A + B` encoding of a pair of σ-structures as a single structure
//! over the vocabulary `σ1 + σ2` (Section 4 of the paper).
//!
//! For each symbol `R` of σ, the combined vocabulary has `R_1` and `R_2`
//! of the same arity, plus two new unary symbols `D1` and `D2` marking the
//! two halves of the domain. Queries on pairs of σ-structures — such as
//! "does the Spoiler win the existential k-pebble game on **A** and
//! **B**?" — become ordinary queries on single `σ1 + σ2`-structures, which
//! is how Theorem 4.5 phrases definability in least fixed-point logic.

use crate::error::{CoreError, Result};
use crate::structure::Structure;
use crate::vocabulary::{Vocabulary, VocabularyBuilder};
use std::sync::Arc;

/// Name of the unary marker for the first half of the domain.
pub const D1: &str = "D1";
/// Name of the unary marker for the second half of the domain.
pub const D2: &str = "D2";

/// Builds the vocabulary `σ1 + σ2` from σ: symbols `R@1` and `R@2` for
/// each `R` in σ, plus unary `D1` and `D2`.
///
/// The `@` separator cannot occur in user-facing symbol names constructed
/// through [`Vocabulary::new`], so decoding is unambiguous.
pub fn sum_vocabulary(sigma: &Vocabulary) -> Arc<Vocabulary> {
    let mut b = VocabularyBuilder::new();
    for (_, name, arity) in sigma.iter() {
        b.add(format!("{name}@1"), arity)
            .expect("suffixed names are unique");
    }
    for (_, name, arity) in sigma.iter() {
        b.add(format!("{name}@2"), arity)
            .expect("suffixed names are unique");
    }
    b.add(D1, 1).expect("D1 is fresh");
    b.add(D2, 1).expect("D2 is fresh");
    b.finish()
}

/// Encodes the pair `(A, B)` as the single structure `A + B` over
/// `σ1 + σ2` (domain = disjoint union, `B`'s elements shifted by
/// `A.domain_size()`).
///
/// # Errors
///
/// Returns [`CoreError::VocabularyMismatch`] if the two structures do not
/// share a vocabulary.
pub fn encode_pair(a: &Structure, b: &Structure) -> Result<Structure> {
    if a.vocabulary() != b.vocabulary() {
        return Err(CoreError::VocabularyMismatch);
    }
    let sigma = a.vocabulary();
    let voc = sum_vocabulary(sigma);
    let shift = a.domain_size() as u32;
    let mut out = Structure::new(voc.clone(), a.domain_size() + b.domain_size());
    let mut shifted = Vec::new();
    for (id, rel) in a.relations() {
        let out_id = voc.id(&format!("{}@1", sigma.name(id)))?;
        for t in rel.iter() {
            out.insert(out_id, t)?;
        }
    }
    for (id, rel) in b.relations() {
        let out_id = voc.id(&format!("{}@2", sigma.name(id)))?;
        for t in rel.iter() {
            shifted.clear();
            shifted.extend(t.iter().map(|&x| x + shift));
            out.insert(out_id, &shifted)?;
        }
    }
    let d1 = voc.id(D1)?;
    for x in 0..shift {
        out.insert(d1, &[x])?;
    }
    let d2 = voc.id(D2)?;
    for x in 0..b.domain_size() as u32 {
        out.insert(d2, &[x + shift])?;
    }
    Ok(out)
}

/// Decodes `A + B` back into the pair `(A, B)` over the original σ.
///
/// # Errors
///
/// Returns [`CoreError::UnknownSymbol`] if `encoded`'s vocabulary is not a
/// sum vocabulary of `sigma`, or element-range errors if the `D1`/`D2`
/// markers do not split the domain into a prefix and a suffix.
pub fn decode_pair(encoded: &Structure, sigma: &Arc<Vocabulary>) -> Result<(Structure, Structure)> {
    let voc = encoded.vocabulary();
    let d1 = encoded.relation(voc.id(D1)?);
    let d2 = encoded.relation(voc.id(D2)?);
    let a_size = d1.len();
    let b_size = d2.len();
    // Validate the split: D1 must be exactly {0..a_size}.
    for (i, t) in d1.iter().enumerate() {
        if t[0] as usize != i {
            return Err(CoreError::ElementOutOfRange {
                element: t[0],
                domain_size: a_size,
            });
        }
    }
    for (i, t) in d2.iter().enumerate() {
        if t[0] as usize != a_size + i {
            return Err(CoreError::ElementOutOfRange {
                element: t[0],
                domain_size: a_size + b_size,
            });
        }
    }
    let shift = a_size as u32;
    let mut a = Structure::new(sigma.clone(), a_size);
    let mut b = Structure::new(sigma.clone(), b_size);
    let mut unshifted = Vec::new();
    for (id, name, _) in sigma.iter() {
        let r1 = encoded.relation(voc.id(&format!("{name}@1"))?);
        for t in r1.iter() {
            a.insert(id, t)?;
        }
        let r2 = encoded.relation(voc.id(&format!("{name}@2"))?);
        for t in r2.iter() {
            unshifted.clear();
            for &x in t {
                if x < shift {
                    return Err(CoreError::ElementOutOfRange {
                        element: x,
                        domain_size: b_size,
                    });
                }
                unshifted.push(x - shift);
            }
            b.insert(id, &unshifted)?;
        }
    }
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(u32, u32)]) -> Structure {
        let voc = Vocabulary::new([("E", 2)]).unwrap();
        let mut s = Structure::new(voc, n);
        for &(u, v) in edges {
            s.insert_by_name("E", &[u, v]).unwrap();
        }
        s
    }

    #[test]
    fn sum_vocabulary_shape() {
        let sigma = Vocabulary::new([("E", 2), ("P", 1)]).unwrap();
        let voc = sum_vocabulary(&sigma);
        assert_eq!(voc.len(), 2 * 2 + 2);
        assert_eq!(voc.arity(voc.id("E@1").unwrap()), 2);
        assert_eq!(voc.arity(voc.id("E@2").unwrap()), 2);
        assert_eq!(voc.arity(voc.id("D1").unwrap()), 1);
        assert_eq!(voc.arity(voc.id("D2").unwrap()), 1);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let a = graph(2, &[(0, 1)]);
        let b = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let enc = encode_pair(&a, &b).unwrap();
        assert_eq!(enc.domain_size(), 5);
        assert!(enc.relation_by_name("E@1").unwrap().contains(&[0, 1]));
        assert!(enc.relation_by_name("E@2").unwrap().contains(&[2, 3]));
        assert_eq!(enc.relation_by_name("D1").unwrap().len(), 2);
        assert_eq!(enc.relation_by_name("D2").unwrap().len(), 3);
        let (a2, b2) = decode_pair(&enc, a.vocabulary()).unwrap();
        assert_eq!(a, a2);
        assert_eq!(b, b2);
    }

    #[test]
    fn encode_rejects_mismatched_vocabularies() {
        let a = graph(1, &[]);
        let voc = Vocabulary::new([("F", 2)]).unwrap();
        let b = Structure::new(voc, 1);
        assert_eq!(
            encode_pair(&a, &b).unwrap_err(),
            CoreError::VocabularyMismatch
        );
    }

    #[test]
    fn empty_sides_roundtrip() {
        let a = graph(0, &[]);
        let b = graph(2, &[(0, 1)]);
        let enc = encode_pair(&a, &b).unwrap();
        let (a2, b2) = decode_pair(&enc, a.vocabulary()).unwrap();
        assert_eq!(a2.domain_size(), 0);
        assert_eq!(b2, b);
    }
}
