//! Resource governance: budgets, cooperative cancellation, and the
//! `Sat / Unsat / Unknown` answer taxonomy.
//!
//! Every solver path in this workspace can run under a [`Budget`]: a
//! wall-clock deadline, a step (node/revision/iteration) limit, a cap on
//! intermediate tuples materialised by join-style algorithms, and a
//! cooperative [`CancelToken`]. Algorithms thread a [`Meter`] through
//! their hot loops and call [`Meter::tick`] once per unit of work; the
//! meter amortises the actual checks (clock reads, atomic loads) to one
//! in every [`CHECK_INTERVAL`] ticks, so governance costs a counter
//! increment on the fast path.
//!
//! When a limit trips, the algorithm unwinds with
//! [`ExhaustionReason`], and entry points report
//! [`Answer::Unknown`] rather than guessing. The contract everywhere is
//! **soundness under exhaustion**: a budgeted run may say `Unknown`, but
//! if it says `Sat` or `Unsat` that answer agrees with the unbudgeted
//! ground truth.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::CoreError;

/// Number of [`Meter::tick`] calls between expensive checkpoint checks
/// (clock read, cancellation flag load). Power of two so the modulo is a
/// mask.
pub const CHECK_INTERVAL: u64 = 1024;

/// Shared flag for cooperative cancellation.
///
/// Clone the token, hand one copy to the solving thread's [`Budget`],
/// and call [`CancelToken::cancel`] from anywhere (another thread, a
/// signal handler, a UI callback). Running algorithms observe the flag
/// at their next checkpoint and unwind with
/// [`ExhaustionReason::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Which resource a budgeted run exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustionReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The step (search node / revision / iteration) limit was reached.
    StepLimitExceeded,
    /// The cap on materialised intermediate tuples was reached.
    TupleLimitExceeded,
    /// The [`CancelToken`] was triggered.
    Cancelled,
}

impl ExhaustionReason {
    /// Short resource name, as used in [`CoreError::ResourceExhausted`].
    pub fn resource_name(self) -> &'static str {
        match self {
            ExhaustionReason::DeadlineExceeded => "wall-clock",
            ExhaustionReason::StepLimitExceeded => "steps",
            ExhaustionReason::TupleLimitExceeded => "tuples",
            ExhaustionReason::Cancelled => "cancellation",
        }
    }
}

impl std::fmt::Display for ExhaustionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustionReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            ExhaustionReason::StepLimitExceeded => write!(f, "step limit exceeded"),
            ExhaustionReason::TupleLimitExceeded => write!(f, "tuple limit exceeded"),
            ExhaustionReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Declarative resource limits for one solving run.
///
/// A `Budget` is plain data: cloning it gives an identical set of
/// limits (and shares the same [`CancelToken`]). To *enforce* a budget,
/// create a [`Meter`] with [`Budget::meter`] and tick it through the
/// algorithm's hot loop.
///
/// ```
/// use cspdb_core::budget::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::new()
///     .with_deadline(Duration::from_millis(10))
///     .with_step_limit(1_000_000)
///     .with_tuple_limit(500_000);
/// let mut meter = budget.meter();
/// while meter.tick().is_ok() {
///     // one unit of work
///     # break;
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Maximum wall-clock time, measured from [`Budget::meter`].
    pub deadline: Option<Duration>,
    /// Maximum number of [`Meter::tick`] steps.
    pub step_limit: Option<u64>,
    /// Maximum number of tuples charged via [`Meter::charge_tuples`].
    pub tuple_limit: Option<u64>,
    /// Cooperative cancellation flag, if any.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// An unlimited budget: all limits absent. `Meter`s over it never
    /// trip (their fast path is still just a counter increment).
    pub fn new() -> Self {
        Self::default()
    }

    /// Alias for [`Budget::new`], reading better at call sites that
    /// explicitly want no governance.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps wall-clock time.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Caps the number of elementary steps (search nodes, arc
    /// revisions, fixpoint sweeps, DP cells, ...).
    pub fn with_step_limit(mut self, steps: u64) -> Self {
        self.step_limit = Some(steps);
        self
    }

    /// Caps the number of intermediate tuples materialised by
    /// join-style algorithms.
    pub fn with_tuple_limit(mut self, tuples: u64) -> Self {
        self.tuple_limit = Some(tuples);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// True if no limit of any kind is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.step_limit.is_none()
            && self.tuple_limit.is_none()
            && self.cancel.is_none()
    }

    /// A proportional slice of this budget for one phase of a larger
    /// computation: numeric limits are scaled by `num / den` (min 1 if
    /// the original was finite), the cancel token is shared.
    ///
    /// Used by tiered strategies to give each tier a fraction of the
    /// caller's budget while the overall deadline still applies.
    pub fn slice(&self, num: u64, den: u64) -> Budget {
        assert!(den > 0, "slice denominator must be positive");
        let scale = |v: u64| (v.saturating_mul(num) / den).max(1);
        Budget {
            deadline: self.deadline.map(|d| d.mul_f64(num as f64 / den as f64)),
            step_limit: self.step_limit.map(scale),
            tuple_limit: self.tuple_limit.map(scale),
            cancel: self.cancel.clone(),
        }
    }

    /// Starts enforcement: the returned meter's clock begins now.
    pub fn meter(&self) -> Meter {
        Meter {
            start: Instant::now(),
            deadline: self.deadline,
            step_limit: self.step_limit,
            tuple_limit: self.tuple_limit,
            cancel: self.cancel.clone(),
            steps: 0,
            tuples: 0,
            tripped: None,
        }
    }
}

/// Resources consumed by a (possibly exhausted) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Elementary steps ticked.
    pub steps: u64,
    /// Intermediate tuples charged.
    pub tuples: u64,
    /// Wall-clock time elapsed.
    pub elapsed: Duration,
}

impl std::fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} steps, {} tuples, {:.3} ms",
            self.steps,
            self.tuples,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

/// Stateful enforcer of one [`Budget`] over one run.
///
/// The fast path — [`tick`](Meter::tick) off a checkpoint boundary — is
/// an increment and a mask test. Every [`CHECK_INTERVAL`]-th tick also
/// reads the clock and the cancellation flag. Once a limit trips, the
/// meter latches the [`ExhaustionReason`] and every subsequent call
/// fails immediately, so deeply recursive algorithms unwind promptly.
#[derive(Debug, Clone)]
pub struct Meter {
    start: Instant,
    deadline: Option<Duration>,
    step_limit: Option<u64>,
    tuple_limit: Option<u64>,
    cancel: Option<CancelToken>,
    steps: u64,
    tuples: u64,
    tripped: Option<ExhaustionReason>,
}

impl Default for Meter {
    /// An unlimited meter (equivalent to `Budget::unlimited().meter()`).
    fn default() -> Self {
        Budget::unlimited().meter()
    }
}

impl Meter {
    /// Records one elementary step; errs if the budget is exhausted.
    ///
    /// Call this once per search node, arc revision, fixpoint
    /// iteration, DP cell, derived fact — whatever the algorithm's
    /// natural unit of work is.
    #[inline]
    pub fn tick(&mut self) -> std::result::Result<(), ExhaustionReason> {
        if let Some(reason) = self.tripped {
            return Err(reason);
        }
        self.steps += 1;
        if let Some(limit) = self.step_limit {
            if self.steps > limit {
                return Err(self.trip(ExhaustionReason::StepLimitExceeded));
            }
        }
        if self.steps & (CHECK_INTERVAL - 1) == 0 {
            self.checkpoint()
        } else {
            Ok(())
        }
    }

    /// Records `n` materialised tuples; errs if over the tuple cap.
    ///
    /// Unlike [`tick`](Meter::tick), the limit check is immediate: a
    /// single join step can materialise a huge batch, so amortising
    /// here would defeat the cap.
    #[inline]
    pub fn charge_tuples(&mut self, n: u64) -> std::result::Result<(), ExhaustionReason> {
        if let Some(reason) = self.tripped {
            return Err(reason);
        }
        self.tuples = self.tuples.saturating_add(n);
        if let Some(limit) = self.tuple_limit {
            if self.tuples > limit {
                return Err(self.trip(ExhaustionReason::TupleLimitExceeded));
            }
        }
        Ok(())
    }

    /// Forces the expensive checks (clock, cancellation) right now,
    /// regardless of the amortisation counter. Call before starting a
    /// phase whose unit of work is coarse.
    pub fn checkpoint(&mut self) -> std::result::Result<(), ExhaustionReason> {
        if let Some(reason) = self.tripped {
            return Err(reason);
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(self.trip(ExhaustionReason::Cancelled));
            }
        }
        if let Some(deadline) = self.deadline {
            if self.start.elapsed() >= deadline {
                return Err(self.trip(ExhaustionReason::DeadlineExceeded));
            }
        }
        Ok(())
    }

    fn trip(&mut self, reason: ExhaustionReason) -> ExhaustionReason {
        self.tripped = Some(reason);
        reason
    }

    /// The latched exhaustion reason, if any limit has tripped.
    pub fn exhausted(&self) -> Option<ExhaustionReason> {
        self.tripped
    }

    /// Resources consumed so far.
    pub fn usage(&self) -> ResourceUsage {
        ResourceUsage {
            steps: self.steps,
            tuples: self.tuples,
            elapsed: self.start.elapsed(),
        }
    }

    /// The tripped limit as a [`CoreError::ResourceExhausted`], for
    /// APIs surfacing `CoreError`.
    pub fn as_core_error(&self, reason: ExhaustionReason) -> CoreError {
        let (spent, limit) = match reason {
            ExhaustionReason::DeadlineExceeded => (
                self.start.elapsed().as_millis() as u64,
                self.deadline.map(|d| d.as_millis() as u64).unwrap_or(0),
            ),
            ExhaustionReason::StepLimitExceeded => (self.steps, self.step_limit.unwrap_or(0)),
            ExhaustionReason::TupleLimitExceeded => (self.tuples, self.tuple_limit.unwrap_or(0)),
            ExhaustionReason::Cancelled => (0, 0),
        };
        CoreError::ResourceExhausted {
            resource: reason.resource_name(),
            spent,
            limit,
        }
    }
}

/// Three-valued outcome of a budgeted decision procedure.
///
/// The invariant every budgeted entry point upholds: `Sat`/`Unsat` are
/// *definite* — they agree with what an unlimited run would return —
/// and resource exhaustion only ever widens the answer to `Unknown`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// A solution exists; the witness maps each variable to a value.
    Sat(Vec<u32>),
    /// Definitely no solution.
    Unsat,
    /// The run exhausted its budget before deciding.
    Unknown(ExhaustionReason),
}

impl Answer {
    /// True for [`Answer::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Answer::Sat(_))
    }

    /// True for [`Answer::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, Answer::Unsat)
    }

    /// True for [`Answer::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, Answer::Unknown(_))
    }

    /// True if the answer is definite (`Sat` or `Unsat`).
    pub fn is_decided(&self) -> bool {
        !self.is_unknown()
    }

    /// The witness, for [`Answer::Sat`].
    pub fn witness(&self) -> Option<&[u32]> {
        match self {
            Answer::Sat(w) => Some(w),
            _ => None,
        }
    }

    /// Checks agreement with a ground-truth boolean satisfiability:
    /// `Unknown` agrees with everything, `Sat`/`Unsat` must match.
    pub fn agrees_with(&self, ground_truth_sat: bool) -> bool {
        match self {
            Answer::Sat(_) => ground_truth_sat,
            Answer::Unsat => !ground_truth_sat,
            Answer::Unknown(_) => true,
        }
    }
}

impl std::fmt::Display for Answer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Answer::Sat(_) => write!(f, "sat"),
            Answer::Unsat => write!(f, "unsat"),
            Answer::Unknown(r) => write!(f, "unknown ({r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unlimited_meter_never_trips() {
        let mut m = Budget::unlimited().meter();
        for _ in 0..10_000 {
            assert!(m.tick().is_ok());
        }
        assert!(m.charge_tuples(u64::MAX).is_ok());
        assert_eq!(m.exhausted(), None);
        assert_eq!(m.usage().steps, 10_000);
    }

    #[test]
    fn step_limit_trips_exactly() {
        let mut m = Budget::new().with_step_limit(5).meter();
        for _ in 0..5 {
            assert!(m.tick().is_ok());
        }
        assert_eq!(m.tick(), Err(ExhaustionReason::StepLimitExceeded));
        // Latched: every later call fails instantly.
        assert_eq!(m.tick(), Err(ExhaustionReason::StepLimitExceeded));
        assert_eq!(m.charge_tuples(1), Err(ExhaustionReason::StepLimitExceeded));
    }

    #[test]
    fn tuple_limit_is_not_amortised() {
        let mut m = Budget::new().with_tuple_limit(100).meter();
        assert!(m.charge_tuples(100).is_ok());
        assert_eq!(
            m.charge_tuples(1),
            Err(ExhaustionReason::TupleLimitExceeded)
        );
    }

    #[test]
    fn deadline_trips_at_checkpoint() {
        let mut m = Budget::new()
            .with_deadline(Duration::from_millis(1))
            .meter();
        thread::sleep(Duration::from_millis(3));
        let mut tripped = false;
        // Amortisation: must trip within one CHECK_INTERVAL of ticks.
        for _ in 0..=CHECK_INTERVAL {
            if m.tick() == Err(ExhaustionReason::DeadlineExceeded) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn cancellation_observed_at_checkpoint() {
        let token = CancelToken::new();
        let mut m = Budget::new().with_cancel(token.clone()).meter();
        assert!(m.checkpoint().is_ok());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(m.checkpoint(), Err(ExhaustionReason::Cancelled));
        assert_eq!(m.tick(), Err(ExhaustionReason::Cancelled));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let budget = Budget::new().with_cancel(token.clone());
        let clone = budget.clone();
        token.cancel();
        let mut m = clone.meter();
        assert_eq!(m.checkpoint(), Err(ExhaustionReason::Cancelled));
    }

    #[test]
    fn slice_scales_limits_and_shares_cancel() {
        let token = CancelToken::new();
        let b = Budget::new()
            .with_deadline(Duration::from_millis(100))
            .with_step_limit(1000)
            .with_tuple_limit(10)
            .with_cancel(token.clone());
        let s = b.slice(1, 4);
        assert_eq!(s.deadline, Some(Duration::from_millis(25)));
        assert_eq!(s.step_limit, Some(250));
        assert_eq!(s.tuple_limit, Some(2));
        token.cancel();
        let mut m = s.meter();
        assert_eq!(m.checkpoint(), Err(ExhaustionReason::Cancelled));
        // Finite limits never scale to zero.
        assert_eq!(b.slice(1, 100_000).step_limit, Some(1));
    }

    #[test]
    fn usage_reports_consumption() {
        let mut m = Budget::unlimited().meter();
        for _ in 0..42 {
            m.tick().unwrap();
        }
        m.charge_tuples(7).unwrap();
        let u = m.usage();
        assert_eq!(u.steps, 42);
        assert_eq!(u.tuples, 7);
        assert!(u.to_string().contains("42 steps"));
    }

    #[test]
    fn core_error_conversion_carries_numbers() {
        let mut m = Budget::new().with_step_limit(3).meter();
        let reason = loop {
            if let Err(r) = m.tick() {
                break r;
            }
        };
        let err = m.as_core_error(reason);
        match err {
            CoreError::ResourceExhausted {
                resource,
                spent,
                limit,
            } => {
                assert_eq!(resource, "steps");
                assert_eq!(spent, 4);
                assert_eq!(limit, 3);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn answer_taxonomy_predicates() {
        let sat = Answer::Sat(vec![0, 1]);
        let unsat = Answer::Unsat;
        let unk = Answer::Unknown(ExhaustionReason::DeadlineExceeded);
        assert!(sat.is_sat() && sat.is_decided() && !sat.is_unknown());
        assert!(unsat.is_unsat() && unsat.is_decided());
        assert!(unk.is_unknown() && !unk.is_decided());
        assert_eq!(sat.witness(), Some(&[0u32, 1][..]));
        assert_eq!(unk.witness(), None);
        assert!(sat.agrees_with(true) && !sat.agrees_with(false));
        assert!(unsat.agrees_with(false) && !unsat.agrees_with(true));
        assert!(unk.agrees_with(true) && unk.agrees_with(false));
        assert_eq!(unk.to_string(), "unknown (deadline exceeded)");
    }
}
