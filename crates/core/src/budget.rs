//! Resource governance: budgets, cooperative cancellation, and the
//! `Sat / Unsat / Unknown` answer taxonomy.
//!
//! Every solver path in this workspace can run under a [`Budget`]: a
//! wall-clock deadline, a step (node/revision/iteration) limit, a cap on
//! intermediate tuples materialised by join-style algorithms, and a
//! cooperative [`CancelToken`]. Algorithms thread a [`Meter`] through
//! their hot loops and call [`Meter::tick`] once per unit of work; the
//! meter amortises the actual checks (clock reads, atomic loads) to one
//! in every [`CHECK_INTERVAL`] ticks, so governance costs a counter
//! increment on the fast path.
//!
//! When a limit trips, the algorithm unwinds with
//! [`ExhaustionReason`], and entry points report
//! [`Answer::Unknown`] rather than guessing. The contract everywhere is
//! **soundness under exhaustion**: a budgeted run may say `Unknown`, but
//! if it says `Sat` or `Unsat` that answer agrees with the unbudgeted
//! ground truth.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::CoreError;
use crate::faults::{FaultHandle, FaultPlan};
use crate::trace::{TraceSink, Tracer};

/// Number of [`Meter::tick`] calls between expensive checkpoint checks
/// (clock read, cancellation flag load). Power of two so the modulo is a
/// mask.
pub const CHECK_INTERVAL: u64 = 1024;

/// Shared flag for cooperative cancellation.
///
/// Clone the token, hand one copy to the solving thread's [`Budget`],
/// and call [`CancelToken::cancel`] from anywhere (another thread, a
/// signal handler, a UI callback). Running algorithms observe the flag
/// at their next checkpoint and unwind with
/// [`ExhaustionReason::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<CancelToken>>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks. Cancelling a
    /// [`child`](Self::child) does not cancel its parent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](Self::cancel) has been called on this token
    /// or on any ancestor it was [`child`](Self::child)-derived from.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed) || self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }

    /// Derives a linked token: cancelling the parent cancels the child,
    /// but cancelling the child leaves the parent (and its other
    /// children) running. Portfolio racing uses this — the race's
    /// "winner found" cancellation must not look like a caller abort.
    pub fn child(&self) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            parent: Some(Arc::new(self.clone())),
        }
    }
}

/// Which resource a budgeted run exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustionReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The step (search node / revision / iteration) limit was reached.
    StepLimitExceeded,
    /// The cap on materialised intermediate tuples was reached.
    TupleLimitExceeded,
    /// The [`CancelToken`] was triggered.
    Cancelled,
}

impl ExhaustionReason {
    /// Short resource name, as used in [`CoreError::ResourceExhausted`].
    pub fn resource_name(self) -> &'static str {
        match self {
            ExhaustionReason::DeadlineExceeded => "wall-clock",
            ExhaustionReason::StepLimitExceeded => "steps",
            ExhaustionReason::TupleLimitExceeded => "tuples",
            ExhaustionReason::Cancelled => "cancellation",
        }
    }
}

impl std::fmt::Display for ExhaustionReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustionReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            ExhaustionReason::StepLimitExceeded => write!(f, "step limit exceeded"),
            ExhaustionReason::TupleLimitExceeded => write!(f, "tuple limit exceeded"),
            ExhaustionReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Declarative resource limits for one solving run.
///
/// A `Budget` is plain data: cloning it gives an identical set of
/// limits (and shares the same [`CancelToken`]). To *enforce* a budget,
/// create a [`Meter`] with [`Budget::meter`] and tick it through the
/// algorithm's hot loop.
///
/// ```
/// use cspdb_core::budget::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::new()
///     .with_deadline(Duration::from_millis(10))
///     .with_step_limit(1_000_000)
///     .with_tuple_limit(500_000);
/// let mut meter = budget.meter();
/// while meter.tick().is_ok() {
///     // one unit of work
///     # break;
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Maximum wall-clock time, measured from [`Budget::meter`].
    pub deadline: Option<Duration>,
    /// Maximum number of [`Meter::tick`] steps.
    pub step_limit: Option<u64>,
    /// Maximum number of tuples charged via [`Meter::charge_tuples`].
    pub tuple_limit: Option<u64>,
    /// Cooperative cancellation flag, if any.
    pub cancel: Option<CancelToken>,
    /// Telemetry handle copied into every meter created from this
    /// budget. Disabled by default; see [`Budget::with_trace`].
    trace: Tracer,
    /// Fault-injection handle copied into every meter created from
    /// this budget (slow-down faults apply at checkpoints) and read by
    /// fault-aware subsystems like the service. Inert by default; see
    /// [`Budget::with_faults`].
    faults: FaultHandle,
}

impl Budget {
    /// An unlimited budget: all limits absent. `Meter`s over it never
    /// trip (their fast path is still just a counter increment).
    pub fn new() -> Self {
        Self::default()
    }

    /// Alias for [`Budget::new`], reading better at call sites that
    /// explicitly want no governance.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps wall-clock time.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Caps the number of elementary steps (search nodes, arc
    /// revisions, fixpoint sweeps, DP cells, ...).
    pub fn with_step_limit(mut self, steps: u64) -> Self {
        self.step_limit = Some(steps);
        self
    }

    /// Caps the number of intermediate tuples materialised by
    /// join-style algorithms.
    pub fn with_tuple_limit(mut self, tuples: u64) -> Self {
        self.tuple_limit = Some(tuples);
        self
    }

    /// Attaches a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a trace sink: every meter created from this budget
    /// emits [`crate::trace::TraceEvent`]s to it. A sink that reports
    /// itself disabled (e.g. [`crate::trace::NullSink`]) keeps the
    /// tracer inert.
    pub fn with_trace(self, sink: Arc<dyn TraceSink>) -> Self {
        self.with_tracer(Tracer::new(sink))
    }

    /// Attaches an already-built [`Tracer`] (shares its sink).
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.trace = tracer;
        self
    }

    /// The budget's tracer (disabled unless a sink was attached).
    pub fn tracer(&self) -> &Tracer {
        &self.trace
    }

    /// Arms a fault-injection plan: every meter created from this
    /// budget applies slow-down faults at its checkpoints, and
    /// fault-aware subsystems (the service) consult the handle at
    /// their own sites. An empty plan stays inert.
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        self.with_fault_handle(FaultHandle::new(plan))
    }

    /// Attaches an already-armed [`FaultHandle`] (shares its counters).
    pub fn with_fault_handle(mut self, handle: FaultHandle) -> Self {
        self.faults = handle;
        self
    }

    /// The budget's fault handle (inert unless a plan was armed).
    pub fn faults(&self) -> &FaultHandle {
        &self.faults
    }

    /// True if no limit of any kind is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.step_limit.is_none()
            && self.tuple_limit.is_none()
            && self.cancel.is_none()
    }

    /// A proportional slice of this budget for one phase of a larger
    /// computation: numeric limits are scaled by `num / den` (min 1 if
    /// the original was finite), the cancel token and the tracer are
    /// shared.
    ///
    /// Used by tiered strategies to give each tier a fraction of the
    /// caller's budget while the overall deadline still applies.
    ///
    /// A zero-width slice (`num == 0`) exhausts immediately: its meters
    /// trip on the first tick or checkpoint regardless of whether the
    /// parent was limited. (Previously `slice(0, den)` of an unlimited
    /// parent silently produced another *unlimited* budget, because
    /// scaling only applied to limits that were present.)
    pub fn slice(&self, num: u64, den: u64) -> Budget {
        assert!(den > 0, "slice denominator must be positive");
        if num == 0 {
            return Budget {
                deadline: Some(Duration::ZERO),
                step_limit: Some(0),
                tuple_limit: Some(0),
                cancel: self.cancel.clone(),
                trace: self.trace.clone(),
                faults: self.faults.clone(),
            };
        }
        let scale = |v: u64| (v.saturating_mul(num) / den).max(1);
        Budget {
            deadline: self.deadline.map(|d| d.mul_f64(num as f64 / den as f64)),
            step_limit: self.step_limit.map(scale),
            tuple_limit: self.tuple_limit.map(scale),
            cancel: self.cancel.clone(),
            trace: self.trace.clone(),
            faults: self.faults.clone(),
        }
    }

    /// Starts enforcement: the returned meter's clock begins now.
    pub fn meter(&self) -> Meter {
        Meter {
            start: Instant::now(),
            deadline: self.deadline,
            step_limit: self.step_limit,
            tuple_limit: self.tuple_limit,
            cancel: self.cancel.clone(),
            trace: self.trace.clone(),
            faults: self.faults.clone(),
            steps: 0,
            tuples: 0,
            tripped: None,
        }
    }

    /// Starts enforcement shared across threads: the returned
    /// [`SharedMeter`] draws every clone's steps and tuples from one
    /// pair of atomic counters, so a parallel algorithm's *total* work
    /// is bounded, not each worker's.
    pub fn shared_meter(&self) -> SharedMeter {
        SharedMeter {
            inner: Arc::new(SharedMeterState {
                start: Instant::now(),
                deadline: self.deadline,
                step_limit: self.step_limit,
                tuple_limit: self.tuple_limit,
                cancel: self.cancel.clone(),
                trace: self.trace.clone(),
                faults: self.faults.clone(),
                steps: AtomicU64::new(0),
                tuples: AtomicU64::new(0),
                tripped: AtomicU8::new(TRIP_NONE),
            }),
        }
    }
}

/// Resources consumed by a (possibly exhausted) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Elementary steps ticked.
    pub steps: u64,
    /// Intermediate tuples charged.
    pub tuples: u64,
    /// Wall-clock time elapsed.
    pub elapsed: Duration,
}

impl std::fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} steps, {} tuples, {:.3} ms",
            self.steps,
            self.tuples,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

/// Stateful enforcer of one [`Budget`] over one run.
///
/// The fast path — [`tick`](Meter::tick) off a checkpoint boundary — is
/// an increment and a mask test. Every [`CHECK_INTERVAL`]-th tick also
/// reads the clock and the cancellation flag. Once a limit trips, the
/// meter latches the [`ExhaustionReason`] and every subsequent call
/// fails immediately, so deeply recursive algorithms unwind promptly.
#[derive(Debug, Clone)]
pub struct Meter {
    start: Instant,
    deadline: Option<Duration>,
    step_limit: Option<u64>,
    tuple_limit: Option<u64>,
    cancel: Option<CancelToken>,
    trace: Tracer,
    faults: FaultHandle,
    steps: u64,
    tuples: u64,
    tripped: Option<ExhaustionReason>,
}

impl Default for Meter {
    /// An unlimited meter (equivalent to `Budget::unlimited().meter()`).
    fn default() -> Self {
        Budget::unlimited().meter()
    }
}

impl Meter {
    /// Records one elementary step; errs if the budget is exhausted.
    ///
    /// Call this once per search node, arc revision, fixpoint
    /// iteration, DP cell, derived fact — whatever the algorithm's
    /// natural unit of work is.
    #[inline]
    pub fn tick(&mut self) -> std::result::Result<(), ExhaustionReason> {
        if let Some(reason) = self.tripped {
            return Err(reason);
        }
        self.steps += 1;
        if let Some(limit) = self.step_limit {
            if self.steps > limit {
                return Err(self.trip(ExhaustionReason::StepLimitExceeded));
            }
        }
        if self.steps & (CHECK_INTERVAL - 1) == 0 {
            self.checkpoint()
        } else {
            Ok(())
        }
    }

    /// Records `n` materialised tuples; errs if over the tuple cap.
    ///
    /// Unlike [`tick`](Meter::tick), the limit check is immediate: a
    /// single join step can materialise a huge batch, so amortising
    /// here would defeat the cap. The *expensive* checks (deadline,
    /// cancellation) are still amortised, at the same cadence as
    /// `tick`: once per [`CHECK_INTERVAL`] tuples crossed. Without
    /// this, a skewed join whose inner loop only charges tuples — one
    /// outer row matching millions — would never observe a deadline or
    /// a cancellation when no tuple cap is set.
    #[inline]
    pub fn charge_tuples(&mut self, n: u64) -> std::result::Result<(), ExhaustionReason> {
        if let Some(reason) = self.tripped {
            return Err(reason);
        }
        let before = self.tuples;
        self.tuples = before.saturating_add(n);
        if let Some(limit) = self.tuple_limit {
            if self.tuples > limit {
                return Err(self.trip(ExhaustionReason::TupleLimitExceeded));
            }
        }
        if before / CHECK_INTERVAL != self.tuples / CHECK_INTERVAL {
            self.checkpoint()
        } else {
            Ok(())
        }
    }

    /// Forces the expensive checks (clock, cancellation) right now,
    /// regardless of the amortisation counter. Call before starting a
    /// phase whose unit of work is coarse.
    pub fn checkpoint(&mut self) -> std::result::Result<(), ExhaustionReason> {
        if let Some(reason) = self.tripped {
            return Err(reason);
        }
        // Slow-down faults strike here, where real stalls are observed:
        // amortised to checkpoint cadence, inert = one branch.
        self.faults.maybe_slow_down();
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(self.trip(ExhaustionReason::Cancelled));
            }
        }
        if let Some(deadline) = self.deadline {
            if self.start.elapsed() >= deadline {
                return Err(self.trip(ExhaustionReason::DeadlineExceeded));
            }
        }
        Ok(())
    }

    fn trip(&mut self, reason: ExhaustionReason) -> ExhaustionReason {
        self.tripped = Some(reason);
        reason
    }

    /// The latched exhaustion reason, if any limit has tripped.
    pub fn exhausted(&self) -> Option<ExhaustionReason> {
        self.tripped
    }

    /// The tracer carried from the originating [`Budget`].
    #[inline]
    pub fn tracer(&self) -> &Tracer {
        &self.trace
    }

    /// Resources consumed so far.
    pub fn usage(&self) -> ResourceUsage {
        ResourceUsage {
            steps: self.steps,
            tuples: self.tuples,
            elapsed: self.start.elapsed(),
        }
    }

    /// The tripped limit as a [`CoreError::ResourceExhausted`], for
    /// APIs surfacing `CoreError`.
    pub fn as_core_error(&self, reason: ExhaustionReason) -> CoreError {
        let (spent, limit) = match reason {
            ExhaustionReason::DeadlineExceeded => (
                self.start.elapsed().as_millis() as u64,
                self.deadline.map(|d| d.as_millis() as u64).unwrap_or(0),
            ),
            ExhaustionReason::StepLimitExceeded => (self.steps, self.step_limit.unwrap_or(0)),
            ExhaustionReason::TupleLimitExceeded => (self.tuples, self.tuple_limit.unwrap_or(0)),
            ExhaustionReason::Cancelled => (0, 0),
        };
        CoreError::ResourceExhausted {
            resource: reason.resource_name(),
            spent,
            limit,
        }
    }
}

const TRIP_NONE: u8 = 0;

fn reason_code(reason: ExhaustionReason) -> u8 {
    match reason {
        ExhaustionReason::DeadlineExceeded => 1,
        ExhaustionReason::StepLimitExceeded => 2,
        ExhaustionReason::TupleLimitExceeded => 3,
        ExhaustionReason::Cancelled => 4,
    }
}

fn decode_reason(code: u8) -> Option<ExhaustionReason> {
    match code {
        1 => Some(ExhaustionReason::DeadlineExceeded),
        2 => Some(ExhaustionReason::StepLimitExceeded),
        3 => Some(ExhaustionReason::TupleLimitExceeded),
        4 => Some(ExhaustionReason::Cancelled),
        _ => None,
    }
}

/// [`Meter`]'s thread-shared counterpart: an `Arc`-shared enforcer whose
/// step and tuple counters are atomics, so any number of worker threads
/// can charge one budget concurrently. Cloning is cheap (one `Arc`
/// bump) and every clone observes the same counters and the same
/// latched trip, which is what makes cancellation propagate: the first
/// worker to trip (or an external [`CancelToken::cancel`]) stops every
/// other worker at its next checkpoint.
///
/// The fast path is one `fetch_add(Relaxed)`; the clock and the
/// cancellation flag are read only when the *global* step count crosses
/// a [`CHECK_INTERVAL`] boundary, so the amortisation contract of
/// [`Meter`] carries over: a limit is observed within at most
/// `CHECK_INTERVAL` units of total work across all workers.
#[derive(Debug, Clone)]
pub struct SharedMeter {
    inner: Arc<SharedMeterState>,
}

#[derive(Debug)]
struct SharedMeterState {
    start: Instant,
    deadline: Option<Duration>,
    step_limit: Option<u64>,
    tuple_limit: Option<u64>,
    cancel: Option<CancelToken>,
    trace: Tracer,
    faults: FaultHandle,
    steps: AtomicU64,
    tuples: AtomicU64,
    tripped: AtomicU8,
}

impl Default for SharedMeter {
    /// An unlimited shared meter
    /// (equivalent to `Budget::unlimited().shared_meter()`).
    fn default() -> Self {
        Budget::unlimited().shared_meter()
    }
}

impl SharedMeter {
    /// Records one elementary step; errs once the budget is exhausted.
    /// Safe to call from any number of threads concurrently.
    #[inline]
    pub fn tick(&self) -> std::result::Result<(), ExhaustionReason> {
        if let Some(reason) = self.exhausted() {
            return Err(reason);
        }
        let steps = self.inner.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.inner.step_limit {
            if steps > limit {
                return Err(self.trip(ExhaustionReason::StepLimitExceeded));
            }
        }
        if steps & (CHECK_INTERVAL - 1) == 0 {
            self.checkpoint()
        } else {
            Ok(())
        }
    }

    /// Records `n` materialised tuples; the tuple-cap check is
    /// immediate, the deadline/cancellation check amortised (same
    /// contract as [`Meter::charge_tuples`]).
    #[inline]
    pub fn charge_tuples(&self, n: u64) -> std::result::Result<(), ExhaustionReason> {
        if let Some(reason) = self.exhausted() {
            return Err(reason);
        }
        let before = self
            .inner
            .tuples
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some(t.saturating_add(n))
            })
            .expect("fetch_update closure never returns None");
        let after = before.saturating_add(n);
        if let Some(limit) = self.inner.tuple_limit {
            if after > limit {
                return Err(self.trip(ExhaustionReason::TupleLimitExceeded));
            }
        }
        if before / CHECK_INTERVAL != after / CHECK_INTERVAL {
            self.checkpoint()
        } else {
            Ok(())
        }
    }

    /// Forces the expensive checks (clock, cancellation) right now.
    pub fn checkpoint(&self) -> std::result::Result<(), ExhaustionReason> {
        if let Some(reason) = self.exhausted() {
            return Err(reason);
        }
        self.inner.faults.maybe_slow_down();
        if let Some(token) = &self.inner.cancel {
            if token.is_cancelled() {
                return Err(self.trip(ExhaustionReason::Cancelled));
            }
        }
        if let Some(deadline) = self.inner.deadline {
            if self.inner.start.elapsed() >= deadline {
                return Err(self.trip(ExhaustionReason::DeadlineExceeded));
            }
        }
        Ok(())
    }

    /// Latches `reason`; the first trip wins and every clone observes it.
    fn trip(&self, reason: ExhaustionReason) -> ExhaustionReason {
        match self.inner.tripped.compare_exchange(
            TRIP_NONE,
            reason_code(reason),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => reason,
            Err(prior) => decode_reason(prior).expect("latched code decodes"),
        }
    }

    /// The latched exhaustion reason, if any limit has tripped.
    pub fn exhausted(&self) -> Option<ExhaustionReason> {
        decode_reason(self.inner.tripped.load(Ordering::Relaxed))
    }

    /// The tracer carried from the originating [`Budget`]; shared by
    /// every clone, so parallel workers emit to one sink.
    #[inline]
    pub fn tracer(&self) -> &Tracer {
        &self.inner.trace
    }

    /// Resources consumed so far, totalled across every clone.
    pub fn usage(&self) -> ResourceUsage {
        ResourceUsage {
            steps: self.inner.steps.load(Ordering::Relaxed),
            tuples: self.inner.tuples.load(Ordering::Relaxed),
            elapsed: self.inner.start.elapsed(),
        }
    }
}

/// The metering operations shared by [`Meter`] (single-threaded, plain
/// counters) and [`SharedMeter`] (thread-shared, atomic counters).
///
/// Algorithms generic over `M: Metering` run unchanged sequentially or
/// inside a parallel worker; the parallel caller hands each worker a
/// clone of one `SharedMeter` so the *combined* work stays within one
/// budget.
pub trait Metering {
    /// Records one elementary step; errs once the budget is exhausted.
    fn tick(&mut self) -> std::result::Result<(), ExhaustionReason>;
    /// Records `n` materialised tuples.
    fn charge_tuples(&mut self, n: u64) -> std::result::Result<(), ExhaustionReason>;
    /// Forces the expensive checks (clock, cancellation) right now.
    fn checkpoint(&mut self) -> std::result::Result<(), ExhaustionReason>;
    /// Resources consumed so far.
    fn usage(&self) -> ResourceUsage;
    /// The latched exhaustion reason, if any limit has tripped.
    fn exhausted(&self) -> Option<ExhaustionReason>;
    /// The telemetry handle carried alongside the meter; disabled
    /// (a single-branch no-op) unless the originating [`Budget`] had a
    /// sink attached via [`Budget::with_trace`].
    fn tracer(&self) -> &Tracer;
}

impl Metering for Meter {
    fn tick(&mut self) -> std::result::Result<(), ExhaustionReason> {
        Meter::tick(self)
    }

    fn charge_tuples(&mut self, n: u64) -> std::result::Result<(), ExhaustionReason> {
        Meter::charge_tuples(self, n)
    }

    fn checkpoint(&mut self) -> std::result::Result<(), ExhaustionReason> {
        Meter::checkpoint(self)
    }

    fn usage(&self) -> ResourceUsage {
        Meter::usage(self)
    }

    fn exhausted(&self) -> Option<ExhaustionReason> {
        Meter::exhausted(self)
    }

    fn tracer(&self) -> &Tracer {
        Meter::tracer(self)
    }
}

impl Metering for SharedMeter {
    fn tick(&mut self) -> std::result::Result<(), ExhaustionReason> {
        SharedMeter::tick(self)
    }

    fn charge_tuples(&mut self, n: u64) -> std::result::Result<(), ExhaustionReason> {
        SharedMeter::charge_tuples(self, n)
    }

    fn checkpoint(&mut self) -> std::result::Result<(), ExhaustionReason> {
        SharedMeter::checkpoint(self)
    }

    fn usage(&self) -> ResourceUsage {
        SharedMeter::usage(self)
    }

    fn exhausted(&self) -> Option<ExhaustionReason> {
        SharedMeter::exhausted(self)
    }

    fn tracer(&self) -> &Tracer {
        SharedMeter::tracer(self)
    }
}

/// Three-valued outcome of a budgeted decision procedure.
///
/// The invariant every budgeted entry point upholds: `Sat`/`Unsat` are
/// *definite* — they agree with what an unlimited run would return —
/// and resource exhaustion only ever widens the answer to `Unknown`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// A solution exists; the witness maps each variable to a value.
    Sat(Vec<u32>),
    /// Definitely no solution.
    Unsat,
    /// The run exhausted its budget before deciding.
    Unknown(ExhaustionReason),
}

impl Answer {
    /// True for [`Answer::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, Answer::Sat(_))
    }

    /// True for [`Answer::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, Answer::Unsat)
    }

    /// True for [`Answer::Unknown`].
    pub fn is_unknown(&self) -> bool {
        matches!(self, Answer::Unknown(_))
    }

    /// True if the answer is definite (`Sat` or `Unsat`).
    pub fn is_decided(&self) -> bool {
        !self.is_unknown()
    }

    /// The witness, for [`Answer::Sat`].
    pub fn witness(&self) -> Option<&[u32]> {
        match self {
            Answer::Sat(w) => Some(w),
            _ => None,
        }
    }

    /// Checks agreement with a ground-truth boolean satisfiability:
    /// `Unknown` agrees with everything, `Sat`/`Unsat` must match.
    pub fn agrees_with(&self, ground_truth_sat: bool) -> bool {
        match self {
            Answer::Sat(_) => ground_truth_sat,
            Answer::Unsat => !ground_truth_sat,
            Answer::Unknown(_) => true,
        }
    }
}

impl std::fmt::Display for Answer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Answer::Sat(_) => write!(f, "sat"),
            Answer::Unsat => write!(f, "unsat"),
            Answer::Unknown(r) => write!(f, "unknown ({r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unlimited_meter_never_trips() {
        let mut m = Budget::unlimited().meter();
        for _ in 0..10_000 {
            assert!(m.tick().is_ok());
        }
        assert!(m.charge_tuples(u64::MAX).is_ok());
        assert_eq!(m.exhausted(), None);
        assert_eq!(m.usage().steps, 10_000);
    }

    #[test]
    fn step_limit_trips_exactly() {
        let mut m = Budget::new().with_step_limit(5).meter();
        for _ in 0..5 {
            assert!(m.tick().is_ok());
        }
        assert_eq!(m.tick(), Err(ExhaustionReason::StepLimitExceeded));
        // Latched: every later call fails instantly.
        assert_eq!(m.tick(), Err(ExhaustionReason::StepLimitExceeded));
        assert_eq!(m.charge_tuples(1), Err(ExhaustionReason::StepLimitExceeded));
    }

    #[test]
    fn tuple_limit_is_not_amortised() {
        let mut m = Budget::new().with_tuple_limit(100).meter();
        assert!(m.charge_tuples(100).is_ok());
        assert_eq!(
            m.charge_tuples(1),
            Err(ExhaustionReason::TupleLimitExceeded)
        );
    }

    #[test]
    fn deadline_trips_at_checkpoint() {
        let mut m = Budget::new()
            .with_deadline(Duration::from_millis(1))
            .meter();
        thread::sleep(Duration::from_millis(3));
        let mut tripped = false;
        // Amortisation: must trip within one CHECK_INTERVAL of ticks.
        for _ in 0..=CHECK_INTERVAL {
            if m.tick() == Err(ExhaustionReason::DeadlineExceeded) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn cancellation_observed_at_checkpoint() {
        let token = CancelToken::new();
        let mut m = Budget::new().with_cancel(token.clone()).meter();
        assert!(m.checkpoint().is_ok());
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(m.checkpoint(), Err(ExhaustionReason::Cancelled));
        assert_eq!(m.tick(), Err(ExhaustionReason::Cancelled));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let budget = Budget::new().with_cancel(token.clone());
        let clone = budget.clone();
        token.cancel();
        let mut m = clone.meter();
        assert_eq!(m.checkpoint(), Err(ExhaustionReason::Cancelled));
    }

    #[test]
    fn slice_scales_limits_and_shares_cancel() {
        let token = CancelToken::new();
        let b = Budget::new()
            .with_deadline(Duration::from_millis(100))
            .with_step_limit(1000)
            .with_tuple_limit(10)
            .with_cancel(token.clone());
        let s = b.slice(1, 4);
        assert_eq!(s.deadline, Some(Duration::from_millis(25)));
        assert_eq!(s.step_limit, Some(250));
        assert_eq!(s.tuple_limit, Some(2));
        token.cancel();
        let mut m = s.meter();
        assert_eq!(m.checkpoint(), Err(ExhaustionReason::Cancelled));
        // Finite limits never scale to zero.
        assert_eq!(b.slice(1, 100_000).step_limit, Some(1));
    }

    #[test]
    fn zero_width_slice_exhausts_immediately() {
        // Regression: slice(0, den) of an *unlimited* parent used to
        // produce another unlimited budget (scaling only applied to
        // limits that were present). A zero-width slice must exhaust
        // on the very first unit of work.
        let s = Budget::unlimited().slice(0, 4);
        assert_eq!(s.step_limit, Some(0));
        assert_eq!(s.tuple_limit, Some(0));
        assert_eq!(s.deadline, Some(Duration::ZERO));
        let mut m = s.meter();
        assert!(m.tick().is_err());
        let mut m2 = s.meter();
        assert!(m2.charge_tuples(1).is_err());
        let m3 = s.meter();
        assert!(m3.clone().checkpoint().is_err());
        // Same for a limited parent.
        let s = Budget::new().with_step_limit(1000).slice(0, 4);
        assert!(s.meter().tick().is_err());
        // The cancel token is still shared through a zero slice.
        let token = CancelToken::new();
        let s = Budget::new().with_cancel(token.clone()).slice(0, 2);
        assert!(s.cancel.is_some());
    }

    #[test]
    fn usage_reports_consumption() {
        let mut m = Budget::unlimited().meter();
        for _ in 0..42 {
            m.tick().unwrap();
        }
        m.charge_tuples(7).unwrap();
        let u = m.usage();
        assert_eq!(u.steps, 42);
        assert_eq!(u.tuples, 7);
        assert!(u.to_string().contains("42 steps"));
    }

    #[test]
    fn core_error_conversion_carries_numbers() {
        let mut m = Budget::new().with_step_limit(3).meter();
        let reason = loop {
            if let Err(r) = m.tick() {
                break r;
            }
        };
        let err = m.as_core_error(reason);
        match err {
            CoreError::ResourceExhausted {
                resource,
                spent,
                limit,
            } => {
                assert_eq!(resource, "steps");
                assert_eq!(spent, 4);
                assert_eq!(limit, 3);
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn charge_tuples_observes_deadline_without_tuple_cap() {
        // Regression: a skewed join whose inner loop only charges
        // tuples (no ticks) must still observe the deadline, even when
        // no tuple cap is set.
        let mut m = Budget::new()
            .with_deadline(Duration::from_millis(1))
            .meter();
        thread::sleep(Duration::from_millis(3));
        let mut tripped = false;
        for _ in 0..=CHECK_INTERVAL {
            if m.charge_tuples(1) == Err(ExhaustionReason::DeadlineExceeded) {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "deadline never observed through charge_tuples");
    }

    #[test]
    fn charge_tuples_observes_cancellation_mid_batch() {
        let token = CancelToken::new();
        let mut m = Budget::new().with_cancel(token.clone()).meter();
        token.cancel();
        // A single huge batch crosses a CHECK_INTERVAL boundary, so the
        // cancellation is observed on this very call.
        assert_eq!(
            m.charge_tuples(10 * CHECK_INTERVAL),
            Err(ExhaustionReason::Cancelled)
        );
    }

    #[test]
    fn child_token_links_one_way() {
        let parent = CancelToken::new();
        let child = parent.child();
        // Child cancellation does not propagate up.
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled());
        // Parent cancellation propagates down, even to other children.
        let second = parent.child();
        parent.cancel();
        assert!(second.is_cancelled());
    }

    #[test]
    fn shared_meter_counts_across_threads() {
        let m = Budget::unlimited().shared_meter();
        thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.tick().unwrap();
                        m.charge_tuples(2).unwrap();
                    }
                });
            }
        });
        let u = m.usage();
        assert_eq!(u.steps, 4000);
        assert_eq!(u.tuples, 8000);
        assert_eq!(m.exhausted(), None);
    }

    #[test]
    fn shared_meter_step_limit_is_global() {
        // Four workers share a 2000-step budget: the limit bounds their
        // *sum*, and every worker observes the latched trip.
        let m = Budget::new().with_step_limit(2000).shared_meter();
        let mut reasons = Vec::new();
        thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let m = m.clone();
                    s.spawn(move || {
                        for _ in 0..1000 {
                            if let Err(r) = m.tick() {
                                return Some(r);
                            }
                        }
                        None
                    })
                })
                .collect();
            for h in handles {
                reasons.push(h.join().unwrap());
            }
        });
        let tripped = reasons.iter().filter(|r| r.is_some()).count();
        assert!(tripped >= 2, "at least half the workers must trip");
        for r in reasons.into_iter().flatten() {
            assert_eq!(r, ExhaustionReason::StepLimitExceeded);
        }
        assert_eq!(m.exhausted(), Some(ExhaustionReason::StepLimitExceeded));
        assert!(m.usage().steps <= 2000 + 4, "overshoot bounded by workers");
    }

    #[test]
    fn shared_meter_first_trip_wins() {
        let m = Budget::new()
            .with_step_limit(1)
            .with_tuple_limit(1)
            .shared_meter();
        m.tick().unwrap();
        assert_eq!(m.tick(), Err(ExhaustionReason::StepLimitExceeded));
        // A later, different violation reports the latched reason.
        assert_eq!(
            m.charge_tuples(100),
            Err(ExhaustionReason::StepLimitExceeded)
        );
    }

    #[test]
    fn shared_meter_cancellation_stops_workers_promptly() {
        // Bounded-latency cancellation: once the token fires, every
        // worker unwinds within one CHECK_INTERVAL of further ticks.
        let token = CancelToken::new();
        let m = Budget::new().with_cancel(token.clone()).shared_meter();
        thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let m = m.clone();
                    s.spawn(move || {
                        let mut ticks_after_latch = 0u64;
                        loop {
                            match m.tick() {
                                Err(r) => return (r, ticks_after_latch),
                                Ok(()) if m.exhausted().is_some() => ticks_after_latch += 1,
                                Ok(()) => {}
                            }
                        }
                    })
                })
                .collect();
            token.cancel();
            for h in handles {
                let (reason, after_latch) = h.join().unwrap();
                assert_eq!(reason, ExhaustionReason::Cancelled);
                // A tick may pass its entry check concurrently with the
                // latch, but the very next call must fail.
                assert!(after_latch <= 1, "latched trip must fail the next call");
            }
        });
    }

    #[test]
    fn shared_meter_deadline_trips() {
        let m = Budget::new()
            .with_deadline(Duration::from_millis(1))
            .shared_meter();
        thread::sleep(Duration::from_millis(3));
        let mut tripped = false;
        for _ in 0..=CHECK_INTERVAL {
            if m.tick() == Err(ExhaustionReason::DeadlineExceeded) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn metering_trait_unifies_both_meters() {
        fn burn<M: Metering>(meter: &mut M) -> std::result::Result<u64, ExhaustionReason> {
            for _ in 0..10 {
                meter.tick()?;
                meter.charge_tuples(1)?;
            }
            Ok(meter.usage().steps)
        }
        let mut plain = Budget::unlimited().meter();
        let mut shared = Budget::unlimited().shared_meter();
        assert_eq!(burn(&mut plain), Ok(10));
        assert_eq!(burn(&mut shared), Ok(10));
        let mut capped = Budget::new().with_step_limit(5).shared_meter();
        assert_eq!(burn(&mut capped), Err(ExhaustionReason::StepLimitExceeded));
    }

    #[test]
    fn faults_ride_the_budget_like_the_tracer() {
        use crate::faults::{FaultPlan, FaultSite};
        let b = Budget::new().with_faults(
            FaultPlan::none()
                .with_seed(1)
                .with_period(FaultSite::QueueFull, 3),
        );
        assert!(b.faults().is_active());
        // Slices share the armed injector: counters are one pool.
        let s = b.slice(1, 2);
        assert!(s.faults().is_active());
        for _ in 0..3 {
            s.faults().fire(FaultSite::QueueFull);
        }
        assert_eq!(b.faults().injected(FaultSite::QueueFull), 1);
        // Default budgets stay inert, and empty plans collapse to inert.
        assert!(!Budget::unlimited().faults().is_active());
        assert!(!Budget::new()
            .with_faults(FaultPlan::none())
            .faults()
            .is_active());
    }

    #[test]
    fn slow_down_fault_applies_at_checkpoints() {
        use crate::faults::{FaultPlan, FaultSite};
        let plan = FaultPlan::none()
            .with_period(FaultSite::SlowDown, 1)
            .with_slow_down(Duration::from_millis(5));
        let mut m = Budget::new().with_faults(plan.clone()).meter();
        let t = Instant::now();
        m.checkpoint().unwrap();
        assert!(
            t.elapsed() >= Duration::from_millis(5),
            "checkpoint must observe the injected stall"
        );
        let shared = Budget::new().with_faults(plan).shared_meter();
        let t = Instant::now();
        shared.checkpoint().unwrap();
        assert!(t.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn answer_taxonomy_predicates() {
        let sat = Answer::Sat(vec![0, 1]);
        let unsat = Answer::Unsat;
        let unk = Answer::Unknown(ExhaustionReason::DeadlineExceeded);
        assert!(sat.is_sat() && sat.is_decided() && !sat.is_unknown());
        assert!(unsat.is_unsat() && unsat.is_decided());
        assert!(unk.is_unknown() && !unk.is_decided());
        assert_eq!(sat.witness(), Some(&[0u32, 1][..]));
        assert_eq!(unk.witness(), None);
        assert!(sat.agrees_with(true) && !sat.agrees_with(false));
        assert!(unsat.agrees_with(false) && !unsat.agrees_with(true));
        assert!(unk.agrees_with(true) && unk.agrees_with(false));
        assert_eq!(unk.to_string(), "unknown (deadline exceeded)");
    }
}
