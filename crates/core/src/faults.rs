//! Deterministic fault injection: a seeded [`FaultPlan`] compiled into
//! a [`FaultHandle`] that rides on every [`Budget`](crate::Budget)
//! exactly like the [`Tracer`](crate::trace::Tracer) does.
//!
//! Hardened code asks the handle "should fault X fire here?" at the
//! places where real-world failures strike — worker dispatch (panics),
//! lock acquisition (poisoning), budget checkpoints (slow-downs),
//! admission (queue-full forcing), the wire (truncation/corruption) —
//! and the handle answers from a *deterministic* per-site schedule:
//! site `s` fires on the `k`-th check iff `k ≡ phase(seed, s) (mod
//! period(s))`. The schedule depends only on the seed and on how many
//! times the site has been checked, never on wall clock or thread
//! identity, so a fault-laden run is reproducible enough for CI to
//! assert on it (the *assignment* of fires to threads may vary, the
//! multiset of fires per site does not).
//!
//! **Cost model.** The default handle is *inert*: every
//! [`FaultHandle::fire`] is a single branch on an `Option` that is
//! `None` — no atomics touched, nothing allocated — mirroring the
//! disabled-[`Tracer`] contract. Production builds pay one predictable
//! branch per site; the full machinery only materialises when a plan is
//! parsed from `--faults=SPEC`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where in the stack a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Panic inside a worker's request execution.
    WorkerPanic,
    /// Deliberately poison a shared lock (panic while holding it).
    LockPoison,
    /// Sleep at a budget checkpoint, simulating a stalled worker.
    SlowDown,
    /// Truncate a wire request line mid-byte.
    WireTruncate,
    /// Corrupt bytes of a wire request line.
    WireCorrupt,
    /// Treat a lane queue as full regardless of its real occupancy.
    QueueFull,
}

/// Number of distinct [`FaultSite`]s.
const SITES: usize = 6;

/// Independent deterministic sub-streams per site, so a sharded
/// consumer (e.g. one stream per worker lane) can guarantee every
/// shard sees its share of fires. Stream 0 is the default.
pub const FAULT_STREAMS: usize = 4;

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::WorkerPanic => 0,
            FaultSite::LockPoison => 1,
            FaultSite::SlowDown => 2,
            FaultSite::WireTruncate => 3,
            FaultSite::WireCorrupt => 4,
            FaultSite::QueueFull => 5,
        }
    }

    /// Stable lower-snake name (used in `--faults=SPEC` and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "panic",
            FaultSite::LockPoison => "poison",
            FaultSite::SlowDown => "slow",
            FaultSite::WireTruncate => "truncate",
            FaultSite::WireCorrupt => "corrupt",
            FaultSite::QueueFull => "queue-full",
        }
    }

    /// Every site, in index order.
    pub fn all() -> [FaultSite; SITES] {
        [
            FaultSite::WorkerPanic,
            FaultSite::LockPoison,
            FaultSite::SlowDown,
            FaultSite::WireTruncate,
            FaultSite::WireCorrupt,
            FaultSite::QueueFull,
        ]
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded schedule of injected faults: for each site, fire every
/// `period`-th check (0 disables the site). Parsed from the
/// `--faults=SPEC` flag syntax:
///
/// ```text
/// seed=7,panic=5,poison=9,slow=11,slow-ms=2,truncate=17,corrupt=13,queue-full=6
/// ```
///
/// Every key is optional; unknown keys are rejected so typos fail loud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed shifting each site's firing phase (reproducibility knob).
    pub seed: u64,
    /// Per-site periods, indexed by [`FaultSite::index`]; 0 = disabled.
    periods: [u64; SITES],
    /// Sleep applied when [`FaultSite::SlowDown`] fires.
    pub slow_down: Duration,
}

impl Default for FaultPlan {
    /// All sites disabled, seed 0.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            periods: [0; SITES],
            slow_down: Duration::from_millis(1),
        }
    }
}

impl FaultPlan {
    /// A plan with every site disabled (fires nothing even if armed).
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the firing period of `site` (every `period`-th check; 0
    /// disables).
    pub fn with_period(mut self, site: FaultSite, period: u64) -> Self {
        self.periods[site.index()] = period;
        self
    }

    /// Sets the seed (shifts every site's firing phase).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sleep injected by [`FaultSite::SlowDown`] fires.
    pub fn with_slow_down(mut self, d: Duration) -> Self {
        self.slow_down = d;
        self
    }

    /// The firing period of `site` (0 = disabled).
    pub fn period(&self, site: FaultSite) -> u64 {
        self.periods[site.index()]
    }

    /// True if no site can ever fire.
    pub fn is_empty(&self) -> bool {
        self.periods.iter().all(|&p| p == 0)
    }

    /// Parses the `--faults=SPEC` syntax (see type docs).
    ///
    /// # Errors
    ///
    /// A message naming the offending `key=value` pair. Repeating a key
    /// (`panic=5,panic=9`) is an error rather than silently keeping the
    /// last value: a duplicated key in a fault spec is almost always a
    /// typo for a *different* site, and last-wins would arm a schedule
    /// the operator never asked for.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        let mut seen: Vec<&str> = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}`: expected key=value"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|e| format!("fault spec `{part}`: {e}"))?;
            let key = key.trim();
            if seen.contains(&key) {
                return Err(format!("fault spec `{part}`: duplicate key `{key}`"));
            }
            match key {
                "seed" => plan.seed = n,
                "slow-ms" => plan.slow_down = Duration::from_millis(n),
                other => {
                    let site = FaultSite::all()
                        .into_iter()
                        .find(|s| s.name() == other)
                        .ok_or_else(|| {
                            format!(
                                "fault spec `{part}`: unknown key (expected seed, slow-ms, or one \
                                 of panic/poison/slow/truncate/corrupt/queue-full)"
                            )
                        })?;
                    plan.periods[site.index()] = n;
                }
            }
            seen.push(key);
        }
        Ok(plan)
    }
}

/// The armed form of a [`FaultPlan`]: per-(site, stream) check counters
/// plus per-(site, stream) fire counts, shared across threads.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    checks: [AtomicU64; SITES * FAULT_STREAMS],
    fired: [AtomicU64; SITES * FAULT_STREAMS],
}

impl FaultInjector {
    /// Arms `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            checks: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Seed-derived phase offset of `(site, stream)`: which residue of
    /// the check counter fires. Kept below the period so the very first
    /// `period` checks always contain exactly one fire.
    fn phase(&self, slot: usize, period: u64) -> u64 {
        // splitmix-style scramble; any fixed mixing works, it only has
        // to depend on (seed, slot) and stay stable across runs.
        let mut z = self
            .plan
            .seed
            .wrapping_add((slot as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % period
    }

    /// Records one check of `site` on `stream` and reports whether the
    /// fault fires there. Stream indices are taken modulo
    /// [`FAULT_STREAMS`].
    pub fn fire_in(&self, site: FaultSite, stream: usize) -> bool {
        let period = self.plan.periods[site.index()];
        if period == 0 {
            return false;
        }
        let slot = site.index() * FAULT_STREAMS + (stream % FAULT_STREAMS);
        let k = self.checks[slot].fetch_add(1, Ordering::Relaxed);
        let fires = k % period == self.phase(slot, period);
        if fires {
            self.fired[slot].fetch_add(1, Ordering::Relaxed);
        }
        fires
    }

    /// [`fire_in`](Self::fire_in) on the default stream 0.
    pub fn fire(&self, site: FaultSite) -> bool {
        self.fire_in(site, 0)
    }

    /// Total fires of `site` across all streams so far.
    pub fn injected(&self, site: FaultSite) -> u64 {
        let base = site.index() * FAULT_STREAMS;
        (0..FAULT_STREAMS)
            .map(|s| self.fired[base + s].load(Ordering::Relaxed))
            .sum()
    }

    /// Fires of `site` on one specific stream.
    pub fn injected_in(&self, site: FaultSite, stream: usize) -> u64 {
        self.fired[site.index() * FAULT_STREAMS + (stream % FAULT_STREAMS)].load(Ordering::Relaxed)
    }
}

/// The handle hardened code consults, carried by [`Budget`](crate::Budget)
/// the same way the tracer is. `Default` is the inert handle: one
/// `Option` branch per check, nothing else — the production cost of the
/// fault layer when `--faults` is off.
#[derive(Debug, Clone, Default)]
pub struct FaultHandle {
    injector: Option<Arc<FaultInjector>>,
}

impl FaultHandle {
    /// The inert handle (never fires, costs one branch per check).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Arms `plan`. An empty plan still short-circuits to inert.
    pub fn new(plan: FaultPlan) -> Self {
        if plan.is_empty() {
            return Self::default();
        }
        FaultHandle {
            injector: Some(Arc::new(FaultInjector::new(plan))),
        }
    }

    /// True when a non-empty plan is armed.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.injector.is_some()
    }

    /// Should `site` fire at this check? Inert handles answer `false`
    /// from a single branch.
    #[inline]
    pub fn fire(&self, site: FaultSite) -> bool {
        match &self.injector {
            Some(inj) => inj.fire(site),
            None => false,
        }
    }

    /// [`fire`](Self::fire) on a specific deterministic sub-stream
    /// (e.g. one per worker lane).
    #[inline]
    pub fn fire_in(&self, site: FaultSite, stream: usize) -> bool {
        match &self.injector {
            Some(inj) => inj.fire_in(site, stream),
            None => false,
        }
    }

    /// Applies a [`FaultSite::SlowDown`] check: sleeps the planned
    /// duration when the site fires. Call from amortised checkpoints
    /// only — an inert handle reduces this to one branch.
    #[inline]
    pub fn maybe_slow_down(&self) {
        if let Some(inj) = &self.injector {
            if inj.fire(FaultSite::SlowDown) {
                std::thread::sleep(inj.plan.slow_down);
            }
        }
    }

    /// Fires of `site` on one specific stream (0 for inert handles).
    pub fn injected_in(&self, site: FaultSite, stream: usize) -> u64 {
        self.injector
            .as_ref()
            .map_or(0, |inj| inj.injected_in(site, stream))
    }

    /// Total fires of `site` so far (0 for inert handles).
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injector.as_ref().map_or(0, |inj| inj.injected(site))
    }

    /// The armed injector, if any (doctor-style reports read counters
    /// through this).
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_deref()
    }
}

/// Installs — once per process — a panic hook that swallows the panics
/// this module's consumers inject (payloads starting with
/// `"injected "`), delegating every other panic to the previously
/// installed hook. Without it, a fault-laden replay (`cspdb doctor`)
/// buries its report under dozens of expected-and-caught backtraces;
/// real panics still report normally.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
                .is_some_and(|m| m.starts_with("injected "));
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_handle_never_fires() {
        let h = FaultHandle::disabled();
        assert!(!h.is_active());
        for site in FaultSite::all() {
            for _ in 0..100 {
                assert!(!h.fire(site));
            }
            assert_eq!(h.injected(site), 0);
        }
        h.maybe_slow_down(); // must not sleep or panic
        assert!(h.injector().is_none());
        // An empty plan collapses to the inert handle.
        assert!(!FaultHandle::new(FaultPlan::none()).is_active());
    }

    #[test]
    fn parse_roundtrips_the_spec_syntax() {
        let plan = FaultPlan::parse(
            "seed=7,panic=5,poison=9,slow=11,slow-ms=2,truncate=17,corrupt=13,queue-full=6",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.period(FaultSite::WorkerPanic), 5);
        assert_eq!(plan.period(FaultSite::LockPoison), 9);
        assert_eq!(plan.period(FaultSite::SlowDown), 11);
        assert_eq!(plan.period(FaultSite::WireTruncate), 17);
        assert_eq!(plan.period(FaultSite::WireCorrupt), 13);
        assert_eq!(plan.period(FaultSite::QueueFull), 6);
        assert_eq!(plan.slow_down, Duration::from_millis(2));
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("panic").is_err(), "missing =value");
        assert!(FaultPlan::parse("panic=x").is_err(), "non-numeric");
        assert!(FaultPlan::parse("frobnicate=3").is_err(), "unknown key");
    }

    #[test]
    fn parse_rejects_duplicate_keys() {
        for spec in [
            "panic=5,panic=9",
            "seed=1,seed=2",
            "slow-ms=1,slow-ms=2",
            "seed=7, panic=3 ,poison=2,panic=3",
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(err.contains("duplicate key"), "{spec}: {err}");
        }
        // Distinct keys still parse; a site name never clashes with the
        // scalar keys.
        let plan = FaultPlan::parse("seed=1,slow-ms=2,panic=3").unwrap();
        assert_eq!(plan.period(FaultSite::WorkerPanic), 3);
    }

    #[test]
    fn firing_is_deterministic_and_periodic() {
        let make = || {
            FaultHandle::new(
                FaultPlan::none()
                    .with_seed(42)
                    .with_period(FaultSite::WorkerPanic, 5),
            )
        };
        let a = make();
        let b = make();
        let seq = |h: &FaultHandle| -> Vec<bool> {
            (0..25).map(|_| h.fire(FaultSite::WorkerPanic)).collect()
        };
        let sa = seq(&a);
        assert_eq!(sa, seq(&b), "same seed, same schedule");
        assert_eq!(
            sa.iter().filter(|&&f| f).count(),
            5,
            "period 5 over 25 checks fires exactly 5 times"
        );
        // Exactly one fire in every window of `period` checks.
        for w in sa.chunks(5) {
            assert_eq!(w.iter().filter(|&&f| f).count(), 1, "{sa:?}");
        }
        assert_eq!(a.injected(FaultSite::WorkerPanic), 5);
    }

    #[test]
    fn seed_shifts_the_phase() {
        let phase_of = |seed: u64| -> usize {
            let h = FaultHandle::new(
                FaultPlan::none()
                    .with_seed(seed)
                    .with_period(FaultSite::LockPoison, 50),
            );
            (0..50)
                .position(|_| h.fire(FaultSite::LockPoison))
                .expect("one fire per period window")
        };
        let phases: Vec<usize> = (0..8).map(phase_of).collect();
        let distinct: std::collections::HashSet<_> = phases.iter().collect();
        assert!(distinct.len() > 1, "seeds must move the phase: {phases:?}");
    }

    #[test]
    fn streams_are_independent() {
        let h = FaultHandle::new(
            FaultPlan::none()
                .with_seed(3)
                .with_period(FaultSite::WorkerPanic, 4),
        );
        // Each stream fires within its own first `period` checks,
        // regardless of what other streams consumed.
        for stream in 0..FAULT_STREAMS {
            let fired = (0..4).any(|_| h.fire_in(FaultSite::WorkerPanic, stream));
            assert!(fired, "stream {stream} must fire in its first window");
            assert_eq!(h.injected_in(FaultSite::WorkerPanic, stream), 1);
        }
        assert_eq!(h.injected(FaultSite::WorkerPanic), FAULT_STREAMS as u64);
    }

    #[test]
    fn site_names_are_stable_and_displayed() {
        for site in FaultSite::all() {
            assert_eq!(site.to_string(), site.name());
            // Every name parses back as a spec key.
            let plan = FaultPlan::parse(&format!("{}=3", site.name())).unwrap();
            assert_eq!(plan.period(site), 3);
        }
    }
}
