//! Homomorphisms and partial homomorphisms between structures.
//!
//! A homomorphism `h : A -> B` maps the domain of **A** to the domain of
//! **B** so that every fact of **A** is mapped to a fact of **B**
//! (footnote 1 of the paper). Partial homomorphisms — the configurations
//! of the existential k-pebble game of Section 4 — are finite partial
//! functions whose graph respects all facts of **A** that lie entirely
//! inside their domain.

use crate::structure::Structure;

/// Checks that `h` (given as `h[a] = b` for every element `a` of `A`) is a
/// homomorphism from `a` to `b`.
///
/// # Panics
///
/// Panics if `h.len() != a.domain_size()` or if `h` maps outside the
/// domain of `b` (caller bugs, not data errors).
pub fn is_homomorphism(h: &[u32], a: &Structure, b: &Structure) -> bool {
    assert_eq!(h.len(), a.domain_size(), "mapping must be total on A");
    assert!(
        h.iter().all(|&x| (x as usize) < b.domain_size()),
        "mapping must land inside B"
    );
    assert_eq!(a.vocabulary(), b.vocabulary(), "vocabularies must match");
    let mut image = Vec::new();
    for (id, rel) in a.relations() {
        let target = b.relation(id);
        for t in rel.iter() {
            image.clear();
            image.extend(t.iter().map(|&x| h[x as usize]));
            if !target.contains(&image) {
                return false;
            }
        }
    }
    true
}

/// A partial homomorphism, stored as a sorted association list
/// `(element of A, element of B)` keyed by the first component.
///
/// The sorted representation makes equality, hashing, and subset tests
/// canonical, which the pebble-game fixpoint computation relies on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PartialHom {
    pairs: Vec<(u32, u32)>,
}

impl PartialHom {
    /// The empty partial map.
    pub fn empty() -> Self {
        PartialHom { pairs: Vec::new() }
    }

    /// Builds a partial map from pairs.
    ///
    /// Returns `None` if the pairs are not functional (same source mapped
    /// to two targets) — this is exactly losing condition 1 of the
    /// existential pebble game.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> Option<Self> {
        let mut v: Vec<(u32, u32)> = pairs.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        for w in v.windows(2) {
            if w[0].0 == w[1].0 {
                return None; // same source, different targets
            }
        }
        Some(PartialHom { pairs: v })
    }

    /// Number of elements in the domain of the map.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Looks up the image of `a`.
    pub fn get(&self, a: u32) -> Option<u32> {
        self.pairs
            .binary_search_by_key(&a, |&(x, _)| x)
            .ok()
            .map(|i| self.pairs[i].1)
    }

    /// True if `a` is in the domain.
    pub fn is_defined_on(&self, a: u32) -> bool {
        self.get(a).is_some()
    }

    /// Iterates over `(source, target)` pairs in source order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.pairs.iter().copied()
    }

    /// The domain of the map, in increasing order.
    pub fn sources(&self) -> impl Iterator<Item = u32> + '_ {
        self.pairs.iter().map(|&(a, _)| a)
    }

    /// Extends the map with `a -> b`.
    ///
    /// Returns `None` if `a` is already mapped to a different element.
    /// Extending with an existing pair returns a clone.
    pub fn extended(&self, a: u32, b: u32) -> Option<PartialHom> {
        match self.get(a) {
            Some(existing) if existing == b => Some(self.clone()),
            Some(_) => None,
            None => {
                let mut pairs = self.pairs.clone();
                let pos = pairs.partition_point(|&(x, _)| x < a);
                pairs.insert(pos, (a, b));
                Some(PartialHom { pairs })
            }
        }
    }

    /// Restriction of the map to sources in `keep`.
    pub fn restricted(&self, keep: impl Fn(u32) -> bool) -> PartialHom {
        PartialHom {
            pairs: self
                .pairs
                .iter()
                .copied()
                .filter(|&(a, _)| keep(a))
                .collect(),
        }
    }

    /// All restrictions obtained by dropping exactly one pair.
    pub fn drop_each(&self) -> impl Iterator<Item = PartialHom> + '_ {
        (0..self.pairs.len()).map(move |i| {
            let mut pairs = self.pairs.clone();
            pairs.remove(i);
            PartialHom { pairs }
        })
    }

    /// True if `self`'s graph is a subset of `other`'s graph.
    pub fn is_subfunction_of(&self, other: &PartialHom) -> bool {
        self.pairs.iter().all(|&(a, b)| other.get(a) == Some(b))
    }

    /// Checks the partial-homomorphism condition: every fact of `a` whose
    /// entries all lie in the domain of the map has its image as a fact of
    /// `b` (losing condition 2 of the pebble game, negated).
    pub fn is_partial_homomorphism(&self, a: &Structure, b: &Structure) -> bool {
        debug_assert_eq!(a.vocabulary(), b.vocabulary());
        let mut image = Vec::new();
        for (id, rel) in a.relations() {
            let target = b.relation(id);
            'tuples: for t in rel.iter() {
                image.clear();
                for &x in t {
                    match self.get(x) {
                        Some(y) => image.push(y),
                        None => continue 'tuples, // fact not inside the domain
                    }
                }
                if !target.contains(&image) {
                    return false;
                }
            }
        }
        true
    }

    /// Converts a total mapping into a `PartialHom` on the whole domain.
    pub fn from_total(h: &[u32]) -> PartialHom {
        PartialHom {
            pairs: h.iter().enumerate().map(|(a, &b)| (a as u32, b)).collect(),
        }
    }

    /// If the map is total on `0..n`, returns the dense vector form.
    pub fn to_total(&self, n: usize) -> Option<Vec<u32>> {
        if self.pairs.len() != n {
            return None;
        }
        let mut out = vec![0u32; n];
        for (i, &(a, b)) in self.pairs.iter().enumerate() {
            if a as usize != i {
                return None;
            }
            out[i] = b;
        }
        Some(out)
    }
}

/// Composes two total homomorphisms: `(g ∘ h)[x] = g[h[x]]`.
///
/// # Panics
///
/// Panics if an image of `h` is out of range for `g`.
pub fn compose(h: &[u32], g: &[u32]) -> Vec<u32> {
    h.iter().map(|&x| g[x as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary::Vocabulary;

    fn graph(n: usize, edges: &[(u32, u32)]) -> Structure {
        let voc = Vocabulary::new([("E", 2)]).unwrap();
        let mut s = Structure::new(voc, n);
        for &(u, v) in edges {
            s.insert_by_name("E", &[u, v]).unwrap();
        }
        s
    }

    #[test]
    fn total_homomorphism_check() {
        // Path 0->1->2 maps into edge 0->1 with h = [0,1,0]? 1->2 maps to 1->0: no.
        let a = graph(3, &[(0, 1), (1, 2)]);
        let b = graph(2, &[(0, 1), (1, 0)]);
        assert!(is_homomorphism(&[0, 1, 0], &a, &b));
        let b2 = graph(2, &[(0, 1)]);
        assert!(!is_homomorphism(&[0, 1, 0], &a, &b2));
    }

    #[test]
    fn from_pairs_rejects_non_functions() {
        assert!(PartialHom::from_pairs([(0, 1), (0, 2)]).is_none());
        assert!(PartialHom::from_pairs([(0, 1), (0, 1)]).is_some());
        // Non-injective maps are fine (homomorphisms need not be injective).
        assert!(PartialHom::from_pairs([(0, 1), (2, 1)]).is_some());
    }

    #[test]
    fn extend_and_restrict() {
        let f = PartialHom::from_pairs([(1, 0), (3, 2)]).unwrap();
        let g = f.extended(2, 5).unwrap();
        assert_eq!(g.get(2), Some(5));
        assert_eq!(g.len(), 3);
        assert!(f.extended(1, 9).is_none());
        assert_eq!(f.extended(1, 0).unwrap(), f);
        let r = g.restricted(|a| a != 3);
        assert_eq!(r.len(), 2);
        assert!(r.is_defined_on(1) && r.is_defined_on(2));
        assert!(r.is_subfunction_of(&g));
        assert!(!g.is_subfunction_of(&r));
    }

    #[test]
    fn drop_each_yields_all_subfunctions_of_size_minus_one() {
        let f = PartialHom::from_pairs([(0, 0), (1, 1), (2, 0)]).unwrap();
        let drops: Vec<_> = f.drop_each().collect();
        assert_eq!(drops.len(), 3);
        for d in &drops {
            assert_eq!(d.len(), 2);
            assert!(d.is_subfunction_of(&f));
        }
    }

    #[test]
    fn partial_homomorphism_condition() {
        let a = graph(3, &[(0, 1), (1, 2)]);
        let b = graph(2, &[(0, 1)]);
        // {0->0, 1->1} respects the only covered fact 0->1.
        let f = PartialHom::from_pairs([(0, 0), (1, 1)]).unwrap();
        assert!(f.is_partial_homomorphism(&a, &b));
        // {1->1, 2->0} must map edge (1,2) to (1,0), absent from b.
        let g = PartialHom::from_pairs([(1, 1), (2, 0)]).unwrap();
        assert!(!g.is_partial_homomorphism(&a, &b));
        // The empty map vacuously is one.
        assert!(PartialHom::empty().is_partial_homomorphism(&a, &b));
    }

    #[test]
    fn total_roundtrip() {
        let h = vec![2u32, 0, 1];
        let f = PartialHom::from_total(&h);
        assert_eq!(f.to_total(3).unwrap(), h);
        assert_eq!(f.to_total(2), None);
        let partial = PartialHom::from_pairs([(0, 1), (2, 2)]).unwrap();
        assert_eq!(partial.to_total(2), None);
    }

    #[test]
    fn composition() {
        let h = vec![1u32, 0];
        let g = vec![5u32, 7];
        assert_eq!(compose(&h, &g), vec![7, 5]);
    }

    #[test]
    fn composition_preserves_homomorphism() {
        let a = graph(3, &[(0, 1), (1, 2)]);
        let b = graph(2, &[(0, 1), (1, 0)]);
        let c = graph(2, &[(0, 1), (1, 0)]);
        let h = [0u32, 1, 0]; // a -> b
        let g = [1u32, 0]; // b -> c
        assert!(is_homomorphism(&h, &a, &b));
        assert!(is_homomorphism(&g, &b, &c));
        assert!(is_homomorphism(&compose(&h, &g), &a, &c));
    }
}
