//! The classical AI formulation of constraint satisfaction and its
//! translation to and from the homomorphism problem (Section 2 of the
//! paper).
//!
//! An instance is a triple `(V, D, C)`: variables `0..num_vars`, values
//! `0..num_values`, and constraints `(t, R)` pairing a scope `t` (a tuple
//! of variables) with a relation `R` on the values of the same arity.
//!
//! The two directions of the Feder–Vardi observation are implemented by
//! [`CspInstance::to_homomorphism`] (an instance becomes a pair of
//! structures `(A_P, B_P)`) and [`CspInstance::from_homomorphism`] (a pair
//! of structures is "broken up" into one constraint per fact of **A**).

use crate::error::{CoreError, Result};
use crate::homomorphism::PartialHom;
use crate::relation::Relation;
use crate::structure::Structure;
use crate::vocabulary::VocabularyBuilder;
use std::collections::HashMap;
use std::sync::Arc;

/// One constraint `(t, R)`: the scope `t` is a tuple of variables and `R`
/// a relation on values with `R.arity() == t.len()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    scope: Box<[u32]>,
    relation: Arc<Relation>,
}

impl Constraint {
    /// The scope (tuple of variables).
    #[inline]
    pub fn scope(&self) -> &[u32] {
        &self.scope
    }

    /// The constraint relation on values.
    #[inline]
    pub fn relation(&self) -> &Arc<Relation> {
        &self.relation
    }

    /// True if the assignment (total over variables) satisfies this
    /// constraint.
    pub fn is_satisfied_by(&self, assignment: &[u32]) -> bool {
        let image: Vec<u32> = self.scope.iter().map(|&v| assignment[v as usize]).collect();
        self.relation.contains(&image)
    }
}

/// A CSP instance `(V, D, C)` in the traditional AI formulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CspInstance {
    num_vars: usize,
    num_values: usize,
    constraints: Vec<Constraint>,
}

impl CspInstance {
    /// Creates an instance with no constraints.
    pub fn new(num_vars: usize, num_values: usize) -> Self {
        CspInstance {
            num_vars,
            num_values,
            constraints: Vec::new(),
        }
    }

    /// Number of variables `|V|`.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of values `|D|`.
    #[inline]
    pub fn num_values(&self) -> usize {
        self.num_values
    }

    /// The constraints.
    #[inline]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds a constraint `(scope, relation)`.
    ///
    /// # Errors
    ///
    /// Validates variable range, value range, and scope/arity agreement.
    pub fn add_constraint(
        &mut self,
        scope: impl Into<Box<[u32]>>,
        relation: impl Into<Arc<Relation>>,
    ) -> Result<()> {
        let scope = scope.into();
        let relation = relation.into();
        if scope.len() != relation.arity() {
            return Err(CoreError::ScopeArityMismatch {
                scope_len: scope.len(),
                arity: relation.arity(),
            });
        }
        for &v in scope.iter() {
            if v as usize >= self.num_vars {
                return Err(CoreError::VariableOutOfRange {
                    variable: v,
                    num_vars: self.num_vars,
                });
            }
        }
        if let Some(m) = relation.max_element() {
            if m as usize >= self.num_values {
                return Err(CoreError::ElementOutOfRange {
                    element: m,
                    domain_size: self.num_values,
                });
            }
        }
        self.constraints.push(Constraint { scope, relation });
        Ok(())
    }

    /// True if `assignment` (length `num_vars`, values `< num_values`)
    /// satisfies every constraint — i.e. is a *solution*.
    ///
    /// # Panics
    ///
    /// Panics on malformed assignments (caller bug).
    pub fn is_solution(&self, assignment: &[u32]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "assignment must be total");
        assert!(
            assignment.iter().all(|&v| (v as usize) < self.num_values),
            "assignment must use declared values"
        );
        self.constraints
            .iter()
            .all(|c| c.is_satisfied_by(assignment))
    }

    /// Exhaustive solver for *tiny* instances; the test oracle used across
    /// the workspace. Returns the first solution in lexicographic order.
    ///
    /// # Panics
    ///
    /// Panics if the search space `num_values^num_vars` exceeds `10^7`,
    /// to protect tests from accidental blowups.
    pub fn solve_brute_force(&self) -> Option<Vec<u32>> {
        let space = (self.num_values as f64).powi(self.num_vars as i32);
        assert!(space <= 1e7, "brute force space too large: {space}");
        if self.num_vars == 0 {
            return if self.constraints.iter().all(|c| c.is_satisfied_by(&[])) {
                Some(Vec::new())
            } else {
                None
            };
        }
        if self.num_values == 0 {
            return None;
        }
        let mut assignment = vec![0u32; self.num_vars];
        loop {
            if self.is_solution(&assignment) {
                return Some(assignment);
            }
            // Odometer increment.
            let mut i = self.num_vars;
            loop {
                if i == 0 {
                    return None;
                }
                i -= 1;
                assignment[i] += 1;
                if (assignment[i] as usize) < self.num_values {
                    break;
                }
                assignment[i] = 0;
            }
        }
    }

    /// Counts all solutions by exhaustive enumeration (tiny instances
    /// only; same guard as [`CspInstance::solve_brute_force`]).
    ///
    /// # Panics
    ///
    /// Panics if the search space exceeds `10^7`.
    pub fn count_solutions_brute_force(&self) -> u64 {
        let space = (self.num_values as f64).powi(self.num_vars as i32);
        assert!(space <= 1e7, "brute force space too large: {space}");
        if self.num_vars == 0 {
            return u64::from(self.constraints.iter().all(|c| c.is_satisfied_by(&[])));
        }
        if self.num_values == 0 {
            return 0;
        }
        let mut count = 0;
        let mut assignment = vec![0u32; self.num_vars];
        loop {
            if self.is_solution(&assignment) {
                count += 1;
            }
            let mut i = self.num_vars;
            loop {
                if i == 0 {
                    return count;
                }
                i -= 1;
                assignment[i] += 1;
                if (assignment[i] as usize) < self.num_values {
                    break;
                }
                assignment[i] = 0;
            }
        }
    }

    /// Consolidates constraints sharing a scope by intersecting their
    /// relations, so every scope occurs at most once (the normalization
    /// noted at the start of Section 2).
    pub fn consolidate(&self) -> CspInstance {
        let mut by_scope: HashMap<Box<[u32]>, Arc<Relation>> = HashMap::new();
        let mut order: Vec<Box<[u32]>> = Vec::new();
        for c in &self.constraints {
            match by_scope.get_mut(&c.scope) {
                Some(existing) => {
                    let merged = existing
                        .intersect(&c.relation)
                        .expect("same scope implies same arity");
                    *existing = Arc::new(merged);
                }
                None => {
                    order.push(c.scope.clone());
                    by_scope.insert(c.scope.clone(), c.relation.clone());
                }
            }
        }
        CspInstance {
            num_vars: self.num_vars,
            num_values: self.num_values,
            constraints: order
                .into_iter()
                .map(|scope| {
                    let relation = by_scope[&scope].clone();
                    Constraint { scope, relation }
                })
                .collect(),
        }
    }

    /// Rewrites every constraint so its scope has pairwise-distinct
    /// variables, using the select/project transformation described in
    /// Section 2: if `t_i = t_j`, delete tuples whose `i`th and `j`th
    /// entries disagree and project out column `j`.
    pub fn normalize_distinct(&self) -> CspInstance {
        let mut out = CspInstance::new(self.num_vars, self.num_values);
        for c in &self.constraints {
            let mut scope: Vec<u32> = c.scope.to_vec();
            let mut rel: Relation = (*c.relation).clone();
            loop {
                // Find the first duplicated position pair.
                let dup = (0..scope.len()).find_map(|i| {
                    ((i + 1)..scope.len())
                        .find(|&j| scope[j] == scope[i])
                        .map(|j| (i, j))
                });
                match dup {
                    Some((i, j)) => {
                        rel = rel.select_eq(i, j);
                        let keep: Vec<usize> = (0..scope.len()).filter(|&k| k != j).collect();
                        rel = rel.project(&keep);
                        scope.remove(j);
                    }
                    None => break,
                }
            }
            out.add_constraint(scope, rel)
                .expect("normalization preserves validity");
        }
        out
    }

    /// Converts the instance to its homomorphism formulation: a pair of
    /// structures `(A_P, B_P)` such that the instance is solvable iff
    /// there is a homomorphism `A_P -> B_P` (Section 2).
    ///
    /// Distinct constraint relations (by content) become distinct symbols
    /// `R0, R1, ...`; `A_P` holds the scopes, `B_P` holds the relations.
    pub fn to_homomorphism(&self) -> (Structure, Structure) {
        // Dedup relations by content.
        let mut rel_index: HashMap<&Relation, usize> = HashMap::new();
        let mut distinct: Vec<Arc<Relation>> = Vec::new();
        for c in &self.constraints {
            rel_index.entry(&c.relation).or_insert_with(|| {
                distinct.push(c.relation.clone());
                distinct.len() - 1
            });
        }
        let mut builder = VocabularyBuilder::new();
        for (i, r) in distinct.iter().enumerate() {
            builder
                .add(format!("R{i}"), r.arity())
                .expect("generated names are unique");
        }
        let voc = builder.finish();
        let mut a = Structure::new(voc.clone(), self.num_vars);
        let mut b = Structure::new(voc.clone(), self.num_values);
        for c in &self.constraints {
            let idx = rel_index[c.relation.as_ref()];
            let id = voc.id(&format!("R{idx}")).expect("symbol exists");
            a.insert(id, &c.scope).expect("validated at add_constraint");
        }
        for (i, r) in distinct.iter().enumerate() {
            let id = voc.id(&format!("R{i}")).expect("symbol exists");
            b.set_relation(id, (**r).clone())
                .expect("validated at add_constraint");
        }
        (a, b)
    }

    /// Converts a homomorphism instance `(A, B)` to the CSP instance
    /// `CSP(A, B)` by breaking up each relation of **A**: one constraint
    /// `(t, R^B)` per fact `t ∈ R^A` (Section 2).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VocabularyMismatch`] if vocabularies differ.
    pub fn from_homomorphism(a: &Structure, b: &Structure) -> Result<CspInstance> {
        if a.vocabulary() != b.vocabulary() {
            return Err(CoreError::VocabularyMismatch);
        }
        let mut out = CspInstance::new(a.domain_size(), b.domain_size());
        for (id, rel) in a.relations() {
            let target = Arc::new(b.relation(id).clone());
            for t in rel.iter() {
                out.add_constraint(t, target.clone())?;
            }
        }
        Ok(out)
    }
}

/// Checks coherence of a homomorphism instance `(A, B)` (Definition 5.5):
/// for every constraint `(ā, R)` of `CSP(A, B)` — i.e. every fact `ā` of
/// **A** with its target relation `R = R^B` — and every tuple `b̄ ∈ R`,
/// the correspondence `h_{ā,b̄}` is a well-defined partial function *and*
/// a partial homomorphism from **A** to **B**.
pub fn is_coherent(a: &Structure, b: &Structure) -> bool {
    debug_assert_eq!(a.vocabulary(), b.vocabulary());
    for (id, rel) in a.relations() {
        let target = b.relation(id);
        for t in rel.iter() {
            for bt in target.iter() {
                let pairs = t.iter().copied().zip(bt.iter().copied());
                match PartialHom::from_pairs(pairs) {
                    Some(h) => {
                        if !h.is_partial_homomorphism(a, b) {
                            return false;
                        }
                    }
                    None => return false,
                }
            }
        }
    }
    true
}

/// Makes a homomorphism instance coherent by iterated constraint
/// propagation: repeatedly delete from `R^B`-copies any tuple `b̄` whose
/// correspondence `h_{ā,b̄}` is ill-defined or not a partial homomorphism,
/// for some fact `ā`. Because different facts of the same relation may
/// prune differently, the result splits each fact of **A** into its own
/// symbol (the instance is semantically equivalent: same homomorphisms).
///
/// Returns the refined pair `(A', B')` with one symbol per fact of **A**.
pub fn make_coherent(a: &Structure, b: &Structure) -> (Structure, Structure) {
    debug_assert_eq!(a.vocabulary(), b.vocabulary());
    // One symbol per fact of A.
    let mut builder = VocabularyBuilder::new();
    let mut facts: Vec<(Vec<u32>, Relation)> = Vec::new();
    for (id, rel) in a.relations() {
        for t in rel.iter() {
            let name = format!("F{}", facts.len());
            builder
                .add(name, t.len())
                .expect("generated names are unique");
            facts.push((t.to_vec(), b.relation(id).clone()));
        }
    }
    let voc = builder.finish();
    let mut a2 = Structure::new(voc.clone(), a.domain_size());
    let mut b2 = Structure::new(voc.clone(), b.domain_size());
    for (i, (t, r)) in facts.iter().enumerate() {
        let id = voc.id(&format!("F{i}")).expect("symbol exists");
        a2.insert(id, t).expect("facts are valid");
        b2.set_relation(id, r.clone()).expect("relations are valid");
    }
    // Propagate to a fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for (i, fact) in facts.iter().enumerate() {
            let id = voc.id(&format!("F{i}")).expect("symbol exists");
            let scope = fact.0.clone();
            let current = b2.relation(id).clone();
            let pruned = current.filter(|bt| {
                PartialHom::from_pairs(scope.iter().copied().zip(bt.iter().copied()))
                    .map(|h| h.is_partial_homomorphism(&a2, &b2))
                    .unwrap_or(false)
            });
            if pruned.len() != current.len() {
                changed = true;
                b2.set_relation(id, pruned)
                    .expect("pruning preserves validity");
            }
        }
    }
    (a2, b2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homomorphism::is_homomorphism;
    use crate::vocabulary::Vocabulary;

    fn neq_relation(d: usize) -> Relation {
        Relation::from_tuples(
            2,
            (0..d as u32).flat_map(|i| {
                (0..d as u32).filter_map(move |j| if i != j { Some([i, j]) } else { None })
            }),
        )
        .unwrap()
    }

    /// 3-coloring of a triangle: classic satisfiable instance.
    fn triangle_coloring(colors: usize) -> CspInstance {
        let mut p = CspInstance::new(3, colors);
        let neq = Arc::new(neq_relation(colors));
        for (u, v) in [(0u32, 1u32), (1, 2), (0, 2)] {
            p.add_constraint([u, v], neq.clone()).unwrap();
        }
        p
    }

    #[test]
    fn brute_force_on_triangle() {
        assert!(triangle_coloring(3).solve_brute_force().is_some());
        assert!(triangle_coloring(2).solve_brute_force().is_none());
        assert_eq!(triangle_coloring(3).count_solutions_brute_force(), 6);
        assert_eq!(triangle_coloring(2).count_solutions_brute_force(), 0);
    }

    #[test]
    fn is_solution_checks_all_constraints() {
        let p = triangle_coloring(3);
        assert!(p.is_solution(&[0, 1, 2]));
        assert!(!p.is_solution(&[0, 0, 1]));
    }

    #[test]
    fn add_constraint_validates() {
        let mut p = CspInstance::new(2, 2);
        let r = Relation::from_tuples(2, [[0u32, 1]]).unwrap();
        assert!(matches!(
            p.add_constraint([0, 5], Arc::new(r.clone())),
            Err(CoreError::VariableOutOfRange { .. })
        ));
        assert!(matches!(
            p.add_constraint([0], Arc::new(r.clone())),
            Err(CoreError::ScopeArityMismatch { .. })
        ));
        let too_big = Relation::from_tuples(2, [[0u32, 7]]).unwrap();
        assert!(matches!(
            p.add_constraint([0, 1], Arc::new(too_big)),
            Err(CoreError::ElementOutOfRange { .. })
        ));
        assert!(p.add_constraint([0, 1], Arc::new(r)).is_ok());
    }

    #[test]
    fn consolidate_intersects_same_scope() {
        let mut p = CspInstance::new(2, 3);
        let r1 = Relation::from_tuples(2, [[0u32, 1], [1, 2], [2, 0]]).unwrap();
        let r2 = Relation::from_tuples(2, [[0u32, 1], [2, 0], [2, 2]]).unwrap();
        p.add_constraint([0, 1], Arc::new(r1)).unwrap();
        p.add_constraint([0, 1], Arc::new(r2)).unwrap();
        let c = p.consolidate();
        assert_eq!(c.constraints().len(), 1);
        let r = c.constraints()[0].relation();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[0, 1]) && r.contains(&[2, 0]));
    }

    #[test]
    fn normalize_distinct_removes_repeats() {
        // Constraint E(x, x) with relation {(0,1),(1,1)} forces x = 1.
        let mut p = CspInstance::new(1, 2);
        let r = Relation::from_tuples(2, [[0u32, 1], [1, 1]]).unwrap();
        p.add_constraint([0, 0], Arc::new(r)).unwrap();
        let q = p.normalize_distinct();
        assert_eq!(q.constraints().len(), 1);
        assert_eq!(q.constraints()[0].scope(), &[0]);
        let rel = q.constraints()[0].relation();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&[1]));
        // Solvability is preserved.
        assert_eq!(
            p.solve_brute_force().is_some(),
            q.solve_brute_force().is_some()
        );
        assert!(q.is_solution(&[1]));
    }

    #[test]
    fn hom_roundtrip_preserves_solvability() {
        let p = triangle_coloring(3).consolidate();
        let (a, b) = p.to_homomorphism();
        assert_eq!(a.domain_size(), 3);
        assert_eq!(b.domain_size(), 3);
        // h = identity coloring 0,1,2 is a homomorphism.
        assert!(is_homomorphism(&[0, 1, 2], &a, &b));
        assert!(!is_homomorphism(&[0, 0, 1], &a, &b));
        // And back again.
        let q = CspInstance::from_homomorphism(&a, &b).unwrap();
        assert!(q.solve_brute_force().is_some());
        assert_eq!(
            q.count_solutions_brute_force(),
            p.count_solutions_brute_force()
        );
    }

    #[test]
    fn to_homomorphism_dedups_relations() {
        let p = triangle_coloring(3);
        let (a, _b) = p.to_homomorphism();
        // All three constraints share one relation -> one symbol.
        assert_eq!(a.vocabulary().len(), 1);
        assert_eq!(a.relation_by_name("R0").unwrap().len(), 3);
    }

    #[test]
    fn from_homomorphism_rejects_mismatched_vocabularies() {
        let a = Structure::new(Vocabulary::new([("E", 2)]).unwrap(), 1);
        let b = Structure::new(Vocabulary::new([("F", 2)]).unwrap(), 1);
        assert!(CspInstance::from_homomorphism(&a, &b).is_err());
    }

    #[test]
    fn coherence_detects_incoherent_instance() {
        // A: fact E(0,1) and fact P(1).
        let voc = Vocabulary::new([("E", 2), ("P", 1)]).unwrap();
        let mut a = Structure::new(voc.clone(), 2);
        a.insert_by_name("E", &[0, 1]).unwrap();
        a.insert_by_name("P", &[1]).unwrap();
        // Coherent B: E^B = {(0,0)}, P^B = {0}. The E-constraint's only
        // tuple gives h = {0->0, 1->0}, which covers both facts of A and
        // maps them to facts of B; the P-constraint's tuple gives {1->0}.
        let mut b_ok = Structure::new(voc.clone(), 2);
        b_ok.insert_by_name("E", &[0, 0]).unwrap();
        b_ok.insert_by_name("P", &[0]).unwrap();
        assert!(is_coherent(&a, &b_ok));
        // Incoherent B: E^B = {(0,1)} but P^B = {0}. The E-tuple (0,1)
        // gives h = {0->0, 1->1}, which covers P(1) yet P(1) ∉ P^B.
        let mut b_bad = Structure::new(voc, 2);
        b_bad.insert_by_name("E", &[0, 1]).unwrap();
        b_bad.insert_by_name("P", &[0]).unwrap();
        assert!(!is_coherent(&a, &b_bad));
    }

    #[test]
    fn make_coherent_preserves_homomorphisms() {
        let voc = Vocabulary::new([("E", 2), ("P", 1)]).unwrap();
        let mut a = Structure::new(voc.clone(), 2);
        a.insert_by_name("E", &[0, 1]).unwrap();
        a.insert_by_name("P", &[0]).unwrap();
        let mut b = Structure::new(voc, 3);
        b.insert_by_name("E", &[0, 1]).unwrap();
        b.insert_by_name("E", &[1, 2]).unwrap();
        b.insert_by_name("P", &[0]).unwrap();
        let (a2, b2) = make_coherent(&a, &b);
        assert!(is_coherent(&a2, &b2));
        // Homomorphisms are exactly preserved: h(0)=0, h(1)=1 works both
        // before and after; h(0)=1 fails both (P(0) needs image in {0}).
        assert!(is_homomorphism(&[0, 1], &a, &b));
        assert!(is_homomorphism(&[0, 1], &a2, &b2));
        assert!(!is_homomorphism(&[1, 2], &a, &b));
        assert!(!is_homomorphism(&[1, 2], &a2, &b2));
        let p1 = CspInstance::from_homomorphism(&a, &b).unwrap();
        let p2 = CspInstance::from_homomorphism(&a2, &b2).unwrap();
        assert_eq!(
            p1.count_solutions_brute_force(),
            p2.count_solutions_brute_force()
        );
    }

    #[test]
    fn empty_instances() {
        let p = CspInstance::new(0, 3);
        assert!(p.solve_brute_force().is_some());
        let p = CspInstance::new(2, 0);
        assert!(p.solve_brute_force().is_none());
        let p = CspInstance::new(3, 2); // no constraints: first assignment wins
        assert_eq!(p.solve_brute_force().unwrap(), vec![0, 0, 0]);
        assert_eq!(p.count_solutions_brute_force(), 8);
    }
}
