//! Structured observability: typed trace events, pluggable sinks, and
//! the zero-cost-when-disabled [`Tracer`] carried alongside the meter.
//!
//! Budgets (see [`crate::budget`]) answer *whether* a run may keep
//! going; this module answers *what the run did* — which governed-ladder
//! tier won, how many rows each join operator produced, how fast the
//! Datalog deltas shrank, where the budget was spent when a run
//! exhausts. Algorithms emit [`TraceEvent`]s through the [`Tracer`]
//! reachable from any [`crate::budget::Metering`] implementation; the
//! events flow to a [`TraceSink`]:
//!
//! * [`NullSink`] — swallows everything (for overhead measurements);
//! * [`Recorder`] — buffers events in memory (powers `EXPLAIN`);
//! * [`JsonLinesSink`] — writes one JSON object per event.
//!
//! **Cost model.** A disabled tracer (the default) reduces every
//! [`Tracer::emit_with`] call to a single branch on a cached bool: the
//! event-construction closure never runs, no clock is read, nothing
//! allocates. Events are deliberately *aggregate* (one per operator,
//! per sweep, per tier — never per row or per search node), so even an
//! enabled tracer stays off the per-tuple hot path.

use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::budget::ExhaustionReason;

/// Which relational operator produced an [`TraceEvent::Operator`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Sequential hash join of two named relations.
    HashJoin,
    /// One partition of a partitioned parallel hash join.
    ParallelHashJoin,
    /// Semijoin (left rows filtered by join-compatibility with right).
    Semijoin,
    /// Worst-case-optimal multiway join (leapfrog intersection over
    /// sorted trie views; all inputs joined in one operator).
    MultiwayJoin,
}

impl OperatorKind {
    /// Stable lower-snake name, used in JSON and EXPLAIN output.
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::HashJoin => "hash_join",
            OperatorKind::ParallelHashJoin => "parallel_hash_join",
            OperatorKind::Semijoin => "semijoin",
            OperatorKind::MultiwayJoin => "multiway_join",
        }
    }
}

impl fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured observation from a solver run.
///
/// Events are coarse by design — aggregate counters per operator, per
/// propagation pass, per ladder tier — so emitting them never touches a
/// per-row loop. Every variant serialises to one JSON object via
/// [`TraceEvent::to_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A governed-ladder tier (or portfolio racer) is about to run.
    TierStart {
        /// Strategy name (`"yannakakis"`, `"treewidth"`, ...).
        strategy: &'static str,
    },
    /// A governed-ladder tier (or portfolio racer) finished.
    TierEnd {
        /// Strategy name.
        strategy: &'static str,
        /// Outcome summary (`"decided"`, `"skipped: ..."`,
        /// `"exhausted: ..."`, `"inconclusive"`).
        outcome: String,
        /// Wall time the tier consumed, in microseconds.
        micros: u64,
        /// Meter steps the tier consumed.
        steps: u64,
        /// Meter tuples the tier charged.
        tuples: u64,
    },
    /// A portfolio race was decided by this strategy.
    RaceWinner {
        /// The winning racer's strategy name.
        strategy: &'static str,
    },
    /// A portfolio racer lost and was cancelled (or exhausted on its own).
    RaceLoser {
        /// The losing racer's strategy name.
        strategy: &'static str,
        /// Why it stopped (`"cancelled: winner found"`, an exhaustion
        /// reason, or `"inconclusive"`).
        cause: String,
    },
    /// A phase ran out of budget.
    Exhausted {
        /// Which phase (strategy or algorithm name) was running.
        phase: &'static str,
        /// The latched exhaustion reason.
        reason: ExhaustionReason,
    },
    /// Aggregate statistics of one backtracking-search run.
    Search {
        /// Search nodes expanded.
        nodes: u64,
        /// Backtracks taken.
        backtracks: u64,
        /// Arc/constraint revisions performed during propagation.
        revisions: u64,
        /// Solutions found (0 or 1 for decision runs).
        solutions: u64,
    },
    /// Aggregate statistics of one local-consistency propagation pass.
    Propagation {
        /// Algorithm name (`"ac3"`, ...).
        algorithm: &'static str,
        /// Arc revisions performed.
        revisions: u64,
        /// Candidate values removed from domains.
        removals: u64,
        /// True if some domain was wiped out (inconsistency detected).
        wipeout: bool,
    },
    /// Aggregate statistics of one (strong) k-consistency computation.
    KConsistency {
        /// The `k` of the existential pebble game.
        k: usize,
        /// Candidate partial homomorphisms generated.
        candidates: u64,
        /// Candidates surviving the greatest-fixpoint deletion loop.
        survivors: u64,
    },
    /// A join order chosen by the connectivity-aware planner.
    PlanChosen {
        /// Number of relations planned over.
        relations: usize,
        /// Chosen join order (indices into the planner's input).
        order: Vec<u32>,
        /// Estimated cardinality after each step of `order`.
        est_rows: Vec<u64>,
        /// Positions in `order` the planner was forced to execute as
        /// explicit cross products (disconnected join graph).
        cross_steps: Vec<u32>,
        /// Which join engine executes the plan (`"binary"` for the
        /// left-deep hash-join pipeline, `"wcoj"` for the
        /// worst-case-optimal leapfrog engine).
        engine: &'static str,
        /// Why that engine was chosen (cost comparison or structural
        /// fallback), for `--explain` output.
        reason: String,
    },
    /// One attribute level of a worst-case-optimal (leapfrog) multiway
    /// join: how many candidate bindings the intersection at this depth
    /// produced across the whole run.
    WcojLevel {
        /// Depth in the global attribute order (0 = outermost).
        level: u32,
        /// The attribute bound at this level.
        attr: u32,
        /// Relations participating in the intersection at this level.
        relations: u32,
        /// Bindings that survived the intersection at this level.
        matches: u64,
    },
    /// A hash index was built over a relation's key attributes.
    IndexBuilt {
        /// Width of the index key (number of attributes).
        attrs: usize,
        /// Rows indexed.
        rows: u64,
        /// Distinct key values in the index.
        distinct_keys: u64,
    },
    /// One relational operator application with its cardinalities.
    Operator {
        /// Which operator ran.
        op: OperatorKind,
        /// Rows on the left (probe) input.
        left_rows: u64,
        /// Rows on the right (build) input.
        right_rows: u64,
        /// Rows in the output (for semijoins: surviving left rows).
        output_rows: u64,
        /// Wall time of the operator, in microseconds.
        micros: u64,
    },
    /// One semijoin sweep of the Yannakakis full reducer.
    YannakakisSweep {
        /// `"bottom_up"` or `"top_down"`.
        direction: &'static str,
        /// Number of semijoins applied in the sweep.
        semijoins: u64,
    },
    /// Shape of a tree decomposition handed to the DP solver.
    Decomposition {
        /// Width (largest bag size minus one).
        width: usize,
        /// Number of bags.
        bags: usize,
        /// Size of the largest bag.
        largest_bag: usize,
    },
    /// One bag table materialised by the treewidth DP.
    DpTable {
        /// Bag index in the decomposition.
        bag: usize,
        /// Number of variables in the bag.
        bag_size: usize,
        /// Satisfying assignments stored for the bag.
        rows: u64,
    },
    /// One semi-naive Datalog iteration.
    DatalogIteration {
        /// Iteration number (0 is the initial full round).
        iteration: u64,
        /// Facts newly derived this iteration.
        delta_facts: u64,
        /// Total facts derived so far.
        total_facts: u64,
    },
    /// Summary of a certain-answer computation over RPQ views.
    RpqCertain {
        /// Candidate pairs checked.
        pairs: u64,
        /// Pairs certain under all view instantiations.
        certain: u64,
    },
    /// A service request passed admission control and was queued.
    RequestAdmitted {
        /// Client-assigned request id.
        id: u64,
        /// Which lane the cost gate routed it to (`"normal"`/`"heavy"`).
        lane: &'static str,
    },
    /// A service request was rejected at admission.
    RequestRejected {
        /// Client-assigned request id.
        id: u64,
        /// Why (`"overloaded: ..."`, `"shutting down"`).
        reason: String,
    },
    /// A semantic-cache hit: a stored answer was reused after its key
    /// was confirmed by homomorphic equivalence.
    CacheHit {
        /// Database name the cached answer was computed against.
        db: String,
        /// Database version the entry is keyed by.
        version: u64,
        /// Cheap invariant hash of the query core (bucket key).
        invariant: u64,
    },
    /// A semantic-cache miss: the answer was computed cold.
    CacheMiss {
        /// Database name.
        db: String,
        /// Database version.
        version: u64,
        /// Cheap invariant hash of the query core (bucket key).
        invariant: u64,
    },
    /// Service shutdown began; the queue drains and (in cancel mode)
    /// in-flight work is cancelled through child tokens.
    ShutdownDrain {
        /// Requests still queued when shutdown began.
        queued: u64,
        /// Requests executing when shutdown began.
        inflight: u64,
    },
    /// A worker's request execution panicked; the panic was isolated,
    /// the request answered with a typed internal error, and the worker
    /// thread survived.
    WorkerPanicked {
        /// Client-assigned request id.
        id: u64,
        /// The lane whose worker caught the panic.
        lane: &'static str,
    },
    /// A request was shed because its deadline could not be met —
    /// either estimated at admission or already passed at dequeue.
    RequestExpired {
        /// Client-assigned request id.
        id: u64,
        /// Where the shed happened (`"admission"`/`"dequeue"`).
        at: &'static str,
        /// Microseconds the request had waited when shed.
        waited_micros: u64,
    },
    /// A heavy-lane CQ request was degraded to the normal lane's
    /// budget-sliced cheap tier instead of being rejected.
    RequestDegraded {
        /// Client-assigned request id.
        id: u64,
    },
    /// A durable snapshot of a named database was written to disk.
    SnapshotWritten {
        /// Database name.
        db: String,
        /// Version the snapshot captures.
        version: u64,
        /// Size of the snapshot record in bytes.
        bytes: u64,
    },
    /// A named database's snapshot and append log were replayed at
    /// startup.
    LogReplayed {
        /// Database name.
        db: String,
        /// Version recovered (highest valid record).
        version: u64,
        /// Valid log records replayed on top of the snapshot.
        records: u64,
        /// True when a torn (partially written or corrupt) tail was
        /// found and truncated during replay.
        torn_truncated: bool,
    },
    /// An append log crossed the compaction threshold and was folded
    /// into a fresh snapshot.
    LogCompacted {
        /// Database name.
        db: String,
        /// Version of the fresh snapshot.
        version: u64,
        /// Log records folded away.
        folded: u64,
    },
    /// A client connection was accepted by the service's listener.
    ConnectionOpened {
        /// Server-assigned connection id (monotone per process).
        conn: u64,
        /// Peer address as reported by the socket.
        peer: String,
    },
    /// A client connection ended and its handler exited.
    ConnectionClosed {
        /// Server-assigned connection id.
        conn: u64,
        /// Requests the connection submitted over its lifetime.
        requests: u64,
        /// True when the stream ended in an orderly EOF; false when the
        /// handler dropped it after an I/O error or idle timeout.
        clean: bool,
    },
    /// A client connection sat idle past the read timeout and was
    /// dropped to protect the pool from slowloris-style occupancy.
    ConnectionTimedOut {
        /// Server-assigned connection id.
        conn: u64,
        /// The idle timeout that was exceeded, in milliseconds.
        idle_ms: u64,
    },
    /// A single-tuple delta (insert or delete) was applied to a named
    /// database, bumping its version without a full snapshot put.
    DeltaApplied {
        /// Database name.
        db: String,
        /// Version after the delta.
        version: u64,
        /// Relation the tuple was inserted into / deleted from.
        rel: String,
        /// `"insert"` or `"delete"`.
        op: &'static str,
        /// False when the delta was a no-op (duplicate insert or
        /// delete of an absent tuple); the version is not bumped then.
        applied: bool,
    },
    /// A materialized view absorbed a delta through its incremental
    /// maintenance path (counting for CQs, template-reuse for RPQ).
    ViewRefreshed {
        /// View name (query name or registered label).
        view: String,
        /// Answer tuples the delta added to the view.
        added: u64,
        /// Answer tuples the delta removed from the view.
        removed: u64,
        /// Answer tuples after the refresh.
        total: u64,
    },
    /// A recursive view ran its DRed over-delete/re-derive cycle for a
    /// deletion (deletes may cascade, so over-deletion is followed by
    /// re-derivation of still-supported facts).
    ViewRederived {
        /// View name.
        view: String,
        /// Facts over-deleted in the pessimistic first phase.
        overdeleted: u64,
        /// Over-deleted facts re-derived from surviving support.
        rederived: u64,
        /// Facts in the view's IDB after the cycle.
        total: u64,
    },
}

/// Escapes `s` for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl TraceEvent {
    /// Stable lower-snake event name (the `"event"` field of
    /// [`to_json`](Self::to_json)).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TierStart { .. } => "tier_start",
            TraceEvent::TierEnd { .. } => "tier_end",
            TraceEvent::RaceWinner { .. } => "race_winner",
            TraceEvent::RaceLoser { .. } => "race_loser",
            TraceEvent::Exhausted { .. } => "exhausted",
            TraceEvent::Search { .. } => "search",
            TraceEvent::Propagation { .. } => "propagation",
            TraceEvent::KConsistency { .. } => "k_consistency",
            TraceEvent::PlanChosen { .. } => "plan_chosen",
            TraceEvent::WcojLevel { .. } => "wcoj_level",
            TraceEvent::IndexBuilt { .. } => "index_built",
            TraceEvent::Operator { .. } => "operator",
            TraceEvent::YannakakisSweep { .. } => "yannakakis_sweep",
            TraceEvent::Decomposition { .. } => "decomposition",
            TraceEvent::DpTable { .. } => "dp_table",
            TraceEvent::DatalogIteration { .. } => "datalog_iteration",
            TraceEvent::RpqCertain { .. } => "rpq_certain",
            TraceEvent::RequestAdmitted { .. } => "request_admitted",
            TraceEvent::RequestRejected { .. } => "request_rejected",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::ShutdownDrain { .. } => "shutdown_drain",
            TraceEvent::WorkerPanicked { .. } => "worker_panicked",
            TraceEvent::RequestExpired { .. } => "request_expired",
            TraceEvent::RequestDegraded { .. } => "request_degraded",
            TraceEvent::SnapshotWritten { .. } => "snapshot_written",
            TraceEvent::LogReplayed { .. } => "log_replayed",
            TraceEvent::LogCompacted { .. } => "log_compacted",
            TraceEvent::ConnectionOpened { .. } => "connection_opened",
            TraceEvent::ConnectionClosed { .. } => "connection_closed",
            TraceEvent::ConnectionTimedOut { .. } => "connection_timed_out",
            TraceEvent::DeltaApplied { .. } => "delta_applied",
            TraceEvent::ViewRefreshed { .. } => "view_refreshed",
            TraceEvent::ViewRederived { .. } => "view_rederived",
        }
    }

    /// Serialises the event as one self-contained JSON object.
    ///
    /// The encoding is hand-rolled (the workspace has no serde); all
    /// field names are stable snake_case and all numbers are plain
    /// decimal, so the output is line-oriented-tooling friendly.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"event\":\"{}\"", self.kind());
        match self {
            TraceEvent::TierStart { strategy } => {
                s.push_str(&format!(",\"strategy\":\"{}\"", json_escape(strategy)));
            }
            TraceEvent::TierEnd {
                strategy,
                outcome,
                micros,
                steps,
                tuples,
            } => {
                s.push_str(&format!(
                    ",\"strategy\":\"{}\",\"outcome\":\"{}\",\"micros\":{micros},\"steps\":{steps},\"tuples\":{tuples}",
                    json_escape(strategy),
                    json_escape(outcome)
                ));
            }
            TraceEvent::RaceWinner { strategy } => {
                s.push_str(&format!(",\"strategy\":\"{}\"", json_escape(strategy)));
            }
            TraceEvent::RaceLoser { strategy, cause } => {
                s.push_str(&format!(
                    ",\"strategy\":\"{}\",\"cause\":\"{}\"",
                    json_escape(strategy),
                    json_escape(cause)
                ));
            }
            TraceEvent::Exhausted { phase, reason } => {
                s.push_str(&format!(
                    ",\"phase\":\"{}\",\"reason\":\"{}\"",
                    json_escape(phase),
                    json_escape(&reason.to_string())
                ));
            }
            TraceEvent::Search {
                nodes,
                backtracks,
                revisions,
                solutions,
            } => {
                s.push_str(&format!(
                    ",\"nodes\":{nodes},\"backtracks\":{backtracks},\"revisions\":{revisions},\"solutions\":{solutions}"
                ));
            }
            TraceEvent::Propagation {
                algorithm,
                revisions,
                removals,
                wipeout,
            } => {
                s.push_str(&format!(
                    ",\"algorithm\":\"{}\",\"revisions\":{revisions},\"removals\":{removals},\"wipeout\":{wipeout}",
                    json_escape(algorithm)
                ));
            }
            TraceEvent::KConsistency {
                k,
                candidates,
                survivors,
            } => {
                s.push_str(&format!(
                    ",\"k\":{k},\"candidates\":{candidates},\"survivors\":{survivors}"
                ));
            }
            TraceEvent::PlanChosen {
                relations,
                order,
                est_rows,
                cross_steps,
                engine,
                reason,
            } => {
                let join = |xs: &[u64]| xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
                let order_s = order
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                let cross_s = cross_steps
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                s.push_str(&format!(
                    ",\"relations\":{relations},\"order\":[{order_s}],\"est_rows\":[{}],\"cross_steps\":[{cross_s}],\"engine\":\"{}\",\"reason\":\"{}\"",
                    join(est_rows),
                    json_escape(engine),
                    json_escape(reason)
                ));
            }
            TraceEvent::WcojLevel {
                level,
                attr,
                relations,
                matches,
            } => {
                s.push_str(&format!(
                    ",\"level\":{level},\"attr\":{attr},\"relations\":{relations},\"matches\":{matches}"
                ));
            }
            TraceEvent::IndexBuilt {
                attrs,
                rows,
                distinct_keys,
            } => {
                s.push_str(&format!(
                    ",\"attrs\":{attrs},\"rows\":{rows},\"distinct_keys\":{distinct_keys}"
                ));
            }
            TraceEvent::Operator {
                op,
                left_rows,
                right_rows,
                output_rows,
                micros,
            } => {
                s.push_str(&format!(
                    ",\"op\":\"{}\",\"left_rows\":{left_rows},\"right_rows\":{right_rows},\"output_rows\":{output_rows},\"micros\":{micros}",
                    op.name()
                ));
            }
            TraceEvent::YannakakisSweep {
                direction,
                semijoins,
            } => {
                s.push_str(&format!(
                    ",\"direction\":\"{}\",\"semijoins\":{semijoins}",
                    json_escape(direction)
                ));
            }
            TraceEvent::Decomposition {
                width,
                bags,
                largest_bag,
            } => {
                s.push_str(&format!(
                    ",\"width\":{width},\"bags\":{bags},\"largest_bag\":{largest_bag}"
                ));
            }
            TraceEvent::DpTable {
                bag,
                bag_size,
                rows,
            } => {
                s.push_str(&format!(
                    ",\"bag\":{bag},\"bag_size\":{bag_size},\"rows\":{rows}"
                ));
            }
            TraceEvent::DatalogIteration {
                iteration,
                delta_facts,
                total_facts,
            } => {
                s.push_str(&format!(
                    ",\"iteration\":{iteration},\"delta_facts\":{delta_facts},\"total_facts\":{total_facts}"
                ));
            }
            TraceEvent::RpqCertain { pairs, certain } => {
                s.push_str(&format!(",\"pairs\":{pairs},\"certain\":{certain}"));
            }
            TraceEvent::RequestAdmitted { id, lane } => {
                s.push_str(&format!(",\"id\":{id},\"lane\":\"{}\"", json_escape(lane)));
            }
            TraceEvent::RequestRejected { id, reason } => {
                s.push_str(&format!(
                    ",\"id\":{id},\"reason\":\"{}\"",
                    json_escape(reason)
                ));
            }
            TraceEvent::CacheHit {
                db,
                version,
                invariant,
            }
            | TraceEvent::CacheMiss {
                db,
                version,
                invariant,
            } => {
                s.push_str(&format!(
                    ",\"db\":\"{}\",\"version\":{version},\"invariant\":{invariant}",
                    json_escape(db)
                ));
            }
            TraceEvent::ShutdownDrain { queued, inflight } => {
                s.push_str(&format!(",\"queued\":{queued},\"inflight\":{inflight}"));
            }
            TraceEvent::WorkerPanicked { id, lane } => {
                s.push_str(&format!(",\"id\":{id},\"lane\":\"{}\"", json_escape(lane)));
            }
            TraceEvent::RequestExpired {
                id,
                at,
                waited_micros,
            } => {
                s.push_str(&format!(
                    ",\"id\":{id},\"at\":\"{}\",\"waited_micros\":{waited_micros}",
                    json_escape(at)
                ));
            }
            TraceEvent::RequestDegraded { id } => {
                s.push_str(&format!(",\"id\":{id}"));
            }
            TraceEvent::SnapshotWritten { db, version, bytes } => {
                s.push_str(&format!(
                    ",\"db\":\"{}\",\"version\":{version},\"bytes\":{bytes}",
                    json_escape(db)
                ));
            }
            TraceEvent::LogReplayed {
                db,
                version,
                records,
                torn_truncated,
            } => {
                s.push_str(&format!(
                    ",\"db\":\"{}\",\"version\":{version},\"records\":{records},\"torn_truncated\":{torn_truncated}",
                    json_escape(db)
                ));
            }
            TraceEvent::LogCompacted {
                db,
                version,
                folded,
            } => {
                s.push_str(&format!(
                    ",\"db\":\"{}\",\"version\":{version},\"folded\":{folded}",
                    json_escape(db)
                ));
            }
            TraceEvent::ConnectionOpened { conn, peer } => {
                s.push_str(&format!(
                    ",\"conn\":{conn},\"peer\":\"{}\"",
                    json_escape(peer)
                ));
            }
            TraceEvent::ConnectionClosed {
                conn,
                requests,
                clean,
            } => {
                s.push_str(&format!(
                    ",\"conn\":{conn},\"requests\":{requests},\"clean\":{clean}"
                ));
            }
            TraceEvent::ConnectionTimedOut { conn, idle_ms } => {
                s.push_str(&format!(",\"conn\":{conn},\"idle_ms\":{idle_ms}"));
            }
            TraceEvent::DeltaApplied {
                db,
                version,
                rel,
                op,
                applied,
            } => {
                s.push_str(&format!(
                    ",\"db\":\"{}\",\"version\":{version},\"rel\":\"{}\",\"op\":\"{}\",\"applied\":{applied}",
                    json_escape(db),
                    json_escape(rel),
                    json_escape(op)
                ));
            }
            TraceEvent::ViewRefreshed {
                view,
                added,
                removed,
                total,
            } => {
                s.push_str(&format!(
                    ",\"view\":\"{}\",\"added\":{added},\"removed\":{removed},\"total\":{total}",
                    json_escape(view)
                ));
            }
            TraceEvent::ViewRederived {
                view,
                overdeleted,
                rederived,
                total,
            } => {
                s.push_str(&format!(
                    ",\"view\":\"{}\",\"overdeleted\":{overdeleted},\"rederived\":{rederived},\"total\":{total}",
                    json_escape(view)
                ));
            }
        }
        s.push('}');
        s
    }
}

/// Destination for [`TraceEvent`]s.
///
/// Sinks must be shareable across the worker threads of a parallel
/// solve (events may arrive concurrently), hence the `Send + Sync`
/// bound and the `&self` receiver.
pub trait TraceSink: Send + Sync {
    /// Receives one event. May be called from multiple threads.
    fn record(&self, event: &TraceEvent);

    /// Whether the sink wants events at all. A sink returning `false`
    /// (like [`NullSink`]) makes the whole tracer inert: emit closures
    /// never run and no operator clocks are read — this is what the
    /// "< 2% overhead with tracing disabled" contract measures.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// A sink that drops every event and reports itself disabled, so a
/// tracer built over it behaves exactly like no tracer at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &TraceEvent) {}

    fn is_enabled(&self) -> bool {
        false
    }
}

/// An in-memory sink buffering events in arrival order. Powers the
/// `EXPLAIN` report and the trace-accounting property tests.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<TraceEvent>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of every event recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("recorder lock poisoned").clone()
    }

    /// Drains and returns the recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("recorder lock poisoned"))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recorder lock poisoned").len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for Recorder {
    fn record(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("recorder lock poisoned")
            .push(event.clone());
    }
}

/// A sink writing one JSON object per line to any `Write` target.
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps `writer`; each event becomes one `\n`-terminated line.
    pub fn new(writer: W) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }

    /// Unwraps the sink, returning the writer (flushing is the
    /// caller's business).
    pub fn into_inner(self) -> W {
        self.writer.into_inner().expect("json sink lock poisoned")
    }
}

impl<W: Write + Send> TraceSink for JsonLinesSink<W> {
    fn record(&self, event: &TraceEvent) {
        let mut w = self.writer.lock().expect("json sink lock poisoned");
        // Tracing is best-effort: a full disk must not abort a solve.
        let _ = writeln!(w, "{}", event.to_json());
    }
}

impl<W: Write + Send> fmt::Debug for JsonLinesSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

/// A sink broadcasting every event to several downstream sinks, so one
/// run can feed both a [`Recorder`] (for `EXPLAIN`) and a
/// [`JsonLinesSink`] (for `--trace=FILE`) at once.
///
/// Disabled downstreams are skipped at record time, and a fanout whose
/// downstreams are all disabled reports itself disabled, keeping the
/// tracer inert.
pub struct Fanout {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl Fanout {
    /// Broadcasts to `sinks` (order preserved).
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Self { sinks }
    }
}

impl TraceSink for Fanout {
    fn record(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            if sink.is_enabled() {
                sink.record(event);
            }
        }
    }

    fn is_enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.is_enabled())
    }
}

impl fmt::Debug for Fanout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fanout")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

/// The handle algorithms emit through, carried by every meter.
///
/// A tracer is either *disabled* (the default — one cached-bool branch
/// per emit site, nothing else) or *active* over a shared
/// [`TraceSink`]. Cloning shares the sink.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
    active: bool,
}

impl Tracer {
    /// The inert tracer: every emit is a single predictable branch.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A tracer delivering events to `sink`. If the sink reports
    /// itself disabled (see [`TraceSink::is_enabled`]), the tracer is
    /// inert exactly like [`Tracer::disabled`].
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        let active = sink.is_enabled();
        Self {
            sink: Some(sink),
            active,
        }
    }

    /// True if emitted events actually reach a sink.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Emits the event built by `f` — but only when active; a disabled
    /// tracer never runs the closure.
    #[inline]
    pub fn emit_with<F: FnOnce() -> TraceEvent>(&self, f: F) {
        if self.active {
            if let Some(sink) = &self.sink {
                sink.record(&f());
            }
        }
    }

    /// Starts a wall-clock span: `Some(now)` when active, `None` when
    /// disabled (so inert tracers never read the clock).
    #[inline]
    pub fn span_start(&self) -> Option<Instant> {
        if self.active {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Microseconds elapsed since [`span_start`](Self::span_start)
    /// (0 for a disabled span).
    #[inline]
    pub fn span_micros(span: Option<Instant>) -> u64 {
        span.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0)
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("active", &self.active)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_runs_closures() {
        let t = Tracer::disabled();
        t.emit_with(|| panic!("closure must not run"));
        assert!(!t.is_active());
        assert_eq!(t.span_start(), None);
        assert_eq!(Tracer::span_micros(None), 0);
    }

    #[test]
    fn null_sink_makes_tracer_inert() {
        let t = Tracer::new(Arc::new(NullSink));
        assert!(!t.is_active());
        t.emit_with(|| panic!("closure must not run under NullSink"));
    }

    #[test]
    fn recorder_buffers_in_order() {
        let rec = Arc::new(Recorder::new());
        let t = Tracer::new(rec.clone());
        assert!(t.is_active());
        t.emit_with(|| TraceEvent::TierStart {
            strategy: "yannakakis",
        });
        t.emit_with(|| TraceEvent::RaceWinner {
            strategy: "treewidth",
        });
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind(), "tier_start");
        assert_eq!(events[1].kind(), "race_winner");
        assert_eq!(rec.take().len(), 2);
        assert!(rec.is_empty());
    }

    #[test]
    fn json_lines_sink_writes_one_object_per_line() {
        let sink = JsonLinesSink::new(Vec::<u8>::new());
        sink.record(&TraceEvent::Operator {
            op: OperatorKind::HashJoin,
            left_rows: 3,
            right_rows: 4,
            output_rows: 5,
            micros: 17,
        });
        sink.record(&TraceEvent::Exhausted {
            phase: "backtracking",
            reason: ExhaustionReason::StepLimitExceeded,
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"operator\""));
        assert!(lines[0].contains("\"op\":\"hash_join\""));
        assert!(lines[0].contains("\"output_rows\":5"));
        assert!(lines[1].contains("\"reason\":\"step limit exceeded\""));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let ev = TraceEvent::RaceLoser {
            strategy: "backtracking",
            cause: "cancelled: \"winner\"".into(),
        };
        let json = ev.to_json();
        assert!(json.contains("\\\"winner\\\""));
    }

    #[test]
    fn every_event_kind_serialises() {
        let events = [
            TraceEvent::TierStart { strategy: "s" },
            TraceEvent::TierEnd {
                strategy: "s",
                outcome: "decided".into(),
                micros: 1,
                steps: 2,
                tuples: 3,
            },
            TraceEvent::RaceWinner { strategy: "s" },
            TraceEvent::RaceLoser {
                strategy: "s",
                cause: "c".into(),
            },
            TraceEvent::Exhausted {
                phase: "p",
                reason: ExhaustionReason::DeadlineExceeded,
            },
            TraceEvent::Search {
                nodes: 1,
                backtracks: 2,
                revisions: 3,
                solutions: 1,
            },
            TraceEvent::Propagation {
                algorithm: "ac3",
                revisions: 9,
                removals: 4,
                wipeout: false,
            },
            TraceEvent::KConsistency {
                k: 3,
                candidates: 10,
                survivors: 7,
            },
            TraceEvent::PlanChosen {
                relations: 3,
                order: vec![2, 0, 1],
                est_rows: vec![10, 40, 12],
                cross_steps: vec![1],
                engine: "binary",
                reason: "acyclic join graph".into(),
            },
            TraceEvent::WcojLevel {
                level: 0,
                attr: 2,
                relations: 3,
                matches: 17,
            },
            TraceEvent::IndexBuilt {
                attrs: 2,
                rows: 40,
                distinct_keys: 11,
            },
            TraceEvent::Operator {
                op: OperatorKind::Semijoin,
                left_rows: 5,
                right_rows: 6,
                output_rows: 4,
                micros: 2,
            },
            TraceEvent::YannakakisSweep {
                direction: "bottom_up",
                semijoins: 8,
            },
            TraceEvent::Decomposition {
                width: 2,
                bags: 5,
                largest_bag: 3,
            },
            TraceEvent::DpTable {
                bag: 0,
                bag_size: 3,
                rows: 12,
            },
            TraceEvent::DatalogIteration {
                iteration: 2,
                delta_facts: 5,
                total_facts: 40,
            },
            TraceEvent::RpqCertain {
                pairs: 16,
                certain: 3,
            },
            TraceEvent::RequestAdmitted {
                id: 7,
                lane: "heavy",
            },
            TraceEvent::RequestRejected {
                id: 8,
                reason: "overloaded: heavy lane full".into(),
            },
            TraceEvent::CacheHit {
                db: "g".into(),
                version: 2,
                invariant: 0xbeef,
            },
            TraceEvent::CacheMiss {
                db: "g".into(),
                version: 2,
                invariant: 0xbeef,
            },
            TraceEvent::ShutdownDrain {
                queued: 3,
                inflight: 2,
            },
            TraceEvent::WorkerPanicked {
                id: 11,
                lane: "heavy",
            },
            TraceEvent::RequestExpired {
                id: 12,
                at: "dequeue",
                waited_micros: 1500,
            },
            TraceEvent::RequestDegraded { id: 13 },
            TraceEvent::SnapshotWritten {
                db: "g".into(),
                version: 3,
                bytes: 512,
            },
            TraceEvent::LogReplayed {
                db: "g".into(),
                version: 3,
                records: 2,
                torn_truncated: true,
            },
            TraceEvent::LogCompacted {
                db: "g".into(),
                version: 3,
                folded: 8,
            },
            TraceEvent::ConnectionOpened {
                conn: 4,
                peer: "127.0.0.1:5000".into(),
            },
            TraceEvent::ConnectionClosed {
                conn: 4,
                requests: 17,
                clean: true,
            },
            TraceEvent::ConnectionTimedOut {
                conn: 5,
                idle_ms: 2000,
            },
            TraceEvent::DeltaApplied {
                db: "g".into(),
                version: 4,
                rel: "E".into(),
                op: "insert",
                applied: true,
            },
            TraceEvent::ViewRefreshed {
                view: "Q".into(),
                added: 2,
                removed: 0,
                total: 9,
            },
            TraceEvent::ViewRederived {
                view: "T".into(),
                overdeleted: 5,
                rederived: 3,
                total: 21,
            },
        ];
        for ev in &events {
            let json = ev.to_json();
            assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
            assert!(json.contains(&format!("\"event\":\"{}\"", ev.kind())));
        }
    }

    #[test]
    fn fanout_broadcasts_and_tracks_enablement() {
        let a = Arc::new(Recorder::new());
        let b = Arc::new(Recorder::new());
        let fan = Fanout::new(vec![a.clone(), Arc::new(NullSink), b.clone()]);
        assert!(fan.is_enabled());
        fan.record(&TraceEvent::RequestAdmitted {
            id: 1,
            lane: "normal",
        });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        let inert = Fanout::new(vec![Arc::new(NullSink)]);
        assert!(!inert.is_enabled());
        let t = Tracer::new(Arc::new(inert));
        t.emit_with(|| panic!("all-disabled fanout must be inert"));
    }
}
