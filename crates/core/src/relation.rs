//! Finite relations: sorted, deduplicated tuple stores.
//!
//! A [`Relation`] is a set of tuples of fixed arity over domain elements
//! encoded as `u32`. Tuples are kept sorted lexicographically and
//! deduplicated, so membership is a binary search and set equality is a
//! slice comparison. This representation is shared by relational
//! structures ([`crate::Structure`]) and by CSP constraint relations.

use crate::error::{CoreError, Result};
use std::fmt;

/// A finite relation of fixed arity over `u32`-encoded domain elements.
///
/// Invariants: every tuple has length `arity`, tuples are sorted
/// lexicographically, and there are no duplicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Box<[u32]>>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: Vec::new(),
        }
    }

    /// Builds a relation from an iterator of tuples, sorting and
    /// deduplicating.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ArityMismatch`] if any tuple has the wrong
    /// length (the symbol name in the error is a placeholder `_`; use
    /// [`Relation::from_tuples_named`] when the relation symbol is
    /// known).
    pub fn from_tuples<I, T>(arity: usize, tuples: I) -> Result<Self>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u32]>,
    {
        Self::from_tuples_named("_", arity, tuples)
    }

    /// [`Relation::from_tuples`] with the real relation symbol threaded
    /// into any [`CoreError::ArityMismatch`], so errors name the
    /// offending relation instead of the placeholder `_`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ArityMismatch`] naming `symbol` if any
    /// tuple has the wrong length.
    pub fn from_tuples_named<I, T>(symbol: &str, arity: usize, tuples: I) -> Result<Self>
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u32]>,
    {
        let mut out: Vec<Box<[u32]>> = Vec::new();
        for t in tuples {
            let t = t.as_ref();
            if t.len() != arity {
                return Err(CoreError::ArityMismatch {
                    symbol: symbol.into(),
                    expected: arity,
                    got: t.len(),
                });
            }
            out.push(t.into());
        }
        out.sort_unstable();
        out.dedup();
        Ok(Relation { arity, tuples: out })
    }

    /// The full relation `D^arity` over a domain of the given size.
    ///
    /// Used for "no constraint" relations and for test oracles; beware the
    /// size is `domain_size^arity`.
    pub fn full(arity: usize, domain_size: usize) -> Self {
        let mut tuples = Vec::with_capacity(domain_size.pow(arity as u32));
        let mut current = vec![0u32; arity];
        if arity == 0 {
            // A single empty tuple: the nullary "true" relation.
            return Relation {
                arity,
                tuples: vec![Box::from([])],
            };
        }
        if domain_size == 0 {
            return Relation::empty(arity);
        }
        loop {
            tuples.push(current.clone().into_boxed_slice());
            // Odometer increment.
            let mut i = arity;
            loop {
                if i == 0 {
                    return Relation { arity, tuples };
                }
                i -= 1;
                current[i] += 1;
                if (current[i] as usize) < domain_size {
                    break;
                }
                current[i] = 0;
            }
        }
    }

    /// Arity of the relation.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, tuple: &[u32]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        self.tuples
            .binary_search_by(|probe| probe.as_ref().cmp(tuple))
            .is_ok()
    }

    /// Inserts a tuple, keeping the sorted/dedup invariant.
    ///
    /// Returns `true` if the tuple was new.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ArityMismatch`] on wrong tuple length.
    pub fn insert(&mut self, tuple: &[u32]) -> Result<bool> {
        if tuple.len() != self.arity {
            return Err(CoreError::ArityMismatch {
                symbol: "_".into(),
                expected: self.arity,
                got: tuple.len(),
            });
        }
        match self
            .tuples
            .binary_search_by(|probe| probe.as_ref().cmp(tuple))
        {
            Ok(_) => Ok(false),
            Err(pos) => {
                self.tuples.insert(pos, tuple.into());
                Ok(true)
            }
        }
    }

    /// Iterates over tuples in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        self.tuples.iter().map(|t| t.as_ref())
    }

    /// Maximum element mentioned in any tuple, or `None` if empty/nullary.
    pub fn max_element(&self) -> Option<u32> {
        self.tuples
            .iter()
            .filter_map(|t| t.iter().copied().max())
            .max()
    }

    /// Set intersection with another relation of the same arity.
    ///
    /// This implements the constraint-consolidation step of Section 2 of
    /// the paper: multiple constraints on the same scope intersect.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ScopeArityMismatch`] if arities differ.
    pub fn intersect(&self, other: &Relation) -> Result<Relation> {
        if self.arity != other.arity {
            return Err(CoreError::ScopeArityMismatch {
                scope_len: self.arity,
                arity: other.arity,
            });
        }
        // Merge walk over two sorted tuple lists.
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.tuples.len() && j < other.tuples.len() {
            match self.tuples[i].cmp(&other.tuples[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.tuples[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok(Relation {
            arity: self.arity,
            tuples: out,
        })
    }

    /// Set union with another relation of the same arity.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ScopeArityMismatch`] if arities differ.
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        if self.arity != other.arity {
            return Err(CoreError::ScopeArityMismatch {
                scope_len: self.arity,
                arity: other.arity,
            });
        }
        let mut out = Vec::with_capacity(self.len() + other.len());
        out.extend(self.tuples.iter().cloned());
        out.extend(other.tuples.iter().cloned());
        out.sort_unstable();
        out.dedup();
        Ok(Relation {
            arity: self.arity,
            tuples: out,
        })
    }

    /// Projects the relation onto the given column indices (in the given
    /// order, duplicates allowed), deduplicating the result.
    ///
    /// # Panics
    ///
    /// Panics if a column index is out of range.
    pub fn project(&self, columns: &[usize]) -> Relation {
        let mut out: Vec<Box<[u32]>> = self
            .tuples
            .iter()
            .map(|t| columns.iter().map(|&c| t[c]).collect())
            .collect();
        out.sort_unstable();
        out.dedup();
        Relation {
            arity: columns.len(),
            tuples: out,
        }
    }

    /// Keeps only tuples where columns `i` and `j` agree.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn select_eq(&self, i: usize, j: usize) -> Relation {
        assert!(i < self.arity && j < self.arity, "column out of range");
        Relation {
            arity: self.arity,
            tuples: self
                .tuples
                .iter()
                .filter(|t| t[i] == t[j])
                .cloned()
                .collect(),
        }
    }

    /// Keeps only tuples satisfying the predicate.
    pub fn filter(&self, mut keep: impl FnMut(&[u32]) -> bool) -> Relation {
        Relation {
            arity: self.arity,
            tuples: self.tuples.iter().filter(|t| keep(t)).cloned().collect(),
        }
    }

    /// True if `self ⊆ other` (same arity assumed).
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        self.iter().all(|t| other.contains(t))
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, x) in t.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{x}")?;
            }
            write!(f, ")")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(arity: usize, ts: &[&[u32]]) -> Relation {
        Relation::from_tuples(arity, ts.iter().copied()).unwrap()
    }

    #[test]
    fn from_tuples_sorts_and_dedups() {
        let r = rel(2, &[&[1, 0], &[0, 1], &[1, 0]]);
        assert_eq!(r.len(), 2);
        let ts: Vec<_> = r.iter().collect();
        assert_eq!(ts, vec![&[0u32, 1][..], &[1, 0]]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        assert!(Relation::from_tuples(2, [&[1u32, 2, 3][..]]).is_err());
        let mut r = Relation::empty(2);
        assert!(r.insert(&[1]).is_err());
    }

    #[test]
    fn arity_mismatch_names_the_symbol() {
        let err = Relation::from_tuples_named("Edge", 2, [&[1u32][..]]).unwrap_err();
        match &err {
            CoreError::ArityMismatch {
                symbol,
                expected,
                got,
            } => {
                assert_eq!(symbol, "Edge");
                assert_eq!((*expected, *got), (2, 1));
            }
            other => panic!("expected ArityMismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("Edge"));
        // The unnamed constructor still reports the placeholder.
        let err = Relation::from_tuples(2, [&[1u32][..]]).unwrap_err();
        assert!(err.to_string().contains('_'));
    }

    #[test]
    fn contains_and_insert() {
        let mut r = Relation::empty(2);
        assert!(!r.contains(&[0, 1]));
        assert!(r.insert(&[0, 1]).unwrap());
        assert!(!r.insert(&[0, 1]).unwrap());
        assert!(r.contains(&[0, 1]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn full_relation_has_expected_size() {
        let r = Relation::full(2, 3);
        assert_eq!(r.len(), 9);
        assert!(r.contains(&[2, 2]));
        assert!(r.contains(&[0, 0]));
        let r = Relation::full(3, 2);
        assert_eq!(r.len(), 8);
        // degenerate cases
        assert_eq!(Relation::full(0, 5).len(), 1);
        assert_eq!(Relation::full(2, 0).len(), 0);
    }

    #[test]
    fn intersect_is_set_intersection() {
        let a = rel(2, &[&[0, 0], &[0, 1], &[1, 1]]);
        let b = rel(2, &[&[0, 1], &[1, 0], &[1, 1]]);
        let c = a.intersect(&b).unwrap();
        assert_eq!(c, rel(2, &[&[0, 1], &[1, 1]]));
        assert!(a.intersect(&Relation::empty(3)).is_err());
    }

    #[test]
    fn union_is_set_union() {
        let a = rel(1, &[&[0], &[2]]);
        let b = rel(1, &[&[1], &[2]]);
        assert_eq!(a.union(&b).unwrap(), rel(1, &[&[0], &[1], &[2]]));
    }

    #[test]
    fn project_reorders_and_dedups() {
        let r = rel(3, &[&[0, 1, 2], &[0, 1, 3], &[4, 5, 6]]);
        let p = r.project(&[1, 0]);
        assert_eq!(p, rel(2, &[&[1, 0], &[5, 4]]));
        let dup = r.project(&[0, 0]);
        assert_eq!(dup, rel(2, &[&[0, 0], &[4, 4]]));
    }

    #[test]
    fn select_eq_keeps_diagonal() {
        let r = rel(2, &[&[0, 0], &[0, 1], &[1, 1]]);
        assert_eq!(r.select_eq(0, 1), rel(2, &[&[0, 0], &[1, 1]]));
    }

    #[test]
    fn subset_check() {
        let a = rel(1, &[&[0]]);
        let b = rel(1, &[&[0], &[1]]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(Relation::empty(1).is_subset_of(&a));
    }

    #[test]
    fn max_element() {
        assert_eq!(rel(2, &[&[0, 7], &[3, 1]]).max_element(), Some(7));
        assert_eq!(Relation::empty(2).max_element(), None);
    }

    #[test]
    fn display_format() {
        let r = rel(2, &[&[0, 1], &[1, 0]]);
        assert_eq!(r.to_string(), "{(0,1), (1,0)}");
    }
}
