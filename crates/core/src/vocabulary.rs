//! Relational vocabularies (signatures).
//!
//! A vocabulary is a finite list of relation symbols, each with a fixed
//! arity. Structures, conjunctive queries, and Datalog EDBs are all typed
//! by a vocabulary. Vocabularies are immutable once built and shared via
//! [`std::sync::Arc`] so that structures over the same signature can be
//! compared cheaply by pointer or by content.

use crate::error::{CoreError, Result};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of a relation symbol within one [`Vocabulary`].
///
/// Indices are dense (`0..voc.len()`), so they can be used to index
/// per-symbol side tables directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SymbolInfo {
    name: String,
    arity: usize,
}

/// An immutable relational signature: named relation symbols with arities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vocabulary {
    symbols: Vec<SymbolInfo>,
    by_name: HashMap<String, RelId>,
}

impl Vocabulary {
    /// Builds a vocabulary from `(name, arity)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateSymbol`] if a name repeats.
    pub fn new<I, S>(symbols: I) -> Result<Arc<Self>>
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let mut builder = VocabularyBuilder::new();
        for (name, arity) in symbols {
            builder.add(name, arity)?;
        }
        Ok(builder.finish())
    }

    /// Number of relation symbols.
    #[inline]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True if the vocabulary declares no symbols.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Looks up a symbol by name.
    pub fn id(&self, name: &str) -> Result<RelId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::UnknownSymbol(name.to_owned()))
    }

    /// True if the vocabulary declares `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// The name of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this vocabulary.
    #[inline]
    pub fn name(&self, id: RelId) -> &str {
        &self.symbols[id.index()].name
    }

    /// The arity of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this vocabulary.
    #[inline]
    pub fn arity(&self, id: RelId) -> usize {
        self.symbols[id.index()].arity
    }

    /// Iterates over `(id, name, arity)` triples in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &str, usize)> + '_ {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (RelId(i as u32), s.name.as_str(), s.arity))
    }

    /// All symbol ids in declaration order.
    pub fn ids(&self) -> impl Iterator<Item = RelId> {
        (0..self.symbols.len() as u32).map(RelId)
    }

    /// Maximum arity over all symbols (0 for the empty vocabulary).
    pub fn max_arity(&self) -> usize {
        self.symbols.iter().map(|s| s.arity).max().unwrap_or(0)
    }

    /// True if every symbol has arity at most `k` ("k-ary vocabulary" in
    /// the sense of Definition 5.4 of the paper).
    pub fn is_k_ary(&self, k: usize) -> bool {
        self.symbols.iter().all(|s| s.arity <= k)
    }
}

impl fmt::Display for Vocabulary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.symbols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}/{}", s.name, s.arity)?;
        }
        write!(f, "}}")
    }
}

/// Incremental builder for [`Vocabulary`].
#[derive(Debug, Default)]
pub struct VocabularyBuilder {
    symbols: Vec<SymbolInfo>,
    by_name: HashMap<String, RelId>,
}

impl VocabularyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a symbol, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateSymbol`] if the name is taken.
    pub fn add(&mut self, name: impl Into<String>, arity: usize) -> Result<RelId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(CoreError::DuplicateSymbol(name));
        }
        let id = RelId(self.symbols.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.symbols.push(SymbolInfo { name, arity });
        Ok(id)
    }

    /// Adds a symbol if absent; returns the existing id when present with
    /// the same arity.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ArityMismatch`] if the name exists with a
    /// different arity.
    pub fn add_or_get(&mut self, name: &str, arity: usize) -> Result<RelId> {
        if let Some(&id) = self.by_name.get(name) {
            let declared = self.symbols[id.index()].arity;
            if declared != arity {
                return Err(CoreError::ArityMismatch {
                    symbol: name.to_owned(),
                    expected: declared,
                    got: arity,
                });
            }
            return Ok(id);
        }
        self.add(name.to_owned(), arity)
    }

    /// Finalizes the vocabulary.
    pub fn finish(self) -> Arc<Vocabulary> {
        Arc::new(Vocabulary {
            symbols: self.symbols,
            by_name: self.by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_lookup_roundtrip() {
        let voc = Vocabulary::new([("E", 2), ("P", 1), ("T", 3)]).unwrap();
        assert_eq!(voc.len(), 3);
        let e = voc.id("E").unwrap();
        assert_eq!(voc.name(e), "E");
        assert_eq!(voc.arity(e), 2);
        assert_eq!(voc.arity(voc.id("T").unwrap()), 3);
        assert!(voc.contains("P"));
        assert!(!voc.contains("Q"));
        assert_eq!(voc.max_arity(), 3);
        assert!(voc.is_k_ary(3));
        assert!(!voc.is_k_ary(2));
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let err = Vocabulary::new([("E", 2), ("E", 2)]).unwrap_err();
        assert_eq!(err, CoreError::DuplicateSymbol("E".into()));
    }

    #[test]
    fn unknown_symbol_lookup_fails() {
        let voc = Vocabulary::new([("E", 2)]).unwrap();
        assert_eq!(
            voc.id("X").unwrap_err(),
            CoreError::UnknownSymbol("X".into())
        );
    }

    #[test]
    fn empty_vocabulary() {
        let voc = Vocabulary::new(std::iter::empty::<(&str, usize)>()).unwrap();
        assert!(voc.is_empty());
        assert_eq!(voc.max_arity(), 0);
        assert!(voc.is_k_ary(0));
    }

    #[test]
    fn add_or_get_same_arity_is_idempotent() {
        let mut b = VocabularyBuilder::new();
        let a = b.add_or_get("E", 2).unwrap();
        let c = b.add_or_get("E", 2).unwrap();
        assert_eq!(a, c);
        assert!(b.add_or_get("E", 3).is_err());
    }

    #[test]
    fn display_lists_symbols() {
        let voc = Vocabulary::new([("E", 2), ("P", 1)]).unwrap();
        assert_eq!(voc.to_string(), "{E/2, P/1}");
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let voc = Vocabulary::new([("A", 1), ("B", 2), ("C", 3)]).unwrap();
        let ids: Vec<_> = voc.ids().collect();
        assert_eq!(ids, vec![RelId(0), RelId(1), RelId(2)]);
        let names: Vec<_> = voc.iter().map(|(_, n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }
}
