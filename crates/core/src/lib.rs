//! # cspdb-core
//!
//! Core data model for *constraint-db*, a Rust reproduction of
//! Moshe Y. Vardi, **"Constraint Satisfaction and Database Theory: a
//! Tutorial"**, PODS 2000.
//!
//! This crate implements Section 2 of the paper:
//!
//! * [`Vocabulary`] — relational signatures;
//! * [`Relation`] — finite relations (sorted tuple sets over `u32`);
//! * [`Structure`] — finite relational structures;
//! * [`is_homomorphism`] / [`PartialHom`] — (partial) homomorphisms, the
//!   central notion tying CSP to database theory;
//! * [`CspInstance`] — the traditional AI formulation `(V, D, C)` with
//!   conversions to and from the homomorphism formulation
//!   ([`CspInstance::to_homomorphism`], [`CspInstance::from_homomorphism`]);
//! * [`sum`] — the `A + B` pair encoding over `σ1 + σ2` of Section 4;
//! * [`graphs`] — clique/cycle/path constructors (`CSP(K_k)` is
//!   k-colorability).
//!
//! Higher crates build everything else on these types: join evaluation
//! (`cspdb-relalg`), conjunctive queries (`cspdb-cq`), search
//! (`cspdb-solver`), pebble games and consistency (`cspdb-consistency`),
//! Datalog (`cspdb-datalog`), Schaefer's dichotomy (`cspdb-schaefer`),
//! decompositions (`cspdb-decomp`), and regular path queries
//! (`cspdb-rpq`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
mod csp;
mod error;
pub mod faults;
pub mod graphs;
mod homomorphism;
mod relation;
mod structure;
pub mod sum;
pub mod trace;
mod vocabulary;

pub use budget::{
    Answer, Budget, CancelToken, ExhaustionReason, Meter, Metering, ResourceUsage, SharedMeter,
};
pub use csp::{is_coherent, make_coherent, Constraint, CspInstance};
pub use error::{CoreError, Result};
pub use faults::{silence_injected_panics, FaultHandle, FaultInjector, FaultPlan, FaultSite};
pub use homomorphism::{compose, is_homomorphism, PartialHom};
pub use relation::Relation;
pub use structure::Structure;
pub use trace::{
    Fanout, JsonLinesSink, NullSink, OperatorKind, Recorder, TraceEvent, TraceSink, Tracer,
};
pub use vocabulary::{RelId, Vocabulary, VocabularyBuilder};
