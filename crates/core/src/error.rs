//! Error type shared by the core data model.

use std::fmt;

/// Errors raised while constructing or combining core objects.
///
/// Every constructor in this crate validates its inputs eagerly so that
/// downstream algorithms can assume well-formedness (correct arities,
/// in-range domain elements, matching vocabularies) without re-checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A tuple was inserted into a relation with the wrong number of fields.
    ArityMismatch {
        /// Relation symbol name involved.
        symbol: String,
        /// Arity declared in the vocabulary.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A tuple referenced a domain element `>= domain_size`.
    ElementOutOfRange {
        /// Offending element.
        element: u32,
        /// Domain size of the structure.
        domain_size: usize,
    },
    /// A relation symbol name was declared twice in one vocabulary.
    DuplicateSymbol(String),
    /// A symbol was looked up that the vocabulary does not contain.
    UnknownSymbol(String),
    /// Two objects over different vocabularies were combined.
    VocabularyMismatch,
    /// A constraint scope referenced a variable `>= num_vars`.
    VariableOutOfRange {
        /// Offending variable.
        variable: u32,
        /// Number of variables of the instance.
        num_vars: usize,
    },
    /// A constraint's relation arity does not match its scope length.
    ScopeArityMismatch {
        /// Scope length.
        scope_len: usize,
        /// Relation arity.
        arity: usize,
    },
    /// An operation required a non-empty domain.
    EmptyDomain,
    /// A budgeted run exhausted a resource limit before completing.
    ///
    /// `spent` and `limit` are in the resource's natural unit (steps,
    /// tuples, or milliseconds for `wall-clock`); both are 0 for
    /// cooperative cancellation, which has no numeric limit.
    ResourceExhausted {
        /// Which resource ran out (`"steps"`, `"tuples"`,
        /// `"wall-clock"`, or `"cancellation"`).
        resource: &'static str,
        /// Amount consumed when the limit tripped.
        spent: u64,
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                symbol,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for symbol `{symbol}`: expected {expected}, got {got}"
            ),
            CoreError::ElementOutOfRange {
                element,
                domain_size,
            } => write!(
                f,
                "domain element {element} out of range for domain of size {domain_size}"
            ),
            CoreError::DuplicateSymbol(name) => {
                write!(f, "relation symbol `{name}` declared twice")
            }
            CoreError::UnknownSymbol(name) => write!(f, "unknown relation symbol `{name}`"),
            CoreError::VocabularyMismatch => write!(f, "objects use different vocabularies"),
            CoreError::VariableOutOfRange { variable, num_vars } => write!(
                f,
                "variable {variable} out of range for instance with {num_vars} variables"
            ),
            CoreError::ScopeArityMismatch { scope_len, arity } => write!(
                f,
                "constraint scope of length {scope_len} paired with relation of arity {arity}"
            ),
            CoreError::EmptyDomain => write!(f, "operation requires a non-empty domain"),
            CoreError::ResourceExhausted {
                resource,
                spent,
                limit,
            } => write!(
                f,
                "resource `{resource}` exhausted: spent {spent} of limit {limit}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenient result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::ArityMismatch {
            symbol: "E".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("E"));
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('3'));

        let e = CoreError::ElementOutOfRange {
            element: 7,
            domain_size: 3,
        };
        assert!(e.to_string().contains('7'));

        let e = CoreError::UnknownSymbol("R".into());
        assert!(e.to_string().contains('R'));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&CoreError::VocabularyMismatch);
    }
}
