//! Finite relational structures.
//!
//! A [`Structure`] interprets every symbol of a shared [`Vocabulary`] by a
//! [`Relation`] over a finite domain `{0, 1, ..., domain_size - 1}`. Both
//! sides of the homomorphism problem — the "variable" structure **A** and
//! the "value" structure **B** of the paper — are `Structure`s.

use crate::error::{CoreError, Result};
use crate::relation::Relation;
use crate::vocabulary::{RelId, Vocabulary};
use std::fmt;
use std::sync::Arc;

/// A finite relational structure over a fixed vocabulary.
///
/// Invariants: `relations.len() == voc.len()`, relation `i` has the arity
/// declared for symbol `i`, and every tuple element is `< domain_size`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Structure {
    voc: Arc<Vocabulary>,
    domain_size: usize,
    relations: Vec<Relation>,
}

impl Structure {
    /// Creates a structure with all relations empty.
    pub fn new(voc: Arc<Vocabulary>, domain_size: usize) -> Self {
        let relations = voc.ids().map(|id| Relation::empty(voc.arity(id))).collect();
        Structure {
            voc,
            domain_size,
            relations,
        }
    }

    /// The vocabulary of the structure.
    #[inline]
    pub fn vocabulary(&self) -> &Arc<Vocabulary> {
        &self.voc
    }

    /// Size of the domain `{0, ..., n-1}`.
    #[inline]
    pub fn domain_size(&self) -> usize {
        self.domain_size
    }

    /// Iterator over all domain elements.
    pub fn domain(&self) -> impl Iterator<Item = u32> {
        0..self.domain_size as u32
    }

    /// Inserts a fact `R(t)`.
    ///
    /// # Errors
    ///
    /// Arity and range are validated.
    pub fn insert(&mut self, rel: RelId, tuple: &[u32]) -> Result<bool> {
        let arity = self.voc.arity(rel);
        if tuple.len() != arity {
            return Err(CoreError::ArityMismatch {
                symbol: self.voc.name(rel).to_owned(),
                expected: arity,
                got: tuple.len(),
            });
        }
        for &x in tuple {
            if x as usize >= self.domain_size {
                return Err(CoreError::ElementOutOfRange {
                    element: x,
                    domain_size: self.domain_size,
                });
            }
        }
        self.relations[rel.index()].insert(tuple)
    }

    /// Inserts a fact by symbol name.
    ///
    /// # Errors
    ///
    /// Unknown names, arity, and range are validated.
    pub fn insert_by_name(&mut self, name: &str, tuple: &[u32]) -> Result<bool> {
        let id = self.voc.id(name)?;
        self.insert(id, tuple)
    }

    /// Replaces the whole interpretation of a symbol.
    ///
    /// # Errors
    ///
    /// Validates arity and element range.
    pub fn set_relation(&mut self, rel: RelId, relation: Relation) -> Result<()> {
        let arity = self.voc.arity(rel);
        if relation.arity() != arity {
            return Err(CoreError::ArityMismatch {
                symbol: self.voc.name(rel).to_owned(),
                expected: arity,
                got: relation.arity(),
            });
        }
        if let Some(m) = relation.max_element() {
            if m as usize >= self.domain_size {
                return Err(CoreError::ElementOutOfRange {
                    element: m,
                    domain_size: self.domain_size,
                });
            }
        }
        self.relations[rel.index()] = relation;
        Ok(())
    }

    /// The interpretation of a symbol.
    #[inline]
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.relations[rel.index()]
    }

    /// The interpretation of a symbol looked up by name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownSymbol`] for unknown names.
    pub fn relation_by_name(&self, name: &str) -> Result<&Relation> {
        Ok(self.relation(self.voc.id(name)?))
    }

    /// Iterates over `(RelId, &Relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (RelId, &Relation)> + '_ {
        self.voc.ids().map(move |id| (id, self.relation(id)))
    }

    /// Total number of facts (tuples across all relations).
    pub fn fact_count(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Size measure `|domain| + #facts` used for complexity accounting.
    pub fn size(&self) -> usize {
        self.domain_size + self.fact_count()
    }

    /// True if all relations are empty.
    pub fn has_no_facts(&self) -> bool {
        self.relations.iter().all(Relation::is_empty)
    }

    /// The substructure induced by a set of elements: keeps only tuples all
    /// of whose entries are in `elements`, *without renaming* (domain size
    /// is unchanged). Used by pebble-game semantics where configurations
    /// refer to original element ids.
    pub fn induced_facts(&self, elements: &[u32]) -> Structure {
        let mut member = vec![false; self.domain_size];
        for &e in elements {
            member[e as usize] = true;
        }
        let mut out = Structure::new(self.voc.clone(), self.domain_size);
        for (id, rel) in self.relations() {
            let filtered = rel.filter(|t| t.iter().all(|&x| member[x as usize]));
            out.relations[id.index()] = filtered;
        }
        out
    }

    /// Disjoint union of two structures over the same vocabulary; the
    /// second structure's elements are shifted by `self.domain_size()`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VocabularyMismatch`] if vocabularies differ.
    pub fn disjoint_union(&self, other: &Structure) -> Result<Structure> {
        if self.voc != other.voc {
            return Err(CoreError::VocabularyMismatch);
        }
        let shift = self.domain_size as u32;
        let mut out = Structure::new(self.voc.clone(), self.domain_size + other.domain_size);
        for (id, rel) in self.relations() {
            for t in rel.iter() {
                out.insert(id, t)?;
            }
        }
        let mut shifted = Vec::new();
        for (id, rel) in other.relations() {
            for t in rel.iter() {
                shifted.clear();
                shifted.extend(t.iter().map(|&x| x + shift));
                out.insert(id, &shifted)?;
            }
        }
        Ok(out)
    }

    /// Direct product of two structures over the same vocabulary: domain is
    /// the cartesian product (encoded as `a * other.domain_size + b`) and a
    /// tuple is in a product relation iff both projections are facts.
    ///
    /// Products are the canonical "and" construction for homomorphisms:
    /// `hom(X, A×B)` iff `hom(X, A)` and `hom(X, B)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::VocabularyMismatch`] if vocabularies differ.
    pub fn product(&self, other: &Structure) -> Result<Structure> {
        if self.voc != other.voc {
            return Err(CoreError::VocabularyMismatch);
        }
        let n2 = other.domain_size as u32;
        let mut out = Structure::new(self.voc.clone(), self.domain_size * other.domain_size);
        let mut tuple = Vec::new();
        for (id, rel) in self.relations() {
            let rel2 = other.relation(id);
            for t1 in rel.iter() {
                for t2 in rel2.iter() {
                    tuple.clear();
                    tuple.extend(t1.iter().zip(t2.iter()).map(|(&a, &b)| a * n2 + b));
                    out.insert(id, &tuple)?;
                }
            }
        }
        Ok(out)
    }

    /// Renames the domain through `map` (not necessarily injective),
    /// producing a structure with domain size `new_size`. The image of
    /// every fact becomes a fact — i.e. this is the homomorphic image.
    ///
    /// # Errors
    ///
    /// Validates that mapped elements are `< new_size`.
    pub fn map_domain(&self, map: &[u32], new_size: usize) -> Result<Structure> {
        assert_eq!(map.len(), self.domain_size, "map must cover the domain");
        let mut out = Structure::new(self.voc.clone(), new_size);
        let mut tuple = Vec::new();
        for (id, rel) in self.relations() {
            for t in rel.iter() {
                tuple.clear();
                tuple.extend(t.iter().map(|&x| map[x as usize]));
                out.insert(id, &tuple)?;
            }
        }
        Ok(out)
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "structure over {} with |domain| = {}",
            self.voc, self.domain_size
        )?;
        for (id, rel) in self.relations() {
            writeln!(f, "  {} = {}", self.voc.name(id), rel)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocabulary::Vocabulary;

    fn graph_voc() -> Arc<Vocabulary> {
        Vocabulary::new([("E", 2)]).unwrap()
    }

    #[test]
    fn insert_and_query_facts() {
        let mut s = Structure::new(graph_voc(), 3);
        assert!(s.insert_by_name("E", &[0, 1]).unwrap());
        assert!(!s.insert_by_name("E", &[0, 1]).unwrap());
        assert!(s.relation_by_name("E").unwrap().contains(&[0, 1]));
        assert_eq!(s.fact_count(), 1);
        assert_eq!(s.size(), 4);
    }

    #[test]
    fn out_of_range_and_arity_rejected() {
        let mut s = Structure::new(graph_voc(), 2);
        assert!(matches!(
            s.insert_by_name("E", &[0, 5]),
            Err(CoreError::ElementOutOfRange { .. })
        ));
        assert!(matches!(
            s.insert_by_name("E", &[0]),
            Err(CoreError::ArityMismatch { .. })
        ));
        assert!(s.insert_by_name("X", &[0, 1]).is_err());
    }

    #[test]
    fn set_relation_validates() {
        let mut s = Structure::new(graph_voc(), 2);
        let ok = Relation::from_tuples(2, [[0u32, 1]]).unwrap();
        s.set_relation(s.voc.id("E").unwrap(), ok).unwrap();
        let bad_arity = Relation::from_tuples(3, [[0u32, 1, 1]]).unwrap();
        assert!(s.set_relation(s.voc.id("E").unwrap(), bad_arity).is_err());
        let bad_range = Relation::from_tuples(2, [[0u32, 9]]).unwrap();
        assert!(s.set_relation(s.voc.id("E").unwrap(), bad_range).is_err());
    }

    #[test]
    fn induced_facts_filters() {
        let mut s = Structure::new(graph_voc(), 4);
        s.insert_by_name("E", &[0, 1]).unwrap();
        s.insert_by_name("E", &[1, 2]).unwrap();
        s.insert_by_name("E", &[2, 3]).unwrap();
        let sub = s.induced_facts(&[0, 1, 2]);
        let e = sub.relation_by_name("E").unwrap();
        assert!(e.contains(&[0, 1]));
        assert!(e.contains(&[1, 2]));
        assert!(!e.contains(&[2, 3]));
        assert_eq!(sub.domain_size(), 4); // no renaming
    }

    #[test]
    fn disjoint_union_shifts_second() {
        let mut a = Structure::new(graph_voc(), 2);
        a.insert_by_name("E", &[0, 1]).unwrap();
        let mut b = Structure::new(graph_voc(), 2);
        b.insert_by_name("E", &[1, 0]).unwrap();
        let u = a.disjoint_union(&b).unwrap();
        assert_eq!(u.domain_size(), 4);
        let e = u.relation_by_name("E").unwrap();
        assert!(e.contains(&[0, 1]));
        assert!(e.contains(&[3, 2]));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn product_counts_edges() {
        // K2 x K2 (directed both ways) has 2*... each edge pair combines.
        let mut k2 = Structure::new(graph_voc(), 2);
        k2.insert_by_name("E", &[0, 1]).unwrap();
        k2.insert_by_name("E", &[1, 0]).unwrap();
        let p = k2.product(&k2).unwrap();
        assert_eq!(p.domain_size(), 4);
        assert_eq!(p.relation_by_name("E").unwrap().len(), 4);
    }

    #[test]
    fn map_domain_takes_homomorphic_image() {
        let mut path = Structure::new(graph_voc(), 3);
        path.insert_by_name("E", &[0, 1]).unwrap();
        path.insert_by_name("E", &[1, 2]).unwrap();
        // Fold endpoints together: 0,2 -> 0; 1 -> 1.
        let img = path.map_domain(&[0, 1, 0], 2).unwrap();
        let e = img.relation_by_name("E").unwrap();
        assert!(e.contains(&[0, 1]));
        assert!(e.contains(&[1, 0]));
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn vocabulary_mismatch_detected() {
        let a = Structure::new(graph_voc(), 1);
        let other = Structure::new(Vocabulary::new([("F", 2)]).unwrap(), 1);
        assert_eq!(
            a.disjoint_union(&other).unwrap_err(),
            CoreError::VocabularyMismatch
        );
        assert_eq!(
            a.product(&other).unwrap_err(),
            CoreError::VocabularyMismatch
        );
    }
}
