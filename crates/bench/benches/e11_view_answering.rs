//! E11 (Theorem 7.5): view-based certain answers through the constraint
//! template, as the extension size grows (data complexity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_bench::e11_instance;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_view_answering");
    group.sample_size(10);
    for len in [4usize, 8, 16] {
        let (q, views, alphabet, exts) = e11_instance(len);
        group.bench_with_input(BenchmarkId::new("certain_csp_route", len), &(), |b, _| {
            b.iter(|| cspdb_rpq::certain_answer(&q, &views, &alphabet, &exts, 0, len as u32))
        });
    }
    // The small brute-force ground truth for comparison.
    let (q, views, alphabet, exts) = e11_instance(3);
    group.bench_with_input(BenchmarkId::new("certain_bruteforce", 3), &(), |b, _| {
        b.iter(|| cspdb_rpq::certain_answer_bruteforce(&q, &views, &alphabet, &exts, 0, 3, 3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
