//! E7 (Theorem 5.6): establishing strong k-consistency by re-formatting
//! the largest winning strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_core::graphs::{clique, cycle};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_establish");
    group.sample_size(10);
    let k3 = clique(3);
    for n in [5usize, 9, 13] {
        let a = cycle(n);
        group.bench_with_input(BenchmarkId::new("establish_k2", n), &a, |b, a| {
            b.iter(|| cspdb_consistency::establish_strong_k_consistency(a, &k3, 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
