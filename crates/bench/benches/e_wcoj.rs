//! e_wcoj: worst-case-optimal leapfrog joins vs. the binary pipeline.
//!
//! Two cyclic workload families demonstrate the binary-vs-WCOJ
//! crossover the cost gate ([`choose_engine`]) navigates:
//!
//! * **triangle** — `R(0,1) ⋈ S(1,2) ⋈ T(2,0)` over one random digraph
//!   on `V` vertices, swept across edge counts. Sparse graphs
//!   (`N < V^(4/3)`) keep the binary pipeline: its peak intermediate
//!   `≈ N²/V` undercuts the AGM output bound `N^{3/2}`. Dense graphs
//!   flip the inequality and the gate routes to the leapfrog engine,
//!   which materializes only output tuples.
//! * **Loomis–Whitney LW(4)** — four arity-3 relations over four
//!   attributes, every triple of attributes covered. Binary plans must
//!   materialize a large pairwise join before the remaining relations
//!   filter it; the leapfrog engine never does.
//!
//! Before timing, the harness asserts the acceptance criteria on every
//! generated workload: both engines compute identical tuple sets, the
//! gate picks binary on the sparse end and WCOJ on the dense end, and
//! on the dense triangle and LW(4) the leapfrog engine's peak
//! materialization (its output) is strictly below the binary plan's
//! peak intermediate. The measurements double as the machine-readable
//! `BENCH_wcoj.json` at the repo root (consumed by CI and
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_core::budget::Budget;
use cspdb_relalg::{
    agm_sqrt_bound, choose_engine, plan_join_order, wcoj_join_metered, NamedRelation,
};
use std::collections::BTreeSet;
use std::time::Instant;

/// Deterministic xorshift generator so every run (and the CI smoke
/// pass) sees identical workloads.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// `n` distinct loop-free edges of a random digraph on `v` vertices.
fn random_digraph(rng: &mut XorShift, v: u32, n: usize) -> Vec<Vec<u32>> {
    assert!(
        n <= (v as usize) * (v as usize - 1),
        "graph cannot be that dense"
    );
    let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    while edges.len() < n {
        let a = rng.range(0, v as u64 - 1) as u32;
        let b = rng.range(0, v as u64 - 1) as u32;
        if a != b {
            edges.insert((a, b));
        }
    }
    edges.into_iter().map(|(a, b)| vec![a, b]).collect()
}

/// The triangle query `R(0,1) ⋈ S(1,2) ⋈ T(2,0)`, all three relations
/// reading the same edge set — its output is the directed 3-cycles.
fn triangle(edges: &[Vec<u32>]) -> Vec<NamedRelation> {
    vec![
        NamedRelation::new(vec![0, 1], edges.to_vec()),
        NamedRelation::new(vec![1, 2], edges.to_vec()),
        NamedRelation::new(vec![2, 0], edges.to_vec()),
    ]
}

/// A Loomis–Whitney LW(4) instance: four random arity-3 relations, one
/// per 3-subset of the attributes `{0,1,2,3}`, `n` rows each over
/// domain `v`.
fn loomis_whitney(rng: &mut XorShift, v: u32, n: usize) -> Vec<NamedRelation> {
    let schemas: [[u32; 3]; 4] = [[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]];
    schemas
        .iter()
        .map(|schema| {
            let mut rows: BTreeSet<Vec<u32>> = BTreeSet::new();
            while rows.len() < n {
                rows.insert((0..3).map(|_| rng.range(0, v as u64 - 1) as u32).collect());
            }
            NamedRelation::new(schema.to_vec(), rows)
        })
        .collect()
}

/// The canonical (column-order-independent) tuple set of a relation.
fn canonical_rows(rel: &NamedRelation) -> BTreeSet<Vec<u32>> {
    let mut attrs: Vec<u32> = rel.schema().to_vec();
    attrs.sort_unstable();
    rel.project(&attrs).rows().iter().cloned().collect()
}

/// Executes the binary pipeline in its planned order, returning the
/// result, the peak materialized cardinality (inputs included), and the
/// wall time in microseconds.
fn run_binary(rels: &[NamedRelation]) -> (NamedRelation, u64, u64) {
    let order = plan_join_order(rels).order();
    let started = Instant::now();
    let mut acc = rels[order[0]].clone();
    let mut peak = acc.len() as u64;
    for &i in &order[1..] {
        acc = acc.natural_join(&rels[i]);
        peak = peak.max(acc.len() as u64);
    }
    let micros = started.elapsed().as_micros() as u64;
    (acc, peak, micros)
}

/// Executes the leapfrog engine, returning the result, its peak
/// materialized cardinality (it only ever materializes output tuples),
/// and the wall time in microseconds.
fn run_wcoj(rels: &[NamedRelation]) -> (NamedRelation, u64, u64) {
    let started = Instant::now();
    let mut meter = Budget::unlimited().meter();
    let out = wcoj_join_metered(rels, &mut meter).expect("unlimited budget cannot exhaust");
    let micros = started.elapsed().as_micros() as u64;
    let peak = out.len() as u64;
    (out, peak, micros)
}

/// Runs both engines on one workload, asserts they agree, and returns
/// one JSON record of the comparison.
fn measure(label: &str, detail: &str, rels: &[NamedRelation]) -> (String, String, u64, u64) {
    let choice = choose_engine(rels);
    let engine = choice.engine_name();
    let est_peak = plan_join_order(rels).est_peak();
    let agm = agm_sqrt_bound(rels);
    let (binary, binary_peak, binary_micros) = run_binary(rels);
    let (wcoj, wcoj_peak, wcoj_micros) = run_wcoj(rels);
    assert_eq!(
        canonical_rows(&binary),
        canonical_rows(&wcoj),
        "{label}/{detail}: engines disagree on the answer"
    );
    let record = format!(
        "{{\"workload\":\"{label}\",\"detail\":\"{detail}\",\"engine\":\"{engine}\",\
         \"binary_est_peak\":{est_peak},\"agm_bound\":{agm},\"output_rows\":{out},\
         \"binary_peak\":{binary_peak},\"wcoj_peak\":{wcoj_peak},\
         \"binary_micros\":{binary_micros},\"wcoj_micros\":{wcoj_micros}}}",
        agm = agm.map_or_else(|| "null".to_string(), |b| b.to_string()),
        out = wcoj.len(),
    );
    (record, engine.to_string(), binary_peak, wcoj_peak)
}

fn bench(c: &mut Criterion) {
    let mut rng = XorShift(0x7a1e_57ee_4a11_0007);
    const V: u32 = 64;

    // Density sweep: edge counts straddling the V^(4/3) = 256 crossover.
    // The peak-materialization gap is ~V²/N (binary's length-2 paths
    // N²/V against the ~N³/V³ triangles WCOJ emits), so it widens as
    // the sweep leaves the crossover.
    let sweep: Vec<(usize, Vec<Vec<u32>>)> = [128usize, 256, 512, 1024, 2048]
        .into_iter()
        .map(|n| (n, random_digraph(&mut rng, V, n)))
        .collect();

    let mut records = Vec::new();
    let mut engines = Vec::new();
    let mut dense_gap = None;
    for (n, edges) in &sweep {
        let rels = triangle(edges);
        let detail = format!("v{V}_n{n}");
        let (record, engine, binary_peak, wcoj_peak) = measure("triangle", &detail, &rels);
        records.push(record);
        engines.push(engine);
        dense_gap = Some((binary_peak, wcoj_peak));
    }
    // Acceptance: the gate keeps the binary pipeline on the sparse end
    // and flips to the leapfrog engine on the dense end, where the
    // leapfrog peak materialization is strictly below the binary one.
    assert_eq!(
        engines.first().map(String::as_str),
        Some("binary"),
        "sparse triangle should stay on the binary pipeline"
    );
    assert_eq!(
        engines.last().map(String::as_str),
        Some("wcoj"),
        "dense triangle should route to the leapfrog engine"
    );
    let (binary_peak, wcoj_peak) = dense_gap.expect("sweep is nonempty");
    assert!(
        wcoj_peak < binary_peak,
        "dense triangle: wcoj peak {wcoj_peak} must undercut binary peak {binary_peak}"
    );

    let lw = loomis_whitney(&mut rng, 12, 220);
    let (record, engine, binary_peak, wcoj_peak) = measure("loomis_whitney", "v12_n220", &lw);
    records.push(record);
    assert_eq!(engine, "wcoj", "LW(4) should route to the leapfrog engine");
    assert!(
        wcoj_peak < binary_peak,
        "LW(4): wcoj peak {wcoj_peak} must undercut binary peak {binary_peak}"
    );

    let out = format!(
        "{{\"bench\":\"e_wcoj\",\"runs\":[{}]}}\n",
        records.join(",")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_wcoj.json");
    std::fs::write(&path, out).expect("write BENCH_wcoj.json");

    let mut group = c.benchmark_group("e_wcoj");
    group.sample_size(10);
    let dense = triangle(&sweep.last().expect("sweep is nonempty").1);
    for (label, rels) in [("triangle_dense", &dense), ("loomis_whitney", &lw)] {
        group.bench_with_input(BenchmarkId::new("binary", label), rels, |b, rels| {
            b.iter(|| run_binary(rels).0.len())
        });
        group.bench_with_input(BenchmarkId::new("wcoj", label), rels, |b, rels| {
            b.iter(|| run_wcoj(rels).0.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
