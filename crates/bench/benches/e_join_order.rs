//! e_join_order: connectivity-aware planned joins vs. size-only ordering.
//!
//! Two workload families compare [`join_all`] (greedy connected order,
//! reusable hash indexes) against [`join_all_size_ordered`] (the old
//! ascending-length fold):
//!
//! * **chain** — `R_0(0,1) ⋈ R_1(1,2) ⋈ …` with every relation
//!   functional on its chain attributes. The length sort places
//!   attribute-disjoint relations adjacently and materializes cross
//!   products; the planner walks the chain and never does.
//! * **star** — `R_i(0, i)` leaves functional on the shared hub
//!   attribute, where every order is connected and the comparison
//!   isolates ordering plus index reuse overheads.
//!
//! Before timing, the harness asserts the planner's guarantees on every
//! generated workload: no planned cross products, planner peak
//! intermediate cardinality never above the size-only baseline's, and
//! at least one chain workload where the baseline materializes a cross
//! product the planner avoids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_relalg::{join_all, join_all_size_ordered, plan_join_order, NamedRelation};

/// Deterministic xorshift generator so every run (and the CI smoke
/// pass) sees identical workloads.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }

    /// `count` distinct values from `0..domain`, shuffled.
    fn subset(&mut self, domain: u32, count: usize) -> Vec<u32> {
        let mut values: Vec<u32> = (0..domain).collect();
        for i in (1..values.len()).rev() {
            values.swap(i, self.range(0, i as u64) as usize);
        }
        values.truncate(count.min(domain as usize));
        values
    }
}

/// A chain `R_0(0,1), …, R_{m-1}(m-1,m)` over domain `d`: the end
/// relations carry distinct inner-attribute values, the middle ones are
/// partial matchings (distinct on both attributes), so connected joins
/// never grow. Sizes are randomized so the ascending-length sort mixes
/// chain-distant relations.
fn chain_workload(rng: &mut XorShift, m: usize, d: u32) -> Vec<NamedRelation> {
    (0..m)
        .map(|i| {
            let count = rng.range(d as u64 / 2, d as u64 * 3 / 4) as usize;
            let rows: Vec<Vec<u32>> = if i == 0 {
                rng.subset(d, count)
                    .into_iter()
                    .map(|w| vec![rng.range(0, d as u64 - 1) as u32, w])
                    .collect()
            } else if i == m - 1 {
                rng.subset(d, count)
                    .into_iter()
                    .map(|w| vec![w, rng.range(0, d as u64 - 1) as u32])
                    .collect()
            } else {
                let keys = rng.subset(d, count);
                let vals = rng.subset(d, d as usize);
                keys.iter()
                    .zip(vals.iter())
                    .map(|(&k, &v)| vec![k, v])
                    .collect()
            };
            let mut rows = rows;
            rows.sort_unstable();
            rows.dedup();
            NamedRelation::new(vec![i as u32, i as u32 + 1], rows)
        })
        .collect()
}

/// A star `R_1(0,1), …, R_m(0,m)`: every leaf holds distinct hub values
/// over domain `h`, so every join order is connected and filtering.
fn star_workload(rng: &mut XorShift, m: usize, h: u32) -> Vec<NamedRelation> {
    (1..=m)
        .map(|i| {
            let count = rng.range(h as u64 / 2, h as u64) as usize;
            let rows: Vec<Vec<u32>> = rng
                .subset(h, count)
                .into_iter()
                .map(|v| vec![v, rng.range(0, 999) as u32])
                .collect();
            NamedRelation::new(vec![0, i as u32], rows)
        })
        .collect()
}

/// Left-deep fold in `order`, returning the peak intermediate size.
fn fold_peak(relations: &[NamedRelation], order: &[usize]) -> u64 {
    let mut acc = relations[order[0]].clone();
    let mut peak = acc.len() as u64;
    for &i in &order[1..] {
        acc = acc.natural_join(&relations[i]);
        peak = peak.max(acc.len() as u64);
    }
    peak
}

/// The ascending-length order [`join_all_size_ordered`] executes.
fn size_order(rels: &[NamedRelation]) -> Vec<usize> {
    let mut by_size: Vec<usize> = (0..rels.len()).collect();
    by_size.sort_by_key(|&i| (rels[i].len(), i));
    by_size
}

/// Counts fold steps in `order` whose next relation shares no attribute
/// with the accumulated schema (materialized cross products).
fn disconnected_steps(rels: &[NamedRelation], order: &[usize]) -> usize {
    let mut attrs: Vec<u32> = rels[order[0]].schema().to_vec();
    let mut count = 0;
    for &i in &order[1..] {
        if !rels[i].schema().iter().any(|a| attrs.contains(a)) {
            count += 1;
        }
        attrs.extend_from_slice(rels[i].schema());
    }
    count
}

/// Checks the planner's acceptance bounds on one workload and returns
/// how many cross products the size-only baseline materializes.
fn assert_planner_dominates(rels: &[NamedRelation], family: &str) -> usize {
    let plan = plan_join_order(rels);
    assert_eq!(
        plan.cross_products(),
        0,
        "{family}: planned a cross product on a connected join graph"
    );
    let planner_peak = fold_peak(rels, &plan.order());
    let baseline_order = size_order(rels);
    let baseline_peak = fold_peak(rels, &baseline_order);
    assert!(
        planner_peak <= baseline_peak,
        "{family}: planner peak {planner_peak} exceeds size-only peak {baseline_peak}"
    );
    disconnected_steps(rels, &baseline_order)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e_join_order");
    group.sample_size(10);

    let mut rng = XorShift(0x0dd0_4a11_5eed_0001);
    let chains: Vec<Vec<NamedRelation>> = (0..8).map(|_| chain_workload(&mut rng, 6, 64)).collect();
    let stars: Vec<Vec<NamedRelation>> = (0..8).map(|_| star_workload(&mut rng, 5, 64)).collect();

    let mut baseline_crosses = 0usize;
    for rels in &chains {
        baseline_crosses += assert_planner_dominates(rels, "chain");
    }
    for rels in &stars {
        assert_planner_dominates(rels, "star");
    }
    assert!(
        baseline_crosses > 0,
        "chain family never forced the size-only baseline into a cross product"
    );

    for (label, workloads) in [("chain", &chains), ("star", &stars)] {
        group.bench_with_input(
            BenchmarkId::new("planned", label),
            workloads,
            |b, workloads| {
                b.iter(|| {
                    workloads
                        .iter()
                        .map(|rels| join_all(rels.clone()).len())
                        .sum::<usize>()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("size_ordered", label),
            workloads,
            |b, workloads| {
                b.iter(|| {
                    workloads
                        .iter()
                        .map(|rels| join_all_size_ordered(rels.clone()).len())
                        .sum::<usize>()
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
