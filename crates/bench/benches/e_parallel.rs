//! e_parallel: sequential vs. shared-meter parallel execution.
//!
//! Compares the sequential natural join and acyclic (Yannakakis) solver
//! against their `SharedMeter`-driven parallel counterparts at 2, 4, and
//! 8 rayon threads. On a single-core host the parallel paths degrade to
//! sequential execution, so the interesting signal is the overhead of
//! partitioning and atomic metering, not speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_bench::e10_chain;
use cspdb_core::budget::Budget;
use cspdb_relalg::{solve_acyclic, solve_acyclic_shared, NamedRelation};
use rayon::ThreadPoolBuilder;

/// Deterministic LCG-filled binary relation over `schema` with `rows`
/// tuples drawn from `[0, domain)`.
fn random_rel(schema: Vec<u32>, rows: usize, domain: u32, seed: u64) -> NamedRelation {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as u32) % domain
    };
    let width = schema.len();
    NamedRelation::new(
        schema,
        (0..rows).map(|_| (0..width).map(|_| next()).collect::<Vec<u32>>()),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e_parallel");
    group.sample_size(10);

    // Join workload: R(0,1) |><| S(1,2), large enough to clear the
    // sequential-fallback threshold in natural_join_parallel.
    let r = random_rel(vec![0, 1], 4000, 64, 7);
    let s = random_rel(vec![1, 2], 4000, 64, 11);

    group.bench_function("join/sequential", |b| b.iter(|| r.natural_join(&s)));
    for threads in [2usize, 4, 8] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("join/parallel", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    let meter = Budget::unlimited().shared_meter();
                    pool.install(|| r.natural_join_parallel(&s, &meter).unwrap())
                })
            },
        );
    }

    // Acyclic-solver workload: a long chain instance solved by the
    // Yannakakis reducer, sequential vs. per-level parallel sweeps.
    let chain = e10_chain(48, 8);

    group.bench_function("yannakakis/sequential", |b| {
        b.iter(|| solve_acyclic(&chain).unwrap())
    });
    for threads in [2usize, 4, 8] {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("yannakakis/parallel", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    let meter = Budget::unlimited().shared_meter();
                    pool.install(|| solve_acyclic_shared(&chain, &meter).unwrap())
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
