//! Trace-overhead experiment: the observability layer must be
//! zero-cost when disabled. Three configurations over the same
//! workloads:
//!
//! * `untraced`  — no sink attached (the `Tracer` is inert);
//! * `null_sink` — a `NullSink` attached (events are constructed only
//!   if the tracer is active; `NullSink` reports inactive, so this must
//!   match `untraced` to within noise — the acceptance bar is < 2%);
//! * `recorder`  — a `Recorder` attached (the honest cost of capturing
//!   every event, for calibration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb::{SolveStrategy, Solver};
use cspdb_core::budget::Budget;
use cspdb_core::trace::{NullSink, Recorder, TraceSink};
use cspdb_core::CspInstance;
use std::sync::Arc;

fn workloads() -> Vec<(&'static str, CspInstance)> {
    use cspdb_core::graphs::{clique, cycle};
    let sparse = cspdb_gen::gnp(24, 0.08, 11);
    vec![
        (
            "acyclic_yannakakis",
            CspInstance::from_homomorphism(&cspdb_gen::gnp(20, 0.05, 7), &clique(3)).unwrap(),
        ),
        (
            "cyclic_treewidth",
            CspInstance::from_homomorphism(&cycle(9), &clique(3)).unwrap(),
        ),
        (
            "sparse_ladder",
            CspInstance::from_homomorphism(&sparse, &clique(3)).unwrap(),
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e_trace_overhead");
    group.sample_size(30);
    let configs: Vec<(&str, Option<Arc<dyn TraceSink>>)> = vec![
        ("untraced", None),
        ("null_sink", Some(Arc::new(NullSink))),
        ("recorder", Some(Arc::new(Recorder::new()))),
    ];
    for (name, p) in workloads() {
        for (cfg, sink) in &configs {
            group.bench_with_input(BenchmarkId::new(name, cfg), &p, |b, p| {
                b.iter(|| {
                    let mut solver = Solver::new()
                        .budget(Budget::unlimited())
                        .strategy(SolveStrategy::Ladder);
                    if let Some(sink) = sink {
                        solver = solver.trace(sink.clone());
                    }
                    solver.solve_csp(p)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
