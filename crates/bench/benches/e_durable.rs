//! e_durable: restart-with-warm-cache vs cold-start latency.
//!
//! A durable server is populated with a graph database and a Zipf-ish
//! stream of conjunctive queries, then shut down. The experiment
//! compares two ways of serving the same stream again:
//!
//! * **cold start** — a fresh data directory: the database must be
//!   re-put and every distinct query core recomputed;
//! * **warm restart** — the same data directory: the catalog is
//!   replayed from snapshot + log and the semantic cache warm-starts
//!   from the persisted entry index, so confirmed hits skip evaluation.
//!
//! Before timing, the harness asserts the warm restart recovers the
//! catalog (no re-put), warms at least one cache entry, and answers
//! byte-identically to the cold run. The measurements are written to
//! BENCH_durable.json at the repo root (consumed by EXPERIMENTS.md
//! § E-durable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_service::{DurableStorage, Outcome, Request, RequestBody, Server, ServerConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cspdb-e-durable-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The shared graph: a cycle with random chords.
fn facts(rng: &mut XorShift, n: u64) -> String {
    let mut lines: Vec<String> = (0..n).map(|i| format!("E {i} {}", (i + 1) % n)).collect();
    for _ in 0..n / 2 {
        lines.push(format!("E {} {}", rng.range(0, n - 1), rng.range(0, n - 1)));
    }
    lines.join("\n")
}

/// A small pool of distinct query cores: paths of length 1..=4 plus a
/// triangle, each rendered several times with renamed variables so the
/// stream exercises the semantic (core-keyed) cache.
fn workload(rng: &mut XorShift, len: usize) -> Vec<Request> {
    let vars = ["X", "Y", "Z", "W", "V"];
    (0..len)
        .map(|i| {
            let hops = 1 + (rng.range(0, 3)) as usize;
            let salt = rng.range(0, 2);
            let atoms: Vec<String> = (0..hops)
                .map(|h| format!("E({}{salt},{}{salt})", vars[h], vars[h + 1]))
                .collect();
            let query = format!(
                "Q({}{salt},{}{salt}) :- {}",
                vars[0],
                vars[hops],
                atoms.join(", ")
            );
            Request::new(
                i as u64 + 10,
                RequestBody::Cq {
                    db: "g".into(),
                    query,
                },
            )
        })
        .collect()
}

fn durable_server(dir: &Path) -> Server {
    let storage = DurableStorage::open(dir.to_path_buf()).expect("open data dir");
    Server::start(ServerConfig {
        storage: Some(Arc::new(storage)),
        ..ServerConfig::default()
    })
}

/// Runs the stream and returns (answers in order, confirmed hits).
fn run(server: &Server, reqs: &[Request]) -> (Vec<String>, usize) {
    let mut answers = Vec::with_capacity(reqs.len());
    let mut hits = 0usize;
    for r in reqs {
        let resp = server.submit(r.clone()).unwrap().wait();
        match resp.outcome {
            Outcome::Answers { rows, cached, .. } => {
                answers.push(rows);
                hits += usize::from(cached);
            }
            other => panic!("request {} failed: {other:?}", r.id),
        }
    }
    (answers, hits)
}

/// Cold start: fresh directory, put + full stream.
fn cold_start(dir: &Path, db: &str, reqs: &[Request]) -> (f64, Vec<String>) {
    let _ = std::fs::remove_dir_all(dir);
    let start = Instant::now();
    let server = durable_server(dir);
    let put = Request::new(
        1,
        RequestBody::Put {
            db: "g".into(),
            facts: db.into(),
        },
    );
    assert_eq!(server.submit(put).unwrap().wait().status(), "ok");
    let (answers, _) = run(&server, reqs);
    let elapsed = start.elapsed().as_secs_f64();
    server.shutdown(cspdb_service::ShutdownMode::Drain);
    (elapsed, answers)
}

/// Warm restart: reopen the populated directory, no put, full stream.
fn warm_restart(dir: &Path, reqs: &[Request]) -> (f64, Vec<String>, usize, u64) {
    let start = Instant::now();
    let server = durable_server(dir);
    let (answers, hits) = run(&server, reqs);
    let elapsed = start.elapsed().as_secs_f64();
    let warmed = server.stats().cache_warmed;
    server.shutdown(cspdb_service::ShutdownMode::Drain);
    (elapsed, answers, hits, warmed)
}

fn bench(c: &mut Criterion) {
    let mut rng = XorShift(0xd02a_b1e5_eed0_0008);
    let mut records = Vec::new();
    for n in [40u64, 80] {
        let db = facts(&mut rng, n);
        let reqs = workload(&mut rng, 60);
        let dir = tmp_dir(&format!("n{n}"));

        // Populate once, then compare a cold start against a warm
        // restart over the identical stream.
        let (_, cold_answers) = cold_start(&dir, &db, &reqs);
        let (warm_t, warm_answers, warm_hits, warmed) = warm_restart(&dir, &reqs);
        let cold_dir = tmp_dir(&format!("n{n}-cold"));
        let (cold_t, cold_again) = cold_start(&cold_dir, &db, &reqs);

        assert_eq!(cold_answers, warm_answers, "n={n}: warm answers diverge");
        assert_eq!(cold_answers, cold_again, "n={n}: cold answers diverge");
        assert!(warmed >= 1, "n={n}: no cache entries warm-started");
        assert!(warm_hits >= 1, "n={n}: no confirmed warm hits");

        records.push(format!(
            concat!(
                "{{\"domain\":{},\"requests\":{},\"warm_hits\":{},\"warmed_entries\":{},",
                "\"cold_secs\":{:.6},\"warm_secs\":{:.6},\"speedup\":{:.3}}}"
            ),
            n,
            reqs.len(),
            warm_hits,
            warmed,
            cold_t,
            warm_t,
            cold_t / warm_t.max(1e-9)
        ));

        let mut group = c.benchmark_group("e_durable");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("cold_start", n), &n, |b, _| {
            b.iter(|| cold_start(&cold_dir, &db, &reqs).1.len())
        });
        group.bench_with_input(BenchmarkId::new("warm_restart", n), &n, |b, _| {
            b.iter(|| warm_restart(&dir, &reqs).1.len())
        });
        group.finish();

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&cold_dir);
    }
    let out = format!(
        "{{\"bench\":\"e_durable\",\"configs\":[{}]}}\n",
        records.join(",")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_durable.json");
    std::fs::write(&path, out).expect("write BENCH_durable.json");
}

criterion_group!(benches, bench);
criterion_main!(benches);
