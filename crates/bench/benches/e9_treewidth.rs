//! E9 (Theorem 6.2): bounded-treewidth dynamic programming vs search vs
//! the ∃FO^{k+1} formula route, on partial k-trees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_bench::e9_instance;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_treewidth");
    group.sample_size(10);
    for k in [1usize, 2] {
        for n in [32usize, 128] {
            let (a, b) = e9_instance(n, k, 9);
            let id = format!("k{k}_n{n}");
            group.bench_with_input(BenchmarkId::new("dp", &id), &(), |bch, _| {
                bch.iter(|| cspdb_decomp::solve_by_treewidth(&a, &b))
            });
            group.bench_with_input(BenchmarkId::new("search", &id), &(), |bch, _| {
                bch.iter(|| cspdb_solver::find_homomorphism(&a, &b))
            });
            group.bench_with_input(BenchmarkId::new("formula", &id), &(), |bch, _| {
                bch.iter(|| cspdb_cq::theorem_6_2_decide(&a, &b))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
