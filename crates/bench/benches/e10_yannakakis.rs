//! E10 (Section 6, acyclic joins): Yannakakis' semijoin algorithm vs the
//! unrestricted natural join on acyclic chain instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_bench::e10_chain;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_yannakakis");
    group.sample_size(10);
    for m in [16usize, 64, 256] {
        let p = e10_chain(m, 3);
        group.bench_with_input(BenchmarkId::new("yannakakis", m), &p, |b, p| {
            b.iter(|| cspdb_relalg::solve_acyclic(p).unwrap())
        });
        if m <= 16 {
            group.bench_with_input(BenchmarkId::new("full_join", m), &p, |b, p| {
                b.iter(|| cspdb_relalg::solve_by_join(p))
            });
        }
        group.bench_with_input(BenchmarkId::new("search", m), &p, |b, p| {
            b.iter(|| cspdb_solver::solve_csp(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
