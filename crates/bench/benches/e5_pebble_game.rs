//! E5 (Theorem 4.5): computing the largest Duplicator winning strategy
//! — polynomial for fixed k, with the O(n^{2k})-style growth visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_core::graphs::clique;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_pebble_game");
    group.sample_size(10);
    let b2 = clique(2);
    for k in [2usize, 3] {
        for n in [8usize, 16] {
            let g = cspdb_gen::gnp(n, 2.0 / n as f64, 5);
            group.bench_with_input(BenchmarkId::new(format!("k{k}"), n), &g, |bch, g| {
                bch.iter(|| cspdb_consistency::largest_winning_strategy(g, &b2, k))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
