//! e_shard: TCP service throughput — serial accept loop vs concurrent
//! connection pool over the sharded catalog.
//!
//! Eight closed-loop TCP clients (each sends a request, waits for its
//! response, sends the next) work distinct databases — which the
//! catalog routes to distinct shards — against two servings of the same
//! workload:
//!
//! * **serial**: the pre-fix accept loop — each accepted connection is
//!   pumped to EOF before the next `accept`, so at any moment exactly
//!   one client's requests can be in flight (head-of-line blocking);
//! * **concurrent**: [`serve_listener`] — every client's requests are
//!   in flight at once, executing on the worker pool in parallel.
//!
//! Both sides pump connections with the same [`pump_pipelined`], so the
//! measured gap is purely accept concurrency. The acceptance gate (and
//! the claim recorded in EXPERIMENTS.md § E-shard) is a ≥3× throughput
//! win for the concurrent pool; the measured ratio lands in
//! BENCH_shard.json at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use cspdb_service::{pump_pipelined, serve_listener, NetConfig, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: u64 = 8;
const REQUESTS_PER_CLIENT: usize = 30;
/// Client think time between requests. This is what the serial accept
/// loop cannot hide: while one client thinks, its connection is still
/// the only one being pumped, so everyone else's wall clock absorbs the
/// pause. The concurrent pool overlaps all eight clients' think time
/// (which also keeps the measurement honest on a single-core runner,
/// where parallel *compute* cannot speed anything up).
const THINK: Duration = Duration::from_millis(3);

fn server() -> Arc<Server> {
    Arc::new(Server::start(ServerConfig {
        workers: 8,
        // Cold evaluation on every request: the bench measures serving
        // concurrency, not the semantic cache (e_service covers that).
        cache_enabled: false,
        ..ServerConfig::default()
    }))
}

/// Each client's graph: a cycle of its own length, so answers differ
/// per database and a misrouted request would be caught.
fn put_line(client: u64) -> String {
    let n = 30 + client;
    let facts: Vec<String> = (0..n).map(|v| format!("E {v} {}", (v + 1) % n)).collect();
    format!(
        r#"{{"id":1,"op":"put","db":"db{client}","facts":"{}"}}"#,
        facts.join("\\n")
    )
}

fn cq_line(client: u64, i: usize) -> String {
    // Alternate path-2 and path-3 joins; fresh variable names per
    // request keep the stream textually varied.
    let query = if i.is_multiple_of(2) {
        format!("Q(X{i},Y{i}) :- E(X{i},Z{i}), E(Z{i},Y{i})")
    } else {
        format!("Q(X{i},Y{i}) :- E(X{i},Z{i}), E(Z{i},W{i}), E(W{i},Y{i})")
    };
    format!(
        r#"{{"id":{},"op":"cq","db":"db{client}","query":"{query}"}}"#,
        i + 2
    )
}

/// One closed-loop client: put (await ack), then request→response
/// strictly alternating. Panics on any non-ok response.
fn run_client(addr: SocketAddr, client: u64) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut line = String::new();
    let mut round_trip = |request: &str, line: &mut String| {
        writeln!(writer, "{request}").expect("write");
        line.clear();
        reader.read_line(line).expect("read");
        assert!(
            line.contains("\"status\":\"ok\""),
            "client {client}: {}",
            line.trim()
        );
    };
    round_trip(&put_line(client), &mut line);
    for i in 0..REQUESTS_PER_CLIENT {
        std::thread::sleep(THINK);
        round_trip(&cq_line(client, i), &mut line);
    }
    writer.shutdown(Shutdown::Write).expect("shutdown");
    line.clear();
    reader.read_line(&mut line).expect("stats");
    assert!(line.starts_with("{\"stats\":"), "missing stats line");
}

/// Runs all clients against `addr` at once and returns the wall-clock
/// seconds until every one has finished.
fn drive_clients(addr: SocketAddr) -> f64 {
    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| std::thread::spawn(move || run_client(addr, c)))
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    start.elapsed().as_secs_f64()
}

/// The pre-fix serve loop: accept, pump to EOF, only then accept again.
/// Connections beyond the first wait in the OS backlog with their
/// requests unread. Serves exactly `CLIENTS` connections, then returns.
fn serve_serial(server: Arc<Server>, listener: TcpListener) {
    for stream in listener.incoming().take(CLIENTS as usize) {
        let stream = stream.expect("accept");
        // Same socket options as the concurrent layer: the comparison
        // must isolate accept concurrency, nothing else.
        let _ = stream.set_nodelay(true);
        let (reader, writer) = stream
            .try_clone()
            .and_then(|r| stream.try_clone().map(|w| (BufReader::new(r), w)))
            .expect("clone");
        pump_pipelined(&server, 0, reader, writer);
        let mut stream = stream;
        let _ = writeln!(stream, "{{\"stats\":{}}}", server.stats().to_json());
    }
}

/// One full serving of the workload; `concurrent` picks the layer.
fn serve_once(concurrent: bool) -> f64 {
    let server = server();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");
    let serving = if concurrent {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let net = NetConfig {
                idle_timeout: Some(Duration::from_secs(30)),
                ..NetConfig::default()
            };
            serve_listener(&server, listener, &net);
        })
    } else {
        std::thread::spawn(move || serve_serial(server, listener))
    };
    let elapsed = drive_clients(addr);
    // The serial loop returns after CLIENTS connections; the concurrent
    // accept loop blocks forever, so only join the former.
    if !concurrent {
        serving.join().expect("serve thread");
    }
    elapsed
}

fn bench(c: &mut Criterion) {
    // Acceptance: the concurrent pool beats the serial accept loop by
    // ≥3× on 8 closed-loop clients over distinct databases. Measured
    // before timing so `--test` smoke runs enforce it too; the numbers
    // land in BENCH_shard.json for CI's history appender.
    let serial_secs = serve_once(false);
    let concurrent_secs = serve_once(true);
    let total = (CLIENTS as usize * (REQUESTS_PER_CLIENT + 1)) as f64;
    let speedup = serial_secs / concurrent_secs.max(1e-9);
    assert!(
        speedup >= 3.0,
        "concurrent pool only {speedup:.2}x over serial accept \
         ({serial_secs:.3}s vs {concurrent_secs:.3}s)"
    );
    let out = format!(
        concat!(
            "{{\"bench\":\"e_shard\",\"clients\":{},\"requests\":{},",
            "\"serial_secs\":{:.6},\"concurrent_secs\":{:.6},",
            "\"serial_rps\":{:.1},\"concurrent_rps\":{:.1},\"speedup\":{:.3}}}\n"
        ),
        CLIENTS,
        total as u64,
        serial_secs,
        concurrent_secs,
        total / serial_secs.max(1e-9),
        total / concurrent_secs.max(1e-9),
        speedup
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_shard.json");
    std::fs::write(&path, out).expect("write BENCH_shard.json");

    let mut group = c.benchmark_group("e_shard");
    group.sample_size(10);
    group.bench_function("serial_accept", |b| b.iter(|| serve_once(false)));
    group.bench_function("concurrent_pool", |b| b.iter(|| serve_once(true)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
