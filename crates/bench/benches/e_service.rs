//! e_service: closed-loop service throughput, semantic cache on vs off.
//!
//! A Zipf-skewed stream of conjunctive queries — six base shapes, each
//! request a fresh variable renaming (and atom rotation) of its shape,
//! popular shapes dominating the mix — is driven through
//! [`cspdb_service::Server`] by closed-loop client threads at 1, 4, and
//! 8 workers, with the semantic cache enabled and disabled.
//!
//! Because renamed queries are *textually* distinct, a syntactic cache
//! would never hit; the semantic (core-keyed) cache turns ~85% of the
//! stream into confirmed hits. Before timing, the harness asserts on
//! every configuration:
//!
//! * the cached run hits on the expected share of the stream,
//! * every cached answer is byte-identical to the corresponding cold
//!   answer (same response payload with the cache disabled),
//! * the cached run is not slower than the uncached run (generous 1.5×
//!   tolerance against scheduler noise; the measured ratio is recorded
//!   in EXPERIMENTS.md § E-serve).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_service::{Outcome, Request, RequestBody, Server, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

/// The six base shapes over canonical variables X, Y, Z, W.
/// `(head, body)`; body atoms as (predicate, args).
type Shape = (
    &'static [&'static str],
    &'static [(&'static str, &'static [&'static str])],
);

const SHAPES: [Shape; 6] = [
    (&["X", "Y"], &[("E", &["X", "Z"]), ("E", &["Z", "Y"])]),
    (
        &["X", "Y"],
        &[("E", &["X", "Z"]), ("E", &["Z", "W"]), ("E", &["W", "Y"])],
    ),
    (&["X"], &[("E", &["X", "Y"])]),
    (
        &["X"],
        &[("E", &["X", "Y"]), ("E", &["Y", "Z"]), ("E", &["Z", "X"])],
    ),
    (&["X", "Y"], &[("E", &["X", "Y"]), ("P", &["X"])]),
    (
        &["X", "Y"],
        &[("E", &["X", "Z"]), ("E", &["Z", "Y"]), ("E", &["X", "W"])],
    ),
];

/// Zipf-ish draw over the six shapes (weights 1/k): popular shapes
/// dominate, so a semantic cache can amortize most of the stream.
fn zipf_shape(rng: &mut XorShift) -> usize {
    match rng.range(0, 99) {
        0..=40 => 0,
        41..=61 => 1,
        62..=75 => 2,
        76..=85 => 3,
        86..=93 => 4,
        _ => 5,
    }
}

/// Renders shape `s` with a per-request variable renaming and atom
/// rotation: semantically identical to every other rendering of `s`,
/// textually identical to (almost) none.
fn render(s: usize, salt: u64, rot: usize) -> String {
    let (head, body) = SHAPES[s];
    let name = |v: &str| format!("{v}{salt}");
    let mut atoms: Vec<String> = body
        .iter()
        .map(|(p, args)| {
            let args: Vec<String> = args.iter().map(|v| name(v)).collect();
            format!("{p}({})", args.join(","))
        })
        .collect();
    let n = atoms.len();
    atoms.rotate_left(rot % n);
    let head: Vec<String> = head.iter().map(|v| name(v)).collect();
    format!("Q({}) :- {}", head.join(","), atoms.join(", "))
}

/// The shared graph: a 40-vertex cycle with 25 random chords and a
/// sprinkling of unary `P` facts.
fn facts(rng: &mut XorShift) -> String {
    let n = 40u64;
    let mut lines: Vec<String> = (0..n).map(|i| format!("E {i} {}", (i + 1) % n)).collect();
    for _ in 0..25 {
        lines.push(format!("E {} {}", rng.range(0, n - 1), rng.range(0, n - 1)));
    }
    for i in (0..n).step_by(4) {
        lines.push(format!("P {i}"));
    }
    lines.join("\n")
}

/// A Zipf-skewed workload of `len` query requests.
fn workload(rng: &mut XorShift, len: usize) -> Vec<Request> {
    (0..len)
        .map(|i| {
            let shape = zipf_shape(rng);
            let salt = rng.range(0, 4);
            let rot = rng.range(0, 3) as usize;
            Request::new(
                i as u64 + 10,
                RequestBody::Cq {
                    db: "g".into(),
                    query: render(shape, salt, rot),
                },
            )
        })
        .collect()
}

/// Drives the whole workload through a fresh server closed-loop with
/// `clients` submitter threads; returns (elapsed seconds, responses in
/// request order).
fn drive(
    workers: usize,
    cache: bool,
    clients: usize,
    reqs: &[Request],
    db: &str,
) -> (f64, Vec<(u64, Outcome)>) {
    let server = Arc::new(Server::start(ServerConfig {
        workers,
        heavy_workers: 1,
        queue_depth: reqs.len() + 8,
        cache_enabled: cache,
        ..ServerConfig::default()
    }));
    let put = Request::new(
        1,
        RequestBody::Put {
            db: "g".into(),
            facts: db.into(),
        },
    );
    assert_eq!(server.submit(put).unwrap().wait().status(), "ok");
    let start = Instant::now();
    let chunk = reqs.len().div_ceil(clients);
    let handles: Vec<_> = reqs
        .chunks(chunk)
        .map(|slice| {
            let server = server.clone();
            let slice = slice.to_vec();
            std::thread::spawn(move || {
                slice
                    .into_iter()
                    .map(|r| {
                        let id = r.id;
                        (id, server.submit(r).unwrap().wait().outcome)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut responses: Vec<(u64, Outcome)> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();
    responses.sort_by_key(|(id, _)| *id);
    (elapsed, responses)
}

fn answers_of(responses: &[(u64, Outcome)]) -> Vec<(u64, String)> {
    responses
        .iter()
        .map(|(id, o)| match o {
            Outcome::Answers { rows, .. } => (*id, rows.clone()),
            other => panic!("request {id} failed: {other:?}"),
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut rng = XorShift(0x5e71_11ce_5eed_0007);
    let db = facts(&mut rng);
    let reqs = workload(&mut rng, 240);

    // Acceptance: semantic hits dominate, cached answers are
    // byte-identical to uncached ones, caching never loses. The
    // measurements double as the machine-readable BENCH_service.json at
    // the repo root (consumed by CI and EXPERIMENTS.md).
    let mut records = Vec::new();
    for workers in [1, 4, 8] {
        let (cold_t, cold) = drive(workers, false, 4, &reqs, &db);
        let (hot_t, hot) = drive(workers, true, 4, &reqs, &db);
        assert_eq!(
            answers_of(&cold),
            answers_of(&hot),
            "{workers} workers: cached answers diverge"
        );
        let hits = hot
            .iter()
            .filter(|(_, o)| matches!(o, Outcome::Answers { cached: true, .. }))
            .count();
        assert!(
            hits * 2 >= reqs.len(),
            "{workers} workers: only {hits}/{} semantic hits",
            reqs.len()
        );
        assert!(
            hot_t <= cold_t * 1.5,
            "{workers} workers: cached run slower than uncached ({hot_t:.3}s vs {cold_t:.3}s)"
        );
        records.push(format!(
            concat!(
                "{{\"workers\":{},\"requests\":{},\"semantic_hits\":{},",
                "\"uncached_secs\":{:.6},\"cached_secs\":{:.6},\"speedup\":{:.3}}}"
            ),
            workers,
            reqs.len(),
            hits,
            cold_t,
            hot_t,
            cold_t / hot_t.max(1e-9)
        ));
    }
    let out = format!(
        "{{\"bench\":\"e_service\",\"configs\":[{}]}}\n",
        records.join(",")
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    std::fs::write(&path, out).expect("write BENCH_service.json");

    let mut group = c.benchmark_group("e_service");
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        for (label, cache) in [("cache", true), ("nocache", false)] {
            group.bench_with_input(BenchmarkId::new(label, workers), &workers, |b, &workers| {
                b.iter(|| {
                    let (_, responses) = drive(workers, cache, 4, &reqs, &db);
                    responses.len()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
