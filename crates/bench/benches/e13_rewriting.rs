//! E13 (Section 7, [8]): constructing the maximal RPQ rewriting and
//! evaluating it over view extensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_rpq::{maximal_rewriting, Extensions, Regex, View};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_rewriting");
    group.sample_size(10);
    let cases = [
        ("(ab)*", vec![("Vab", "ab")]),
        ("a(bb)*", vec![("Va", "a"), ("Vbb", "bb")]),
        ("(ab|ba)*", vec![("Vab", "ab"), ("Vba", "ba")]),
    ];
    for (qsrc, defs) in &cases {
        let q = Regex::parse(qsrc).unwrap();
        let mut alphabet = q.alphabet();
        let views: Vec<View> = defs
            .iter()
            .map(|(n, d)| {
                let r = Regex::parse(d).unwrap();
                alphabet.extend(r.alphabet());
                View {
                    name: n.to_string(),
                    definition: r,
                }
            })
            .collect();
        alphabet.sort_unstable();
        alphabet.dedup();
        group.bench_with_input(BenchmarkId::new("construct", *qsrc), &(), |b, _| {
            b.iter(|| maximal_rewriting(&q, &views, &alphabet))
        });
    }
    // Evaluation over a growing extension.
    let q = Regex::parse("(ab)*").unwrap();
    let views = vec![View {
        name: "Vab".into(),
        definition: Regex::parse("ab").unwrap(),
    }];
    let rw = maximal_rewriting(&q, &views, &['a', 'b']);
    for len in [16usize, 64] {
        let exts = Extensions {
            num_objects: len + 1,
            pairs: vec![(0..len as u32).map(|i| (i, i + 1)).collect()],
        };
        group.bench_with_input(BenchmarkId::new("evaluate", len), &exts, |b, exts| {
            b.iter(|| rw.answer(exts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
