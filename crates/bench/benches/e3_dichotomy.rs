//! E3 (Schaefer's dichotomy): dedicated polynomial solvers on tractable
//! families vs generic search on the NP side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_dichotomy");
    group.sample_size(10);
    for n in [128usize, 512] {
        let m = 3 * n;
        let two_sat = cspdb_gen::cnf_to_csp(&cspdb_gen::random_2sat(n, m, 7));
        group.bench_with_input(BenchmarkId::new("2sat_dichotomy", n), &two_sat, |b, p| {
            b.iter(|| cspdb_schaefer::solve_boolean(p))
        });
        let horn = cspdb_gen::cnf_to_csp(&cspdb_gen::random_horn(n, m, 7));
        group.bench_with_input(BenchmarkId::new("horn_dichotomy", n), &horn, |b, p| {
            b.iter(|| cspdb_schaefer::solve_boolean(p))
        });
        let xor = cspdb_gen::random_xor_system(n, m, 7);
        group.bench_with_input(BenchmarkId::new("xor_gaussian", n), &xor, |b, s| {
            b.iter(|| cspdb_schaefer::solve_affine(s))
        });
    }
    for n in [14usize, 18] {
        let m = (n as f64 * 4.26) as usize;
        let hard = cspdb_gen::cnf_to_csp(&cspdb_gen::random_3sat(n, m, 11));
        group.bench_with_input(BenchmarkId::new("3sat_search", n), &hard, |b, p| {
            b.iter(|| cspdb_solver::solve_csp(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
