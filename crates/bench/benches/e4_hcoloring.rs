//! E4 (Hell–Nešetřil): H-coloring random graphs for bipartite vs
//! non-bipartite templates H.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_core::graphs::{clique, cycle};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_hcoloring");
    group.sample_size(10);
    let g = cspdb_gen::gnp(30, 0.1, 3);
    for (name, h) in [
        ("K2_poly", clique(2)),
        ("C4_poly", cycle(4)),
        ("K3_np", clique(3)),
        ("C5_np", cycle(5)),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 30), &h, |b, h| {
            b.iter(|| cspdb::Solver::new().solve(&g, h))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
