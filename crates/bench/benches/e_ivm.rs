//! e_ivm: incremental view maintenance vs cache-nuking under a write
//! storm.
//!
//! A single database takes an interleaved stream of reads (renamed
//! variants of one conjunctive query, so the semantic cache can serve
//! them) and writes (random edge toggles). The same logical stream is
//! driven through [`cspdb_service::Server`] twice:
//!
//! * **nuke** — every write re-`put`s the full fact set, the legacy
//!   path: the version bump drops every cached entry and every
//!   maintained view, so the next read of each shape pays a cold
//!   evaluation;
//! * **delta** — every write is a wire-protocol-v2 `insert`/`delete`:
//!   the catalog applies the single-tuple delta, maintained views
//!   refresh incrementally, and the cache is *revalidated* onto the new
//!   version from the view answers, so reads keep hitting.
//!
//! Before anything is timed the harness asserts correctness: both modes
//! return byte-identical answers at every read index, and after the
//! delta-mode storm every maintained view is tuple-for-tuple equal to a
//! from-scratch recomputation (`Server::verify_views`). Then it asserts
//! the headline claim — delta maintenance beats cache-nuking on read
//! p99 by at least 2× — and records p50/p99 for both modes in
//! `BENCH_ivm.json` at the repo root (consumed by CI and
//! EXPERIMENTS.md § E-ivm).

use criterion::{criterion_group, criterion_main, Criterion};
use cspdb_service::{Outcome, Request, RequestBody, Server, ServerConfig};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const NODES: u64 = 48;

/// The base graph: a cycle plus random chords, dense enough that a cold
/// path-3 evaluation visibly out-costs a cache hit.
fn base_edges(rng: &mut XorShift) -> BTreeSet<(u64, u64)> {
    let mut edges: BTreeSet<(u64, u64)> = (0..NODES).map(|i| (i, (i + 1) % NODES)).collect();
    while edges.len() < NODES as usize + 80 {
        edges.insert((rng.below(NODES), rng.below(NODES)));
    }
    edges
}

fn facts_of(edges: &BTreeSet<(u64, u64)>) -> String {
    edges
        .iter()
        .map(|(u, v)| format!("E {u} {v}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// A fresh variable renaming of the path-3 query: semantically the same
/// view on every read, textually distinct, so only the *semantic* cache
/// (and the maintained view behind it) can serve the stream.
fn render(salt: u64, rot: usize) -> String {
    let mut atoms = [
        format!("E(X{salt},Z{salt})"),
        format!("E(Z{salt},W{salt})"),
        format!("E(W{salt},Y{salt})"),
    ];
    let n = atoms.len();
    atoms.rotate_left(rot % n);
    format!("Q(X{salt},Y{salt}) :- {}", atoms.join(", "))
}

/// One step of the storm, identical across both modes.
enum Op {
    /// Submit this query and time the response.
    Read(String),
    /// Toggle edge (u, v): delete when present, insert when absent.
    Toggle(u64, u64),
}

/// Three reads per write on average — enough writes to keep nuking
/// painful, enough reads that p99 reflects steady-state serving.
fn storm(rng: &mut XorShift, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| {
            if rng.below(4) == 0 {
                Op::Toggle(rng.below(NODES), rng.below(NODES))
            } else {
                Op::Read(render(rng.below(4), rng.below(3) as usize))
            }
        })
        .collect()
}

fn start_server() -> Arc<Server> {
    Arc::new(Server::start(ServerConfig {
        workers: 2,
        heavy_workers: 1,
        queue_depth: 64,
        ..ServerConfig::default()
    }))
}

fn submit(server: &Server, id: u64, body: RequestBody) -> Outcome {
    server
        .submit(Request::new(id, body))
        .expect("submit")
        .wait()
        .outcome
}

/// Drives the storm; writes go through full re-`put`s when `nuke`,
/// through v2 deltas otherwise. Returns per-read latencies (µs) and the
/// answer rows at every read index, plus the server (so the caller can
/// audit the maintained views while they are still alive).
fn drive(
    ops: &[Op],
    base: &BTreeSet<(u64, u64)>,
    nuke: bool,
) -> (Vec<f64>, Vec<String>, Arc<Server>) {
    let server = start_server();
    let mut edges = base.clone();
    let seeded = submit(
        &server,
        1,
        RequestBody::Put {
            db: "g".into(),
            facts: facts_of(&edges),
        },
    );
    assert!(
        matches!(seeded, Outcome::Put { .. }),
        "seed put failed: {seeded:?}"
    );
    let mut id = 1u64;
    let mut latencies = Vec::new();
    let mut answers = Vec::new();
    for op in ops {
        id += 1;
        match op {
            Op::Read(query) => {
                let start = Instant::now();
                let outcome = submit(
                    &server,
                    id,
                    RequestBody::Cq {
                        db: "g".into(),
                        query: query.clone(),
                    },
                );
                latencies.push(start.elapsed().as_secs_f64() * 1e6);
                match outcome {
                    Outcome::Answers { rows, .. } => answers.push(rows),
                    other => panic!("read {id} failed: {other:?}"),
                }
            }
            Op::Toggle(u, v) => {
                let insert = edges.insert((*u, *v));
                if !insert {
                    edges.remove(&(*u, *v));
                }
                if nuke {
                    let outcome = submit(
                        &server,
                        id,
                        RequestBody::Put {
                            db: "g".into(),
                            facts: facts_of(&edges),
                        },
                    );
                    assert!(
                        matches!(outcome, Outcome::Put { .. }),
                        "put failed: {outcome:?}"
                    );
                } else {
                    let fact = format!("E {u} {v}");
                    let body = if insert {
                        RequestBody::Insert {
                            db: "g".into(),
                            fact,
                        }
                    } else {
                        RequestBody::Delete {
                            db: "g".into(),
                            fact,
                        }
                    };
                    match submit(&server, id, body) {
                        Outcome::Delta { applied: true, .. } => {}
                        other => panic!("delta {id} failed: {other:?}"),
                    }
                }
            }
        }
    }
    (latencies, answers, server)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn stats(mut latencies: Vec<f64>) -> (f64, f64) {
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (percentile(&latencies, 0.50), percentile(&latencies, 0.99))
}

fn bench(c: &mut Criterion) {
    let mut rng = XorShift(0x1b_5eed_e17a);
    let base = base_edges(&mut rng);
    let ops = storm(&mut rng, 320);
    let reads = ops.iter().filter(|o| matches!(o, Op::Read(_))).count();
    let writes = ops.len() - reads;

    // Acceptance before timing: both modes agree byte-for-byte at every
    // read, and the delta-maintained views equal recomputation.
    let (nuke_lat, nuke_answers, _nuke_server) = drive(&ops, &base, true);
    let (delta_lat, delta_answers, delta_server) = drive(&ops, &base, false);
    assert_eq!(
        nuke_answers, delta_answers,
        "delta-maintained reads diverge from recompute-from-scratch reads"
    );
    let drift = delta_server.verify_views();
    assert!(drift.is_empty(), "maintained views drifted: {drift:?}");
    assert!(
        !delta_server.views().is_empty("g"),
        "no view survived the storm — nothing was maintained"
    );

    let (nuke_p50, nuke_p99) = stats(nuke_lat);
    let (delta_p50, delta_p99) = stats(delta_lat);
    assert!(
        delta_p99 * 2.0 <= nuke_p99,
        "delta maintenance missed the 2x read-p99 target: \
         delta {delta_p99:.1}us vs nuke {nuke_p99:.1}us"
    );

    let out = format!(
        concat!(
            "{{\"bench\":\"e_ivm\",\"reads\":{},\"writes\":{},",
            "\"nuke_read_p50_us\":{:.1},\"nuke_read_p99_us\":{:.1},",
            "\"delta_read_p50_us\":{:.1},\"delta_read_p99_us\":{:.1},",
            "\"p99_speedup\":{:.2}}}\n"
        ),
        reads,
        writes,
        nuke_p50,
        nuke_p99,
        delta_p50,
        delta_p99,
        nuke_p99 / delta_p99.max(1e-9)
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ivm.json");
    std::fs::write(&path, out).expect("write BENCH_ivm.json");

    let mut group = c.benchmark_group("e_ivm");
    group.sample_size(10);
    group.bench_function("nuke", |b| b.iter(|| drive(&ops, &base, true).1.len()));
    group.bench_function("delta", |b| b.iter(|| drive(&ops, &base, false).1.len()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
