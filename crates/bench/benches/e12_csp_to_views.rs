//! E12 (Theorem 7.3): deciding CSP(A, K2) by reducing to view-based
//! answering and back through the Theorem 7.5 template.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_core::graphs::{clique, cycle};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_csp_to_views");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    let b = clique(2);
    // C4 only: the C5 (unsatisfiable) case takes >1s per run — it is
    // exercised by run_experiments instead.
    {
        let n = 4usize;
        let a = cycle(n);
        group.bench_with_input(BenchmarkId::new("via_views", n), &a, |bch, a| {
            bch.iter(|| cspdb_rpq::csp_via_view_answering(a, &b))
        });
        group.bench_with_input(BenchmarkId::new("direct", n), &a, |bch, a| {
            bch.iter(|| cspdb_solver::find_homomorphism(a, &b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
