//! E8 (Theorem 5.7): k-consistency refutation — complete for 2-COL,
//! incomplete for 3-COL — vs full search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_core::graphs::clique;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_consistency_decides");
    group.sample_size(10);
    let g = cspdb_gen::gnp(12, 0.3, 2);
    for (name, b_struct, k) in [("K2_k3", clique(2), 3usize), ("K3_k3", clique(3), 3)] {
        group.bench_with_input(BenchmarkId::new(name, 12), &g, |bch, g| {
            bch.iter(|| cspdb_consistency::k_consistency_refutes(g, &b_struct, k))
        });
    }
    group.bench_with_input(BenchmarkId::new("search_K3", 12), &g, |bch, g| {
        bch.iter(|| cspdb_solver::find_homomorphism(g, &clique(3)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
