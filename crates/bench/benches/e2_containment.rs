//! E2 (Propositions 2.2/2.3): conjunctive-query containment via the
//! homomorphism route vs the canonical-database evaluation route.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_cq::ConjunctiveQuery;

fn chain(len: usize) -> ConjunctiveQuery {
    let body: Vec<String> = (0..len).map(|i| format!("E(X{i},X{})", i + 1)).collect();
    ConjunctiveQuery::parse(&format!("Q(X0) :- {}", body.join(", "))).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_containment");
    group.sample_size(10);
    for m in [8usize, 16, 32] {
        let q1 = chain(m);
        let q2 = chain(m / 2);
        group.bench_with_input(BenchmarkId::new("hom_route", m), &(), |b, _| {
            b.iter(|| cspdb_cq::is_contained_in(&q1, &q2).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("eval_route", m), &(), |b, _| {
            b.iter(|| cspdb_cq::is_contained_in_by_eval(&q1, &q2).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
