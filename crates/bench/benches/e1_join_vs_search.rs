//! E1 (Proposition 2.1): solving a CSP by backtracking search vs by
//! evaluating the natural join of its constraint relations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_bench::e1_instance;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_join_vs_search");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let p = e1_instance(n, 1);
        group.bench_with_input(BenchmarkId::new("search", n), &p, |b, p| {
            b.iter(|| cspdb_solver::solve_csp(p))
        });
        group.bench_with_input(BenchmarkId::new("join", n), &p, |b, p| {
            b.iter(|| cspdb_relalg::solve_by_join(p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
