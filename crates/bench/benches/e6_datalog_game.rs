//! E6 (Theorem 4.6): the Section 4 Datalog program vs the 3-pebble game
//! deciding 2-colorability.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cspdb_core::graphs::{clique, cycle};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_datalog_game");
    group.sample_size(10);
    let program = cspdb_datalog::programs::non_2_colorability();
    let k2 = clique(2);
    for n in [11usize, 21, 41] {
        let g = cycle(n);
        group.bench_with_input(BenchmarkId::new("datalog", n), &g, |b, g| {
            b.iter(|| cspdb_datalog::goal_holds(&program, g).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pebble_game", n), &g, |b, g| {
            b.iter(|| cspdb_consistency::spoiler_wins(g, &k2, 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
