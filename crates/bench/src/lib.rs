//! # cspdb-bench
//!
//! Shared workload builders and measurement helpers for the experiment
//! suite (E1–E13 in DESIGN.md / EXPERIMENTS.md). The Criterion benches
//! under `benches/` and the `run_experiments` binary both build their
//! inputs here, so the recorded tables and the micro-benchmarks measure
//! the same objects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cspdb_core::{CspInstance, Relation, Structure};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Milliseconds (with fraction) of one run of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Median-of-`runs` milliseconds.
pub fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let _ = f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Pretty milliseconds.
pub fn fmt_ms(ms: f64) -> String {
    if ms < 1.0 {
        format!("{:.0}µs", ms * 1e3)
    } else if ms < 1000.0 {
        format!("{ms:.2}ms")
    } else {
        format!("{:.2}s", ms / 1e3)
    }
}

/// The binary inequality relation on `d` values (graph-coloring style).
pub fn neq_relation(d: usize) -> Arc<Relation> {
    Arc::new(
        Relation::from_tuples(
            2,
            (0..d as u32)
                .flat_map(|i| (0..d as u32).filter_map(move |j| (i != j).then_some([i, j]))),
        )
        .unwrap(),
    )
}

/// E1 workload: a satisfiable-leaning random binary CSP.
pub fn e1_instance(n: usize, seed: u64) -> CspInstance {
    cspdb_gen::random_binary_csp(n, 3, (n as f64 * 1.8) as usize, 0.33, seed)
}

/// E9 workload: a partial k-tree structure plus coloring target.
pub fn e9_instance(n: usize, k: usize, seed: u64) -> (Structure, Structure) {
    let a = cspdb_gen::partial_k_tree(n, k, 0.85, seed);
    let b = cspdb_core::graphs::clique(k + 2); // enough colors to be satisfiable
    (a, b)
}

/// E9 hard-mode workload: random tight binary relations on the edges of
/// a partial k-tree — near the satisfiability threshold, chronological
/// backtracking thrashes while the width-k dynamic program stays
/// polynomial.
pub fn e9_tight_instance(n: usize, k: usize, seed: u64) -> CspInstance {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let a = cspdb_gen::partial_k_tree(n, k, 1.0, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    let d = 3usize;
    let mut p = CspInstance::new(n, d);
    let e = a.relation_by_name("E").unwrap();
    for t in e.iter() {
        if t[0] < t[1] {
            let tuples: Vec<[u32; 2]> = (0..d as u32)
                .flat_map(|i| (0..d as u32).map(move |j| [i, j]))
                .filter(|_| rng.gen_bool(0.45))
                .collect();
            let rel = Relation::from_tuples(2, tuples.iter()).unwrap();
            p.add_constraint([t[0], t[1]], Arc::new(rel)).unwrap();
        }
    }
    p
}

/// E10 workload: an acyclic chain instance with `m` binary constraints
/// over `d` values.
pub fn e10_chain(m: usize, d: usize) -> CspInstance {
    let mut p = CspInstance::new(m + 1, d);
    let r = neq_relation(d);
    for i in 0..m as u32 {
        p.add_constraint([i, i + 1], r.clone()).unwrap();
    }
    p
}

/// E11 workload: a chain of `Vab` view facts of the given length, with
/// query `(ab)*` — every even-distance pair along the chain is certain.
pub fn e11_instance(
    len: usize,
) -> (
    cspdb_rpq::Regex,
    Vec<cspdb_rpq::View>,
    Vec<char>,
    cspdb_rpq::Extensions,
) {
    let q = cspdb_rpq::Regex::parse("(ab)*").unwrap();
    let views = vec![
        cspdb_rpq::View {
            name: "Vab".into(),
            definition: cspdb_rpq::Regex::parse("ab").unwrap(),
        },
        cspdb_rpq::View {
            name: "Va".into(),
            definition: cspdb_rpq::Regex::parse("a").unwrap(),
        },
    ];
    let pairs_ab: Vec<(u32, u32)> = (0..len as u32).map(|i| (i, i + 1)).collect();
    let exts = cspdb_rpq::Extensions {
        num_objects: len + 1,
        pairs: vec![pairs_ab, vec![]],
    };
    (q, views, vec!['a', 'b'], exts)
}

/// A simple wall-clock budget guard for open-ended sweeps, backed by a
/// [`cspdb_core::Meter`] so sweeps and solver calls share one notion of
/// "out of time".
pub struct Budget {
    meter: cspdb_core::Meter,
}

impl Budget {
    /// Creates a budget of the given seconds.
    pub fn seconds(s: u64) -> Self {
        Budget {
            meter: cspdb_core::Budget::new()
                .with_deadline(Duration::from_secs(s))
                .meter(),
        }
    }

    /// True while the budget lasts.
    pub fn ok(&mut self) -> bool {
        self.meter.checkpoint().is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_consistent_workloads() {
        let p = e1_instance(8, 1);
        assert_eq!(p.num_vars(), 8);
        let (a, b) = e9_instance(10, 2, 1);
        assert!(a.domain_size() == 10 && b.domain_size() == 4);
        let chain = e10_chain(5, 3);
        assert_eq!(chain.constraints().len(), 5);
        let (_, views, alphabet, exts) = e11_instance(4);
        assert_eq!(views.len(), 2);
        assert_eq!(alphabet.len(), 2);
        assert_eq!(exts.num_objects, 5);
    }

    #[test]
    fn timing_helpers_work() {
        let (v, ms) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
        assert!(time_median(3, || ()) >= 0.0);
        assert!(!fmt_ms(0.5).is_empty());
        assert!(!fmt_ms(15.0).is_empty());
        assert!(!fmt_ms(1500.0).is_empty());
    }
}
