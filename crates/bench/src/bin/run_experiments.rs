//! Regenerates every experiment table recorded in EXPERIMENTS.md.
//!
//! The paper is a tutorial with no tables or figures of its own; each
//! experiment here operationalizes one of its numbered propositions or
//! theorems (see DESIGN.md §4 for the index). Absolute times are
//! machine-dependent; the *shape* — who is polynomial, who blows up,
//! where crossovers fall — is the reproducible claim.
//!
//! Run with: `cargo run --release -p cspdb-bench --bin run_experiments`

use cspdb_bench::{
    e10_chain, e11_instance, e1_instance, e9_instance, e9_tight_instance, fmt_ms, neq_relation,
    time_median, time_once,
};
use cspdb_core::graphs::{clique, cycle, two_coloring};
use cspdb_core::CspInstance;

fn main() {
    println!("# constraint-db experiment run\n");
    println!("(release build recommended; times are medians unless noted)\n");
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    e10();
    e11();
    e12();
    e13();
    e14_counting();
    e15_ac_rewriting();
    println!("\nAll experiments completed with every cross-check passing.");
}

fn header(id: &str, claim: &str) {
    println!("\n## {id} — {claim}\n");
}

/// E1: Proposition 2.1 — CSP solvable iff the join is nonempty.
fn e1() {
    header(
        "E1",
        "Prop 2.1: CSP solvable ⇔ ⋈ of constraint relations nonempty",
    );
    println!("| n vars | search | join | agree | t_search | t_join |");
    println!("|---|---|---|---|---|---|");
    for n in [8usize, 10, 12, 14] {
        let mut agree = true;
        let mut t_search = 0.0;
        let mut t_join = 0.0;
        let mut sat_s = 0usize;
        let mut sat_j = 0usize;
        for seed in 0..5u64 {
            let p = e1_instance(n, seed);
            let (s, ts) = time_once(|| cspdb_solver::solve_csp(&p));
            let (j, tj) = time_once(|| cspdb_relalg::solve_by_join(&p));
            agree &= s.is_some() == j.is_some();
            if let Some(ref w) = s {
                assert!(p.is_solution(w));
            }
            if let Some(ref w) = j {
                assert!(p.is_solution(w));
            }
            sat_s += usize::from(s.is_some());
            sat_j += usize::from(j.is_some());
            t_search += ts;
            t_join += tj;
        }
        println!(
            "| {n} | {sat_s}/5 sat | {sat_j}/5 sat | {agree} | {} | {} |",
            fmt_ms(t_search / 5.0),
            fmt_ms(t_join / 5.0)
        );
        assert!(agree, "Proposition 2.1 violated");
    }
}

/// E2: Props 2.2/2.3 — containment ≡ evaluation ≡ homomorphism.
fn e2() {
    header("E2", "Props 2.2/2.3: containment ≡ canonical-db eval ≡ hom");
    println!("| |Q1| atoms | |Q2| atoms | hom-route | eval-route | t_hom | t_eval |");
    println!("|---|---|---|---|---|---|");
    for m in [4usize, 8, 16, 32] {
        // Chain query of m atoms is contained in chain of m/2 atoms.
        let chain = |len: usize| {
            let body: Vec<String> = (0..len).map(|i| format!("E(X{i},X{})", i + 1)).collect();
            cspdb_cq::ConjunctiveQuery::parse(&format!("Q(X0) :- {}", body.join(", "))).unwrap()
        };
        let q1 = chain(m);
        let q2 = chain(m / 2);
        let (via_hom, t_hom) = time_once(|| cspdb_cq::is_contained_in(&q1, &q2).unwrap());
        let (via_eval, t_eval) = time_once(|| cspdb_cq::is_contained_in_by_eval(&q1, &q2).unwrap());
        assert_eq!(via_hom, via_eval);
        assert!(via_hom, "longer chains are contained in shorter");
        println!(
            "| {m} | {} | {via_hom} | {via_eval} | {} | {} |",
            m / 2,
            fmt_ms(t_hom),
            fmt_ms(t_eval)
        );
    }
}

/// E3: Schaefer dichotomy — polynomial classes vs the NP side.
fn e3() {
    header("E3", "§3 Schaefer: 6 classes polynomial, NP-hard otherwise");
    println!("| family | n | m | class used | result | time |");
    println!("|---|---|---|---|---|---|");
    for n in [64usize, 256, 1024] {
        let m = 3 * n;
        for (family, csp) in [
            (
                "2-SAT",
                cspdb_gen::cnf_to_csp(&cspdb_gen::random_2sat(n, m, 7)),
            ),
            (
                "Horn",
                cspdb_gen::cnf_to_csp(&cspdb_gen::random_horn(n, m, 7)),
            ),
        ] {
            let ((used, sol), t) = time_once(|| cspdb_schaefer::solve_boolean(&csp));
            println!(
                "| {family} | {n} | {m} | {used:?} | {} | {} |",
                if sol.is_some() { "sat" } else { "unsat" },
                fmt_ms(t)
            );
        }
        // XOR via the affine solver directly.
        let xor = cspdb_gen::random_xor_system(n, m, 7);
        let (sol, t) = time_once(|| cspdb_schaefer::solve_affine(&xor));
        println!(
            "| XOR | {n} | {m} | Affine | {} | {} |",
            if sol.is_some() { "sat" } else { "unsat" },
            fmt_ms(t)
        );
    }
    // NP side: random 3-SAT near the phase transition.
    for n in [16usize, 20, 24] {
        let m = (n as f64 * 4.26) as usize;
        let csp = cspdb_gen::cnf_to_csp(&cspdb_gen::random_3sat(n, m, 11));
        let ((used, sol), t) = time_once(|| cspdb_schaefer::solve_boolean(&csp));
        assert_eq!(used, cspdb_schaefer::SolverUsed::GenericSearch);
        println!(
            "| 3-SAT@4.26 | {n} | {m} | {used:?} | {} | {} |",
            if sol.is_some() { "sat" } else { "unsat" },
            fmt_ms(t)
        );
    }
}

/// E4: Hell–Nešetřil — CSP(H) polynomial iff H bipartite.
fn e4() {
    header(
        "E4",
        "§3 Hell–Nešetřil: H-coloring polynomial iff H bipartite",
    );
    println!("| H | bipartite | input | result | time |");
    println!("|---|---|---|---|---|");
    let templates: Vec<(&str, cspdb_core::Structure)> = vec![
        ("K2", clique(2)),
        ("C4", cycle(4)),
        ("K3", clique(3)),
        ("C5", cycle(5)),
    ];
    for (name, h) in templates {
        let bipartite = two_coloring(&h).is_some();
        let g = cspdb_gen::gnp(40, 0.08, 3);
        let (report, t) = time_once(|| cspdb::Solver::new().solve(&g, &h).expect_decided());
        println!(
            "| {name} | {bipartite} | G(40,0.08) | {} via {:?} | {} |",
            if report.witness.is_some() {
                "hom"
            } else {
                "no hom"
            },
            report.strategy,
            fmt_ms(t)
        );
        // Bipartite H: hom(G,H) iff hom(G,K2) (hom-equivalence).
        if bipartite && h.fact_count() > 0 {
            let two = cspdb_solver::find_homomorphism(&g, &clique(2)).is_some();
            assert_eq!(report.witness.is_some(), two);
        }
    }
}

/// E5: Theorem 4.5 — the pebble game is decidable in polynomial time.
fn e5() {
    header("E5", "Thm 4.5: Spoiler-win decidable in P; O(n^{2k}) shape");
    println!("| n | k | strategy size | time | time ratio vs prev n |");
    println!("|---|---|---|---|---|");
    for k in [2usize, 3] {
        let mut prev: Option<f64> = None;
        for n in [6usize, 12, 24] {
            let g = cspdb_gen::gnp(n, 2.0 / n as f64, 5);
            let b = clique(2);
            let (w, t) = time_once(|| cspdb_consistency::largest_winning_strategy(&g, &b, k));
            let ratio = prev
                .map(|p| format!("{:.1}x", t / p))
                .unwrap_or_else(|| "-".into());
            println!("| {n} | {k} | {} | {} | {ratio} |", w.len(), fmt_ms(t));
            prev = Some(t.max(1e-6));
        }
    }
}

/// E6: Theorem 4.6 — k-Datalog ≡ pebble game ≡ semantics for 2-COL.
fn e6() {
    header(
        "E6",
        "Thm 4.6: Datalog program ≡ pebble game ≡ semantics (2-COL)",
    );
    println!("| input | datalog | game(k=3) | truth | t_datalog | t_game |");
    println!("|---|---|---|---|---|---|");
    let program = cspdb_datalog::programs::non_2_colorability();
    let k2 = clique(2);
    for n in [11usize, 21, 41, 81] {
        let g = cycle(n);
        let (dl, t_dl) = time_once(|| cspdb_datalog::goal_holds(&program, &g).unwrap());
        let (game, t_game) = time_once(|| cspdb_consistency::spoiler_wins(&g, &k2, 3));
        let truth = two_coloring(&g).is_none();
        assert_eq!(dl, truth);
        assert_eq!(game, truth);
        println!(
            "| C{n} | {dl} | {game} | {truth} | {} | {} |",
            fmt_ms(t_dl),
            fmt_ms(t_game)
        );
    }
}

/// E7: Theorem 5.6 — establishing strong k-consistency.
fn e7() {
    header(
        "E7",
        "Thm 5.6: establishing strong k-consistency = largest strategy",
    );
    println!("| instance | k | possible | |W^k| | constraints | time |");
    println!("|---|---|---|---|---|---|");
    for (name, a, b, k) in [
        ("C5→K3", cycle(5), clique(3), 2usize),
        ("C7→K3", cycle(7), clique(3), 2),
        ("C5→K2", cycle(5), clique(2), 3),
        ("C9→K3", cycle(9), clique(3), 2),
    ] {
        let (w, t) = time_once(|| cspdb_consistency::largest_winning_strategy(&a, &b, k));
        match cspdb_consistency::establish_from_strategy(&a, &b, &w) {
            Some(est) => {
                println!(
                    "| {name} | {k} | yes | {} | {} | {} |",
                    w.len(),
                    est.csp.constraints().len(),
                    fmt_ms(t)
                );
            }
            None => {
                println!(
                    "| {name} | {k} | NO (Spoiler wins) | 0 | - | {} |",
                    fmt_ms(t)
                );
            }
        }
    }
}

/// E8: Theorem 5.7 — k-consistency decides CSP(B) iff ¬CSP(B) is
/// k-Datalog-expressible.
fn e8() {
    header(
        "E8",
        "Thm 5.7: k-consistency complete for 2-COL (k=3), incomplete for 3-COL",
    );
    println!("| template | k | inputs | refuted/true-negatives | false-negatives |");
    println!("|---|---|---|---|---|");
    for (name, b, k) in [("K2", clique(2), 3usize), ("K3", clique(3), 3)] {
        let mut refuted = 0usize;
        let mut negatives = 0usize;
        let mut missed = 0usize;
        for seed in 0..12u64 {
            let g = cspdb_gen::gnp(9, 0.35, seed);
            let truth = cspdb_solver::find_homomorphism(&g, &b).is_some();
            let refutes = cspdb_consistency::k_consistency_refutes(&g, &b, k) == Some(false);
            if refutes {
                assert!(!truth, "refutation must be sound");
            }
            if !truth {
                negatives += 1;
                if refutes {
                    refuted += 1;
                } else {
                    missed += 1;
                }
            }
        }
        println!("| {name} | {k} | G(9,0.35) ×12 | {refuted}/{negatives} | {missed} |");
        if name == "K2" {
            assert_eq!(missed, 0, "3-consistency decides 2-colorability");
        }
    }
}

/// E9: Theorem 6.2 — bounded treewidth is tractable; crossover vs search.
fn e9() {
    header("E9", "Thm 6.2: treewidth-k DP polynomial; vs backtracking");
    println!("| n | k | width used | DP | search | formula(∃FO^{{k+1}}) |");
    println!("|---|---|---|---|---|---|");
    for k in [1usize, 2, 3] {
        for n in [32usize, 128, 512] {
            let (a, b) = e9_instance(n, k, 9);
            let (dp_result, t_dp) = time_once(|| cspdb_decomp::solve_by_treewidth(&a, &b));
            let (s_result, t_s) = time_once(|| cspdb_solver::find_homomorphism(&a, &b));
            let (f_result, t_f) = time_once(|| cspdb_cq::theorem_6_2_decide(&a, &b));
            assert_eq!(dp_result.1.is_some(), s_result.is_some());
            assert_eq!(dp_result.1.is_some(), f_result.1);
            println!(
                "| {n} | {k} | {} | {} | {} | {} |",
                dp_result.0,
                fmt_ms(t_dp),
                fmt_ms(t_s),
                fmt_ms(t_f)
            );
        }
    }
    // Hard mode: tight random relations on k-tree scopes. Backtracking
    // degrades near the threshold; the DP stays width-bounded.
    println!("\n| n | k | workload | DP | search (node-capped) |");
    println!("|---|---|---|---|---|");
    for (n, k) in [(40usize, 2usize), (60, 2), (80, 2)] {
        let p = e9_tight_instance(n, k, 13);
        let (a, b) = p.to_homomorphism();
        let (dp, t_dp) = time_once(|| cspdb_decomp::solve_by_treewidth(&a, &b));
        let cap = cspdb_solver::Config {
            node_limit: Some(2_000_000),
            ..Default::default()
        };
        let ((s, stats), t_s) = time_once(|| cspdb_solver::solve_csp_with(&p, cap));
        let s_report = if stats.nodes >= 2_000_000 {
            format!("{} (CAPPED at 2M nodes)", fmt_ms(t_s))
        } else {
            assert_eq!(dp.1.is_some(), s.is_some());
            fmt_ms(t_s)
        };
        println!(
            "| {n} | {k} | tight random | {} ({}) | {s_report} |",
            fmt_ms(t_dp),
            if dp.1.is_some() { "sat" } else { "unsat" }
        );
    }
}

/// E10: acyclic joins — Yannakakis vs the unrestricted join.
fn e10() {
    header(
        "E10",
        "§6: Yannakakis (semijoins) vs full join on acyclic chains",
    );
    println!("| m constraints | d | Yannakakis | full join | search |");
    println!("|---|---|---|---|---|");
    for m in [8usize, 16, 64, 256] {
        let d = 3;
        let p = e10_chain(m, d);
        let t_y = time_median(3, || cspdb_relalg::solve_acyclic(&p).unwrap());
        let t_j = if m <= 16 {
            fmt_ms(time_median(3, || cspdb_relalg::solve_by_join(&p)))
        } else {
            "— (exponential rows)".into()
        };
        let t_s = time_median(3, || cspdb_solver::solve_csp(&p));
        let y = cspdb_relalg::solve_acyclic(&p).unwrap();
        assert!(y.is_some());
        println!("| {m} | {d} | {} | {t_j} | {} |", fmt_ms(t_y), fmt_ms(t_s));
    }
}

/// E11: Theorem 7.5 — view-based answering via the constraint template.
fn e11() {
    header(
        "E11",
        "Thm 7.5: certain answers via CSP; vs canonical ground truth",
    );
    println!("| chain len | pair | certain (CSP route) | brute force | t_csp | t_bf |");
    println!("|---|---|---|---|---|---|");
    for len in [2usize, 3, 4] {
        let (q, views, alphabet, exts) = e11_instance(len);
        let (c, d) = (0u32, len as u32);
        let (certain, t1) =
            time_once(|| cspdb_rpq::certain_answer(&q, &views, &alphabet, &exts, c, d));
        let (bf, t2) = time_once(|| {
            cspdb_rpq::certain_answer_bruteforce(&q, &views, &alphabet, &exts, c, d, 3)
        });
        assert_eq!(certain, bf);
        assert!(certain, "the full chain pair is certain for (ab)*");
        // A non-certain pair: the reverse direction is never forced.
        let off = cspdb_rpq::certain_answer(&q, &views, &alphabet, &exts, 1, 0);
        assert!(!off);
        println!(
            "| {len} | (0,{len}) | {certain} | {bf} | {} | {} |",
            fmt_ms(t1),
            fmt_ms(t2)
        );
    }
    // Scaling of the CSP route alone (the polynomial data complexity of
    // the *reduction target* for fixed Q, V).
    println!("\n| chain len | t_certain (CSP route) |");
    println!("|---|---|");
    for len in [8usize, 16, 32] {
        let (q, views, alphabet, exts) = e11_instance(len);
        let t = time_median(3, || {
            cspdb_rpq::certain_answer(&q, &views, &alphabet, &exts, 0, len as u32)
        });
        println!("| {len} | {} |", fmt_ms(t));
    }
}

/// E12: Theorem 7.3 — CSP reduces to view-based answering (round trip).
fn e12() {
    header(
        "E12",
        "Thm 7.3: CSP ≤p view-based answering (round trip through 7.5)",
    );
    println!("| template B | input | direct hom | via views | time (views) |");
    println!("|---|---|---|---|---|");
    let b = clique(2);
    for (name, a) in [
        ("C4", cycle(4)),
        ("C5", cycle(5)),
        ("C6", cycle(6)),
        ("K3", clique(3)),
    ] {
        let direct = cspdb_solver::find_homomorphism(&a, &b).is_some();
        let (via, t) = time_once(|| cspdb_rpq::csp_via_view_answering(&a, &b));
        assert_eq!(direct, via);
        println!("| K2 | {name} | {direct} | {via} | {} |", fmt_ms(t));
    }
}

/// E13: maximal RPQ rewritings.
fn e13() {
    header(
        "E13",
        "§7 [8]: maximal RPQ rewriting; soundness vs certain answers",
    );
    let cases: Vec<(&str, Vec<(&str, &str)>)> = vec![
        ("(ab)*", vec![("Vab", "ab")]),
        ("a(bb)*", vec![("Va", "a"), ("Vbb", "bb")]),
        ("ab", vec![("Vor", "a|b")]),
        ("(ab|ba)*", vec![("Vab", "ab"), ("Vba", "ba")]),
    ];
    println!("| query | views | rewriting | empty? | time |");
    println!("|---|---|---|---|---|");
    for (qsrc, defs) in cases {
        let q = cspdb_rpq::Regex::parse(qsrc).unwrap();
        let mut alphabet = q.alphabet();
        let views: Vec<cspdb_rpq::View> = defs
            .iter()
            .map(|(n, d)| {
                let r = cspdb_rpq::Regex::parse(d).unwrap();
                alphabet.extend(r.alphabet());
                cspdb_rpq::View {
                    name: n.to_string(),
                    definition: r,
                }
            })
            .collect();
        alphabet.sort_unstable();
        alphabet.dedup();
        let (rw, t) = time_once(|| cspdb_rpq::maximal_rewriting(&q, &views, &alphabet));
        let shown = if rw.is_empty() {
            "∅".to_string()
        } else {
            rw.to_regex().to_string()
        };
        let names: Vec<&str> = defs.iter().map(|(n, _)| *n).collect();
        println!(
            "| {qsrc} | {} | {shown} | {} | {} |",
            names.join(","),
            rw.is_empty(),
            fmt_ms(t)
        );
    }
    // Soundness spot check on an instance.
    let q = cspdb_rpq::Regex::parse("a(bb)*").unwrap();
    let views = vec![
        cspdb_rpq::View {
            name: "Va".into(),
            definition: cspdb_rpq::Regex::parse("a").unwrap(),
        },
        cspdb_rpq::View {
            name: "Vbb".into(),
            definition: cspdb_rpq::Regex::parse("bb").unwrap(),
        },
    ];
    let alphabet = ['a', 'b'];
    let rw = cspdb_rpq::maximal_rewriting(&q, &views, &alphabet);
    let exts = cspdb_rpq::Extensions {
        num_objects: 5,
        pairs: vec![vec![(0, 1)], vec![(1, 2), (2, 3), (3, 4)]],
    };
    let answers = rw.answer(&exts);
    let mut checked = 0;
    for &(x, y) in &answers {
        assert!(cspdb_rpq::certain_answer(
            &q, &views, &alphabet, &exts, x, y
        ));
        checked += 1;
    }
    println!("\nsoundness: {checked} rewriting answers all verified certain.");
}

/// E14 (extension): the counting strengthening of Theorem 6.2 — exact
/// homomorphism counts on bounded-treewidth inputs, vs full enumeration.
fn e14_counting() {
    header(
        "E14 (extension)",
        "counting hom(A,B) in poly time for bounded treewidth",
    );
    println!("| A | B | count (DP) | count (enumeration) | t_dp | t_enum |");
    println!("|---|---|---|---|---|---|");
    for (name, a) in [("C10", cycle(10)), ("C15", cycle(15)), ("C20", cycle(20))] {
        let b = clique(3);
        let (dp, t_dp) = time_once(|| cspdb_decomp::count_by_treewidth(&a, &b));
        let (enumed, t_e) = time_once(|| cspdb_solver::count_homomorphisms(&a, &b));
        assert_eq!(dp, enumed);
        println!(
            "| {name} | K3 | {dp} | {enumed} | {} | {} |",
            fmt_ms(t_dp),
            fmt_ms(t_e)
        );
    }
    // Where enumeration is infeasible, the DP still answers instantly:
    let a = cycle(60);
    let (dp, t_dp) = time_once(|| cspdb_decomp::count_by_treewidth(&a, &clique(3)));
    println!(
        "| C60 | K3 | {dp} | — (2^60-scale enumeration) | {} | — |",
        fmt_ms(t_dp)
    );
    // Closed form: hom(C_n, K_q) = (q-1)^n + (q-1)(-1)^n.
    assert_eq!(dp, 2u64.pow(60) + 2);
}

/// E15 (extension): the Section 7 closing remark — a sound PTIME
/// Datalog-style (arc-consistency) rewriting, complete on easy instances
/// and provably silent where refutation needs more than 2 pebbles.
fn e15_ac_rewriting() {
    header(
        "E15 (extension)",
        "sound AC/Datalog rewriting of certain answers (§7 closing remark)",
    );
    println!("| instance | exact certain | AC rewriting | note |");
    println!("|---|---|---|---|");
    let k2 = cspdb_core::graphs::digraph(2, &[(0, 1), (1, 0)]);
    let reduction = cspdb_rpq::csp_to_views(&k2);
    let oracle =
        cspdb_rpq::CertainAnswering::new(&reduction.query, &reduction.views, &reduction.alphabet);
    let rw = cspdb_rpq::ArcConsistencyRewriting::new(
        &reduction.query,
        &reduction.views,
        &reduction.alphabet,
    );
    for (name, g, note) in [
        ("ext(C4)", cycle(4), "2-colorable: nothing certain"),
        ("ext(C5)", cycle(5), "odd cycle: needs 3 pebbles, AC silent"),
        ("ext(C6)", cycle(6), "2-colorable: nothing certain"),
    ] {
        let (exts, c, d) = cspdb_rpq::extensions_for_digraph(&g);
        let exact = oracle.is_certain(&exts, c, d);
        let ac = rw.certainly(&exts, c, d);
        assert!(!ac || exact, "AC must stay sound");
        println!("| {name} | {exact} | {ac} | {note} |");
    }
}

// Quiet the unused-import lint for items used only in some experiments.
#[allow(unused_imports)]
use cspdb_core::Relation;
#[allow(dead_code)]
fn _keep(_: std::sync::Arc<Relation>, _: CspInstance) {
    let _ = neq_relation(2);
}
