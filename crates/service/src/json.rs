//! A minimal flat-JSON-object reader and string escaper.
//!
//! The workspace has no serde; requests arrive as one JSON object per
//! line with string, unsigned-integer, or boolean values — nothing
//! nested — so a small hand-rolled scanner is all the protocol needs.

use std::collections::BTreeMap;

/// A scalar value of a flat request object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// A JSON string (escapes decoded).
    Str(String),
    /// A nonnegative integer.
    Num(u64),
    /// `true` / `false`.
    Bool(bool),
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object (`{"key": value, ...}`) into a key→value
/// map. Values may be strings, nonnegative integers, or booleans;
/// nesting is rejected (the request protocol never needs it).
///
/// # Errors
///
/// A human-readable message on any syntax violation.
pub fn parse_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut p = Parser {
        chars: line.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some('}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let value = p.value()?;
            map.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err("trailing characters after object".into());
    }
    Ok(map)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\r' | '\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected '{want}', found {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("\\u escape is not a scalar value")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some('"') => Ok(JsonValue::Str(self.string()?)),
            Some('t') => self.literal("true").map(|()| JsonValue::Bool(true)),
            Some('f') => self.literal("false").map(|()| JsonValue::Bool(false)),
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(d) = self.peek().and_then(|c| c.to_digit(10)) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(d as u64))
                        .ok_or("number overflows u64")?;
                    self.pos += 1;
                }
                Ok(JsonValue::Num(n))
            }
            other => Err(format!(
                "expected string, number, or boolean, found {other:?}"
            )),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        for want in word.chars() {
            if self.next() != Some(want) {
                return Err(format!("bad literal (expected {word})"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let m = parse_object(r#"{"id": 7, "op":"cq", "db":"g", "cached": true}"#).unwrap();
        assert_eq!(m["id"], JsonValue::Num(7));
        assert_eq!(m["op"].as_str(), Some("cq"));
        assert_eq!(m["cached"], JsonValue::Bool(true));
        assert!(parse_object("{}").unwrap().is_empty());
    }

    #[test]
    fn decodes_escapes() {
        let m = parse_object(r#"{"facts":"E 0 1\nE 1 2","q":"a \"b\" \\ A"}"#).unwrap();
        assert_eq!(m["facts"].as_str(), Some("E 0 1\nE 1 2"));
        assert_eq!(m["q"].as_str(), Some("a \"b\" \\ A"));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let original = "line1\nline2\t\"quoted\" \\ done";
        let line = format!("{{\"v\":\"{}\"}}", escape(original));
        let m = parse_object(&line).unwrap();
        assert_eq!(m["v"].as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "[1,2]",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":1} extra",
            "{\"a\":-1}",
            "{\"a\":{\"nested\":1}}",
            "{\"a\":\"unterminated}",
        ] {
            assert!(parse_object(bad).is_err(), "accepted {bad:?}");
        }
    }
}
