//! The semantic result cache: answers keyed by the *core* of the query.
//!
//! Chandra–Merlin (Propositions 2.2/2.3 of the paper) makes CQ
//! equivalence decidable by homomorphisms: two queries have identical
//! answers on **every** database iff their marked canonical databases
//! are homomorphically equivalent (the unary `@dist{i}` markers pin the
//! distinguished variables, so equivalence respects head order). The
//! core of a minimized query is therefore a sound cache key — any
//! renaming, atom reordering, or redundant-atom padding of a cached
//! query hits the same entry.
//!
//! Lookup is two-staged, mirroring how hash tables treat hash
//! collisions:
//!
//! 1. **bucket** by cheap invariants of the core — per-predicate atom
//!    counts, variable count, head arity — hashed to a `u64`;
//! 2. **confirm** every candidate in the bucket by homomorphic
//!    equivalence of the marked canonical structures.
//!
//! Invariant collisions are thus *checked, never trusted*: a false
//! bucket match costs two homomorphism tests and is then rejected.

use crate::proto::relation_to_json;
use cspdb_core::{Relation, Structure, VocabularyBuilder};
use cspdb_cq::{are_hom_equivalent, canonical_database, minimize, ConjunctiveQuery};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The semantic identity of a query: its core plus the artifacts needed
/// to bucket and confirm equivalence.
#[derive(Debug, Clone)]
pub struct CacheKey {
    /// The minimized query (evaluated instead of the original — it is
    /// equivalent and never larger).
    pub core: ConjunctiveQuery,
    /// Canonical database of the core *with* distinguished-variable
    /// markers; hom-equivalence of these structures is query
    /// equivalence.
    pub marked: Structure,
    /// Cheap invariant hash of the core (the bucket key).
    pub invariant: u64,
}

impl CacheKey {
    /// Computes the key: minimize to the core, build the marked
    /// canonical database, hash the invariants. This is the
    /// expensive-but-reusable part of serving a query; the cache exists
    /// to amortize everything that comes after it.
    pub fn of(q: &ConjunctiveQuery) -> CacheKey {
        let core = minimize(q);
        let marked = canonical_database(&core, true).structure;
        let invariant = invariant_hash(&core);
        CacheKey {
            core,
            marked,
            invariant,
        }
    }

    /// True iff the two keys denote equivalent queries: equal invariant
    /// hashes *and* homomorphically equivalent marked canonical
    /// structures. The second check is what makes equal keys imply
    /// set-equal answers on every database.
    pub fn matches(&self, other: &CacheKey) -> bool {
        self.invariant == other.invariant && marked_equivalent(&self.marked, &other.marked)
    }
}

/// FNV-1a over the core's cheap invariants: sorted per-predicate
/// `(name, arity, atom count)` triples, variable count, head arity.
/// Equivalent cores agree on all of these (a core is unique up to
/// isomorphism), so equivalent queries always land in the same bucket.
pub fn invariant_hash(core: &ConjunctiveQuery) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn byte(h: &mut u64, b: u8) {
        *h ^= b as u64;
        *h = h.wrapping_mul(PRIME);
    }
    fn word(h: &mut u64, w: u64) {
        for b in w.to_le_bytes() {
            byte(h, b);
        }
    }
    let mut h = OFFSET;
    let mut per_pred: Vec<(String, usize, u64)> = Vec::new();
    for a in &core.atoms {
        match per_pred
            .iter_mut()
            .find(|(p, ar, _)| p == &a.predicate && *ar == a.args.len())
        {
            Some(entry) => entry.2 += 1,
            None => per_pred.push((a.predicate.clone(), a.args.len(), 1)),
        }
    }
    per_pred.sort();
    for (pred, arity, count) in &per_pred {
        for b in pred.bytes() {
            byte(&mut h, b);
        }
        byte(&mut h, 0);
        word(&mut h, *arity as u64);
        word(&mut h, *count);
    }
    word(&mut h, core.variables().len() as u64);
    word(&mut h, core.distinguished.len() as u64);
    h
}

/// Homomorphic equivalence of two marked canonical structures over
/// possibly different vocabularies: both are retyped onto the union
/// vocabulary first (a predicate absent from one side becomes an empty
/// relation there, correctly blocking any homomorphism from the side
/// that has facts in it). Incompatible arities mean the queries cannot
/// be equivalent.
fn marked_equivalent(a: &Structure, b: &Structure) -> bool {
    let mut builder = VocabularyBuilder::new();
    for s in [a, b] {
        for (id, _) in s.relations() {
            let name = s.vocabulary().name(id);
            let arity = s.vocabulary().arity(id);
            if builder.add_or_get(name, arity).is_err() {
                return false;
            }
        }
    }
    let voc = builder.finish();
    let retype = |s: &Structure| -> Structure {
        let mut out = Structure::new(voc.clone(), s.domain_size());
        for (id, rel) in s.relations() {
            let new_id = voc
                .id(s.vocabulary().name(id))
                .expect("union vocabulary contains both sides");
            for t in rel.iter() {
                out.insert(new_id, t).expect("tuples were in range");
            }
        }
        out
    };
    are_hom_equivalent(&retype(a), &retype(b))
}

/// One cached answer.
#[derive(Debug)]
struct Entry {
    key: CacheKey,
    /// The serialized answer (rows sorted) — hits return this string
    /// verbatim, which is the byte-identical-answers guarantee.
    answers_json: String,
    /// The answer relation itself, for library callers.
    answers: Relation,
}

type BucketMap = HashMap<(String, u64, u64), Vec<Entry>>;

/// A concurrent core-keyed result cache, sharded by database name.
///
/// Entries are bucketed by `(database name, database version,
/// invariant hash)`; within a bucket, candidates are confirmed by
/// [`CacheKey::matches`]. A version bump strands the old version's
/// buckets, which [`SemanticCache::invalidate_db`] purges eagerly on
/// every `put`.
///
/// The bucket map is split into independently locked shards routed by
/// the same name hash as the [`Catalog`](crate::Catalog): lookups and
/// inserts for different databases never contend, and invalidating one
/// database only locks its shard.
#[derive(Debug)]
pub struct SemanticCache {
    shards: Box<[Mutex<BucketMap>]>,
    hits: AtomicU64,
    misses: AtomicU64,
    recoveries: AtomicU64,
}

impl Default for SemanticCache {
    fn default() -> Self {
        SemanticCache::with_shards(crate::catalog::DEFAULT_SHARDS)
    }
}

impl SemanticCache {
    /// An empty cache with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache split into `shards` shards (min 1).
    pub fn with_shards(shards: usize) -> Self {
        SemanticCache {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    /// Locks one shard's bucket map, recovering from poison: a thread
    /// that panicked while holding the lock may have left a bucket
    /// half-updated, so recovery discards the shard's entries — that
    /// slice of the cache restarts cold, which is always correct (it
    /// only ever serves confirmed equivalents) — counts the event, and
    /// continues. Other shards are untouched.
    fn lock_shard<'a>(&self, shard: &'a Mutex<BucketMap>) -> MutexGuard<'a, BucketMap> {
        match shard.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.recoveries.fetch_add(1, Ordering::Relaxed);
                shard.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.clear();
                guard
            }
        }
    }

    /// The shard holding `db`'s buckets.
    fn shard_for(&self, db: &str) -> &Mutex<BucketMap> {
        &self.shards[crate::catalog::shard_of(db, self.shards.len())]
    }

    /// Looks up an equivalent query's answer computed against `(db,
    /// version)`. Returns the stored `(serialized, relation)` pair on a
    /// confirmed hit.
    pub fn lookup(&self, db: &str, version: u64, key: &CacheKey) -> Option<(String, Relation)> {
        let buckets = self.lock_shard(self.shard_for(db));
        let found = buckets
            .get(&(db.to_owned(), version, key.invariant))
            .and_then(|bucket| bucket.iter().find(|e| e.key.matches(key)))
            .map(|e| (e.answers_json.clone(), e.answers.clone()));
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores an answer computed against `(db, version)`. The
    /// serialized form is derived here so every entry is consistent
    /// with [`relation_to_json`]. Duplicate keys (two racing misses)
    /// keep the first entry — both computed the same answer.
    pub fn insert(&self, db: &str, version: u64, key: CacheKey, answers: Relation) -> String {
        let answers_json = relation_to_json(&answers);
        let mut buckets = self.lock_shard(self.shard_for(db));
        let bucket = buckets
            .entry((db.to_owned(), version, key.invariant))
            .or_default();
        if !bucket.iter().any(|e| e.key.matches(&key)) {
            bucket.push(Entry {
                key,
                answers_json: answers_json.clone(),
                answers,
            });
        }
        answers_json
    }

    /// Drops every entry for `db` (all versions), locking only `db`'s
    /// shard. Called on `put`, so replaced databases free their
    /// stranded entries immediately instead of waiting for the process
    /// to exit. Returns how many entries were dropped.
    pub fn invalidate_db(&self, db: &str) -> u64 {
        let mut dropped = 0u64;
        self.lock_shard(self.shard_for(db))
            .retain(|(name, _, _), bucket| {
                if name == db {
                    dropped += bucket.len() as u64;
                    false
                } else {
                    true
                }
            });
        dropped
    }

    /// Delta-aware invalidation: after a single-tuple delta bumped `db`
    /// to `new_version`, entries whose query matches one of the
    /// maintained views in `fresh` are *re-keyed* onto the new version
    /// with the view's incrementally maintained answers — they keep
    /// serving hits without recomputation. Entries no view covers fall
    /// back to plain invalidation (dropped, exactly as a version bump
    /// would strand them). Returns `(revalidated, dropped)`.
    pub fn revalidate_db(
        &self,
        db: &str,
        new_version: u64,
        fresh: &[(CacheKey, Relation)],
    ) -> (u64, u64) {
        let mut buckets = self.lock_shard(self.shard_for(db));
        let mut drained: Vec<Entry> = Vec::new();
        buckets.retain(|(name, _, _), bucket| {
            if name == db {
                drained.append(bucket);
                false
            } else {
                true
            }
        });
        let mut revalidated = 0u64;
        let mut dropped = 0u64;
        for entry in drained {
            match fresh.iter().find(|(k, _)| k.matches(&entry.key)) {
                Some((_, answers)) => {
                    buckets
                        .entry((db.to_owned(), new_version, entry.key.invariant))
                        .or_default()
                        .push(Entry {
                            key: entry.key,
                            answers_json: relation_to_json(answers),
                            answers: answers.clone(),
                        });
                    revalidated += 1;
                }
                None => dropped += 1,
            }
        }
        (revalidated, dropped)
    }

    /// Confirmed hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Times a poisoned shard lock was recovered (each recovery
    /// restarts that shard cold).
    pub fn poison_recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// Poisons every shard lock by panicking while holding it (the
    /// panics are caught here). Fault injection uses this to exercise
    /// the poison-recovery path; real code never calls it.
    #[doc(hidden)]
    pub fn poison(&self) {
        for shard in self.shards.iter() {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard.lock();
                panic!("injected lock poison");
            }));
        }
    }

    /// Number of stored entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| self.lock_shard(s).values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(src: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::parse(src).unwrap()
    }

    #[test]
    fn renamed_and_padded_queries_share_a_key() {
        let base = CacheKey::of(&q("Q(X,Y) :- E(X,Z), E(Z,Y)"));
        // Renamed variables, reordered atoms.
        let renamed = CacheKey::of(&q("Q(A,B) :- E(W,B), E(A,W)"));
        // A redundant atom the core folds away.
        let padded = CacheKey::of(&q("Q(X,Y) :- E(X,Z), E(Z,Y), E(X,W)"));
        assert_eq!(base.invariant, renamed.invariant);
        assert!(base.matches(&renamed));
        assert!(renamed.matches(&base));
        assert!(base.matches(&padded));
    }

    #[test]
    fn inequivalent_queries_do_not_match() {
        let path2 = CacheKey::of(&q("Q(X,Y) :- E(X,Z), E(Z,Y)"));
        let path3 = CacheKey::of(&q("Q(X,Y) :- E(X,Z), E(Z,W), E(W,Y)"));
        assert!(!path2.matches(&path3));
        // Same shape, different head order: markers must distinguish.
        let fwd = CacheKey::of(&q("Q(X,Y) :- E(X,Y)"));
        let rev = CacheKey::of(&q("Q(Y,X) :- E(X,Y)"));
        assert_eq!(fwd.invariant, rev.invariant, "cheap invariants collide");
        assert!(!fwd.matches(&rev), "hom confirmation rejects the collision");
    }

    #[test]
    fn lookup_confirms_and_versions_isolate() {
        let cache = SemanticCache::new();
        let key = CacheKey::of(&q("Q(X) :- E(X,Y)"));
        let ans = Relation::from_tuples(1, [[0u32], [1]]).unwrap();
        assert!(cache.lookup("g", 1, &key).is_none());
        let json = cache.insert("g", 1, key.clone(), ans);
        assert_eq!(json, "[[0],[1]]");
        let renamed = CacheKey::of(&q("Q(A) :- E(A,B)"));
        let (hit_json, hit_rel) = cache.lookup("g", 1, &renamed).expect("semantic hit");
        assert_eq!(hit_json, json);
        assert_eq!(hit_rel.len(), 2);
        // Other version or database: miss.
        assert!(cache.lookup("g", 2, &renamed).is_none());
        assert!(cache.lookup("h", 1, &renamed).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 3);
        cache.invalidate_db("g");
        assert!(cache.is_empty());
    }

    #[test]
    fn revalidation_rekeys_covered_entries_and_drops_the_rest() {
        let cache = SemanticCache::new();
        let covered = CacheKey::of(&q("Q(X) :- E(X,Y)"));
        let uncovered = CacheKey::of(&q("R(X,Y) :- E(X,Z), E(Z,Y)"));
        cache.insert(
            "g",
            1,
            covered.clone(),
            Relation::from_tuples(1, [[0u32]]).unwrap(),
        );
        cache.insert(
            "g",
            1,
            uncovered.clone(),
            Relation::from_tuples(2, [[0u32, 1]]).unwrap(),
        );
        // A delta bumped g to version 2; a maintained view covers the
        // first query (renamed — semantic match, not textual).
        let view_key = CacheKey::of(&q("Q(A) :- E(A,B)"));
        let maintained = Relation::from_tuples(1, [[0u32], [2]]).unwrap();
        let (revalidated, dropped) = cache.revalidate_db("g", 2, &[(view_key, maintained)]);
        assert_eq!((revalidated, dropped), (1, 1));
        // The covered entry now serves the maintained answers at v2.
        let (json, rel) = cache.lookup("g", 2, &covered).expect("revalidated hit");
        assert_eq!(json, "[[0],[2]]");
        assert_eq!(rel.len(), 2);
        // The uncovered entry is gone at every version.
        assert!(cache.lookup("g", 1, &uncovered).is_none());
        assert!(cache.lookup("g", 2, &uncovered).is_none());
        // Counting invalidation still works and reports its size.
        assert_eq!(cache.invalidate_db("g"), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn poisoned_lock_recovers_to_a_cold_cache() {
        let cache = SemanticCache::new();
        let key = CacheKey::of(&q("Q(X) :- E(X,Y)"));
        let ans = || Relation::from_tuples(1, [[0u32]]).unwrap();
        cache.insert("g", 1, key.clone(), ans());
        assert_eq!(cache.len(), 1);
        cache.poison();
        // The first access after poisoning recovers to a cold cache
        // and counts the event.
        assert!(cache.lookup("g", 1, &key).is_none());
        assert_eq!(cache.poison_recoveries(), 1);
        assert!(cache.is_empty());
        // The cache keeps working afterwards.
        cache.insert("g", 1, key.clone(), ans());
        assert!(cache.lookup("g", 1, &key).is_some());
    }
}
